//! The execution engine: interprets compiled programs on the simulated
//! machine in single, double, or slipstream mode.
//!
//! Every simulated processor runs an interpreter over the flattened IR.
//! Leaf operations (compute, loads, stores) charge the processor's
//! timeline directly through the memory system; constructs push protocol
//! frames whose stages issue the same shared-memory and pair-register
//! operations the paper's modified Omni runtime performs:
//!
//! * **job dispatch** — the master stores to a job flag line; pool slaves
//!   wake and load it (job-wait time);
//! * **construct barriers** — arrivals are stores to the barrier line;
//!   in slipstream mode the R-stream inserts a token at entry (local
//!   sync) or exit (global sync) while the A-stream consumes one instead
//!   of arriving (Figure 1);
//! * **dynamic/guided scheduling** — chunk grabs serialize through a
//!   scheduler lock and counter line; the R-stream publishes each grab to
//!   its A-stream over the pair semaphore (Section 3.2.2);
//! * **critical/atomic/reduction** — lock-protected updates, with the
//!   per-construct A-stream policy of Section 3.1 applied;
//! * **divergence detection and recovery** — the R-stream checks token
//!   accumulation at barriers and re-seeds a diverged A-stream from its
//!   own state.

use crate::compile::{CompiledProgram, FNode, NodeId, Op};
use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultSite, PairLedger};
use crate::health::{FillWindow, HealthPolicy};
use crate::memo::{MemoDiag, MemoPlan};
use crate::pairing::{Decision, PairState};
use crate::policy::{AAction, AStreamPolicy, RecoveryPolicy};
use dsm_sim::{
    AccessKind, AccessLocality, Addr, AddressMap, Barrier, CmpId, CpuId, CpuTimeline, Cycle,
    DomainQueues, EventQueue, Lock, MachineConfig, MemSystem, StreamRole, TimeClass,
};
use omp_ir::expr::{BinOp, EvalCtx, Expr, TableId, VarId};
use omp_ir::node::{ArrayId, Reduction, ReductionOp, SlipSyncType, SlipstreamClause};
use omp_ir::trace::OpCounts;
use omp_ir::wsloop::Chunk;
use omp_rt::constructs::ConstructArena;
use omp_rt::mode::{resolve_region, ExecMode, HealthState, PairMode, RegionSlip, SlipSync};
use omp_rt::schedule::{resolve_schedule, static_chunks, ResolvedSchedule};
use omp_rt::team::{CpuAssignment, TeamBreaker, TeamLayout};
use omp_rt::RuntimeEnv;
use sim_trace::{TraceConfig, TraceData, TraceEvent, Tracer, TrackDomain};

/// Deterministic OS-interference model: every processor loses a slice of
/// `slice_cycles` roughly every `quantum_cycles` (timer ticks, daemons),
/// with per-processor stagger derived from `seed`. The paper notes that
/// IRIX "does not recognize slipstream mode where A-stream and R-stream
/// are scheduled and serviced independently"; this knob lets experiments
/// include that interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsNoise {
    /// Mean cycles between interruptions per processor.
    pub quantum_cycles: Cycle,
    /// Cycles stolen per interruption.
    pub slice_cycles: Cycle,
    /// Stagger seed (runs are deterministic for a fixed seed).
    pub seed: u64,
}

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deliberately-broken engine variants, each a realistic bug class in the
/// slipstream runtime, selectable at run time. These exist for one
/// purpose: the differential fuzzer's self-check, which must prove the
/// whole detect-shrink-replay loop catches real engine bugs. Under
/// [`EngineMutation::None`] (the default) every branch below is dead and
/// the engine is bit-identical to an unmutated build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMutation {
    /// No mutation: the production engine.
    #[default]
    None,
    /// Broken token accounting: every second token insertion loses its
    /// semaphore signal (as if the pair-register write were dropped).
    /// A-streams strand behind barriers; the run either hangs into the
    /// cycle budget or survives only through divergence recoveries.
    TokenAccounting,
    /// Off-by-one static chunking: the last thread's final static chunk
    /// is shortened by one iteration, silently dropping work. Every mode
    /// undercounts ops relative to the trace oracle.
    ChunkOffByOne,
    /// Off-by-one exit check in the batched native `for` loop: the
    /// fast-path compute loop retires one extra iteration before
    /// noticing the bound. Compute cycles overcount in every mode.
    BatchBailOffByOne,
}

impl EngineMutation {
    /// Stable lowercase label (CLI flags, artifact JSON).
    pub fn label(self) -> &'static str {
        match self {
            EngineMutation::None => "none",
            EngineMutation::TokenAccounting => "token-accounting",
            EngineMutation::ChunkOffByOne => "chunk-off-by-one",
            EngineMutation::BatchBailOffByOne => "batch-bail-off-by-one",
        }
    }

    /// Parse a [`label`](Self::label) back.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "none" => Some(EngineMutation::None),
            "token-accounting" => Some(EngineMutation::TokenAccounting),
            "chunk-off-by-one" => Some(EngineMutation::ChunkOffByOne),
            "batch-bail-off-by-one" => Some(EngineMutation::BatchBailOffByOne),
            _ => None,
        }
    }

    /// All non-`None` mutation classes (the self-check sweeps these).
    pub const ALL_BROKEN: [EngineMutation; 3] = [
        EngineMutation::TokenAccounting,
        EngineMutation::ChunkOffByOne,
        EngineMutation::BatchBailOffByOne,
    ];
}

/// Tunable engine parameters beyond the machine model.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Processor usage mode.
    pub mode: ExecMode,
    /// Runtime environment (`OMP_*` variables).
    pub env: RuntimeEnv,
    /// A-stream construct policy.
    pub policy: AStreamPolicy,
    /// Busy cycles to compute a static chunk assignment.
    pub static_sched_cycles: u64,
    /// Busy cycles of scheduler arithmetic per dynamic grab (on top of the
    /// lock and counter traffic).
    pub dynamic_sched_cycles: u64,
    /// Fixed busy cycles per I/O operation.
    pub io_fixed_cycles: u64,
    /// Additional busy cycles per 8 bytes of I/O.
    pub io_cycles_per_8_bytes: u64,
    /// Divergence detection and recovery knobs (watchdog, retry budget,
    /// restart cost, token slack).
    pub recovery: RecoveryPolicy,
    /// Adaptive pair-health controller and team circuit breaker
    /// ([`HealthPolicy::paper`] keeps both inert).
    pub health: HealthPolicy,
    /// Fault-injection plan fired at the engine's hook points.
    pub faults: FaultPlan,
    /// Legacy fault injection: `(tid, epoch)` pairs at which the A-stream
    /// diverges instead of skipping its `epoch`-th construct barrier.
    /// Converted into [`FaultKind::Wander`] events at engine build.
    pub inject_divergence: Vec<(u64, u64)>,
    /// Optional OS-interference model.
    pub os_noise: Option<OsNoise>,
    /// Structured event tracing (observation-only; off by default). When
    /// on, the run's [`RunResult::trace`] carries the merged
    /// [`TraceData`] for Perfetto export and analytics.
    pub trace: TraceConfig,
    /// Hard cap on simulated cycles (deadlock/livelock watchdog).
    pub max_cycles: Cycle,
    /// Hard cap on scheduler events processed.
    pub max_events: u64,
    /// Seeded engine-mutation class (fuzzer self-check only);
    /// [`EngineMutation::None`] keeps the engine bit-identical.
    pub mutation: EngineMutation,
    /// PDES worker threads. `1` (the default) runs the serial event loop
    /// unchanged; `> 1` switches the scheduler to per-CMP time domains
    /// ([`DomainQueues`]) with conservative lookahead windows, a scout
    /// worker pool, and closed-form replay of constant-compute loop runs.
    /// Results are bit-identical for every worker count.
    pub workers: usize,
    /// Override the conservative lookahead horizon (cycles). `None`
    /// derives it from the machine's minimum remote-hop latency
    /// ([`dsm_sim::lookahead_cycles`]); `Some(0)` degrades window
    /// admission to lockstep (frontier-time events only) but must still
    /// make progress.
    pub lookahead: Option<Cycle>,
    /// Certified replay-loop plan for memoized phase replay (default
    /// empty = off). Only armed in single/double mode with no mutation,
    /// faults, OS noise, or tracing; every jump is guarded by the
    /// license checksum and the iteration-start machine-state digest, so
    /// results stay bit-identical to a memo-off run.
    pub memo: MemoPlan,
}

impl EngineConfig {
    /// Defaults for a machine and mode.
    pub fn new(machine: MachineConfig, mode: ExecMode) -> Self {
        EngineConfig {
            machine,
            mode,
            env: RuntimeEnv::default(),
            policy: AStreamPolicy::paper(),
            static_sched_cycles: 15,
            dynamic_sched_cycles: 6,
            io_fixed_cycles: 2000,
            io_cycles_per_8_bytes: 1,
            recovery: RecoveryPolicy::paper(),
            health: HealthPolicy::paper(),
            faults: FaultPlan::none(),
            inject_divergence: Vec::new(),
            os_noise: None,
            trace: TraceConfig::OFF,
            max_cycles: 50_000_000_000,
            max_events: 2_000_000_000,
            mutation: EngineMutation::None,
            workers: 1,
            lookahead: None,
            memo: MemoPlan::default(),
        }
    }

    /// Set the PDES worker count (`1` = serial fast path).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Diagnostics from the PDES scheduling layer. All zeros when the run
/// used the serial fast path (`workers == 1`). Deterministic for a given
/// simulation input — independent of the worker count actually used —
/// and excluded from stats fingerprints (observation-only, like traces).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PdesDiag {
    /// Worker threads the engine ran with.
    pub workers: usize,
    /// Lookahead horizon in effect (cycles).
    pub lookahead: Cycle,
    /// Windows formed (one per scheduler pop on the parallel path).
    pub windows: u64,
    /// Windows whose admitted set spanned more than one time domain —
    /// the opportunities for concurrent domain stepping.
    pub multi_domain_windows: u64,
    /// Largest admitted-domain count seen in any window.
    pub peak_window_domains: usize,
    /// Sampled windows handed to the scout worker pool.
    pub scouted_windows: u64,
    /// Scouted domain fronts about to run provably CPU-private work
    /// (compute-only loop runs) — safely replayable ahead of commit.
    pub scout_pure: u64,
    /// Scouted fronts whose next memory access stays inside the domain
    /// (L1/L2-bank hit, no directory or network crossing).
    pub scout_local: u64,
    /// Scouted fronts about to cross the directory/network boundary —
    /// these serialize at the global frontier.
    pub scout_boundary: u64,
    /// Scouted fronts in runtime/protocol code (barriers, scheduling).
    pub scout_other: u64,
    /// Constant-compute loop runs retired in closed form.
    pub ff_pieces: u64,
    /// Loop iterations those runs covered (each would have been one
    /// serial micro-step).
    pub ff_iters: u64,
}

/// Aggregated outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock of the run: the master's completion cycle.
    pub exec_cycles: Cycle,
    /// Per-processor statistics (indexed by CPU id; idle CPUs are empty).
    pub cpu_stats: Vec<dsm_sim::CpuStats>,
    /// Role of each processor during the run.
    pub roles: Vec<StreamRole>,
    /// Shared-fill classification (Figures 3 and 5).
    pub fill_counts: dsm_sim::FillCounts,
    /// Execution-time breakdown aggregated over R/solo streams.
    pub r_breakdown: dsm_sim::TimeBreakdown,
    /// Execution-time breakdown aggregated over A-streams.
    pub a_breakdown: dsm_sim::TimeBreakdown,
    /// User-level operation totals for R/solo streams (oracle checks).
    pub user_r: OpCounts,
    /// User-level operation totals for A-streams.
    pub user_a: OpCounts,
    /// Dynamic-scheduler chunk grabs.
    pub sched_grabs: u64,
    /// Affinity-scheduler steals (subset of the grabs).
    pub sched_steals: u64,
    /// Divergence recoveries performed.
    pub recoveries: u64,
    /// Recoveries forced by the barrier watchdog (subset of `recoveries`).
    pub watchdog_recoveries: u64,
    /// Recoveries triggered by the token-wait timeout (subset of
    /// `recoveries`).
    pub timeout_recoveries: u64,
    /// Pairs demoted to single-stream mode after exhausting the recovery
    /// budget (and still demoted at the end of the run).
    pub demotions: u64,
    /// Probationary re-promotions granted by the health controller.
    pub repromotions: u64,
    /// Team circuit-breaker trips over the run.
    pub breaker_trips: u64,
    /// Breaker half-open probes that passed and re-closed it.
    pub breaker_reclosures: u64,
    /// Completed regions spent in each health state, summed over pairs
    /// (indexed by [`HealthState::ordinal`]).
    pub health_residency: [u64; 4],
    /// Per-pair resilience ledger (empty outside slipstream mode).
    pub pair_ledgers: Vec<PairLedger>,
    /// A-stream shared stores converted to read-exclusive prefetches.
    pub stores_converted: u64,
    /// A-stream shared stores skipped outright.
    pub stores_skipped: u64,
    /// Machine-wide counters (traffic, contention, invalidations).
    pub machine: dsm_sim::MachineCounters,
    /// Merged trace of the run when [`EngineConfig::trace`] was on.
    /// Observation-only: excluded from stats fingerprints by design.
    pub trace: Option<TraceData>,
    /// PDES scheduling diagnostics (all zeros on the serial fast path).
    /// Observation-only: excluded from stats fingerprints by design.
    pub pdes: PdesDiag,
    /// Memoized-phase-replay diagnostics (all zeros without a plan).
    /// Observation-only: excluded from stats fingerprints by design.
    pub memo: MemoDiag,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Parked,
    PoolIdle,
    Done,
}

#[derive(Debug, Clone)]
enum Frame {
    Seq {
        node: NodeId,
        idx: usize,
    },
    For {
        var: VarId,
        cur: i64,
        end: i64,
        step: u64,
        body: NodeId,
    },
    /// Iterate a list of contiguous chunks of a worksharing loop.
    ChunkIter {
        var: VarId,
        chunks: Vec<Chunk>,
        ci: usize,
        cur: i64,
        body: NodeId,
    },
    /// Reduction combine + implicit barrier after a worksharing loop.
    LoopEnd {
        node: NodeId,
        stage: u8,
    },
    /// Barrier protocol. `internal` region-end barriers are never token-
    /// skipped by A-streams.
    Bar {
        internal: bool,
        stage: u8,
    },
    SingleP {
        node: NodeId,
        enc: usize,
        stage: u8,
    },
    SectionsP {
        node: NodeId,
        enc: usize,
        stage: u8,
        claimed: usize,
    },
    /// Dynamic/guided worksharing protocol.
    DynP {
        node: NodeId,
        enc: usize,
        sched: ResolvedSchedule,
        lo: i64,
        hi: i64,
        stage: u8,
        chunk: Chunk,
    },
    CritP {
        lock: usize,
        body: NodeId,
        stage: u8,
    },
    /// Reduction combine: lock, load, op, store, unlock.
    RedP {
        red: Reduction,
        stage: u8,
    },
    /// Master's path through a `Parallel` node.
    RegionP {
        node: NodeId,
        stage: u8,
    },
    /// Region-end (internal) barrier then return-to-pool for slaves.
    RegionEndP {
        stage: u8,
    },
    /// Slave pool loop.
    PoolWait,
    IoP {
        input: bool,
        bytes: u64,
        stage: u8,
    },
}

struct CpuState {
    timeline: CpuTimeline,
    assign: CpuAssignment,
    role: StreamRole,
    tid: u64,
    frames: Vec<Frame>,
    vars: Vec<i64>,
    status: Status,
    next_wake: Cycle,
    park_class: TimeClass,
    pending_class: Option<TimeClass>,
    /// Per-region construct encounter counters.
    singles_seen: usize,
    sections_seen: usize,
    dynloops_seen: usize,
    /// Job generations consumed from the pool.
    jobs_taken: u64,
    /// Next OS interruption (when the noise model is on).
    next_interrupt: Cycle,
    /// Count of interruptions suffered (diagnostic).
    interrupts: u64,
    user: OpCounts,
    stores_converted: u64,
    stores_skipped: u64,
    /// Armed watchdog deadline while parked at the region-end barrier.
    watchdog_deadline: Option<Cycle>,
    /// Barrier generation the watchdog was armed for (disarms the stale
    /// deadline once the barrier makes progress).
    watchdog_gen: u64,
    /// Armed token-wait deadline while an A-stream is parked on the pair
    /// semaphore path (cleared on wake; a stale queue event then misses).
    token_wait_deadline: Option<Cycle>,
}

impl CpuState {
    fn reset_encounters(&mut self) {
        self.singles_seen = 0;
        self.sections_seen = 0;
        self.dynloops_seen = 0;
    }
}

struct ExprView<'a> {
    vars: &'a [i64],
    tid: i64,
    nthreads: i64,
    tables: &'a [Vec<i64>],
}

impl EvalCtx for ExprView<'_> {
    fn var(&self, v: VarId) -> i64 {
        self.vars[v.0 as usize]
    }
    fn thread_id(&self) -> i64 {
        self.tid
    }
    fn num_threads(&self) -> i64 {
        self.nthreads
    }
    fn table(&self, t: TableId, idx: i64) -> i64 {
        let tab = &self.tables[t.0 as usize];
        if tab.is_empty() {
            return 0;
        }
        tab[idx.clamp(0, tab.len() as i64 - 1) as usize]
    }
}

/// Scheduler backend: the flat serial heap (`workers == 1`, the
/// pre-PDES event loop byte-for-byte) or the per-CMP domain split
/// (`workers > 1`). Both pop in identical `(time, seq, cpu)` order —
/// [`DomainQueues`] stamps one global sequence across all domains — so
/// the choice is invisible to execution semantics; the split
/// additionally exposes per-domain fronts for window formation.
enum Q {
    Serial(EventQueue),
    Domains(DomainQueues),
}

impl Q {
    fn schedule(&mut self, time: Cycle, cpu: CpuId) {
        match self {
            Q::Serial(q) => q.schedule(time, cpu),
            Q::Domains(q) => q.schedule(time, cpu),
        }
    }

    fn pop(&mut self) -> Option<(Cycle, CpuId)> {
        match self {
            Q::Serial(q) => q.pop(),
            Q::Domains(q) => q.pop(),
        }
    }

    fn peek_time(&self) -> Option<Cycle> {
        match self {
            Q::Serial(q) => q.peek_time(),
            Q::Domains(q) => q.peek_time(),
        }
    }
}

/// What a scout finds at a domain's front: the class of work its next
/// event will run. Indexes into the scout tally array.
#[derive(Clone, Copy)]
enum ScoutClass {
    /// Compute-only loop run: provably confined to CPU-private state.
    Pure = 0,
    /// Next memory access resolves inside the domain (no crossing).
    Local = 1,
    /// Next memory access crosses the directory/network boundary.
    Boundary = 2,
    /// Runtime/protocol work (barriers, scheduling, pool, ...).
    Other = 3,
}

/// Classify the work CPU `ci` will run next. Read-only — safe to call
/// from scout worker threads sharing the engine state immutably; must
/// not touch cache LRU or any other mutable simulation state (it uses
/// [`MemSystem::access_locality`], the non-mutating peek).
fn scout_classify(
    cp: &CompiledProgram,
    ms: &MemSystem,
    map: &AddressMap,
    cpus: &[CpuState],
    nthreads: i64,
    ci: usize,
) -> ScoutClass {
    let c = &cpus[ci];
    let view = ExprView {
        vars: &c.vars,
        tid: c.tid as i64,
        nthreads,
        tables: &cp.tables,
    };
    let locality = |addr: Addr, kind: AccessKind| match ms.access_locality(CpuId(ci), addr, kind) {
        AccessLocality::Local => ScoutClass::Local,
        AccessLocality::Boundary => ScoutClass::Boundary,
    };
    let classify_op = |op: Op| match op {
        Op::ComputeConst(_) | Op::ComputeDyn(_) => ScoutClass::Pure,
        Op::LoadShared(addr) => locality(addr, AccessKind::Load),
        Op::StoreShared(addr) => locality(addr, AccessKind::Store),
        Op::LoadPrivate(off) => locality(map.private_base(CpuId(ci)) + off, AccessKind::Load),
        Op::StorePrivate(off) => locality(map.private_base(CpuId(ci)) + off, AccessKind::Store),
        Op::LoadDyn { array, index } => {
            let idx = cp.exprs[index as usize].eval(&view);
            locality(
                cp.element_addr(map, CpuId(ci), array, idx),
                AccessKind::Load,
            )
        }
        Op::StoreDyn { array, index } => {
            let idx = cp.exprs[index as usize].eval(&view);
            locality(
                cp.element_addr(map, CpuId(ci), array, idx),
                AccessKind::Store,
            )
        }
        _ => ScoutClass::Other,
    };
    match c.frames.last() {
        Some(&Frame::For { body, cur, end, .. }) if cur < end => match cp.ops[body.0 as usize] {
            Op::ComputeConst(_) | Op::ComputeDyn(_) => ScoutClass::Pure,
            op => classify_op(op),
        },
        Some(&Frame::Seq { node, idx }) => match cp.ops[node.0 as usize] {
            Op::Seq { first, len } if idx < len as usize => {
                classify_op(cp.ops[cp.kids[first as usize + idx].0 as usize])
            }
            op if idx == 0 => classify_op(op),
            _ => ScoutClass::Other,
        },
        Some(&Frame::ChunkIter { body, .. }) => classify_op(cp.ops[body.0 as usize]),
        _ => ScoutClass::Other,
    }
}

/// The execution engine for one run.
pub struct Engine<'p> {
    cp: &'p CompiledProgram,
    cfg: EngineConfig,
    layout: TeamLayout,
    map: AddressMap,
    ms: MemSystem,
    q: Q,
    cpus: Vec<CpuState>,
    pairs: Vec<PairState>,
    construct_barrier: Barrier,
    region_barrier: Barrier,
    critical_locks: Vec<Lock>,
    reduction_lock: Lock,
    sched_locks: Vec<Lock>,
    sched_counter_lines: Vec<Addr>,
    /// Per-(loop encounter, thread) scheduler locks for the affinity
    /// extension; each thread's lock line is homed on its own node so
    /// own-queue grabs stay node-local.
    affinity_locks: Vec<Vec<Lock>>,
    single_lines: Vec<Addr>,
    sections_lines: Vec<Addr>,
    arena: ConstructArena,
    global_slip: Option<SlipstreamClause>,
    region_slip: RegionSlip,
    current_region: Option<NodeId>,
    job_gen: u64,
    job_flag: Addr,
    // Homed-line bump allocator state.
    alloc_next: Vec<u64>,
    alloc_base_line: u64,
    master_done: bool,
    events: u64,
    sched_grabs_total: u64,
    sched_steals_total: u64,
    /// One flag per `cfg.faults` event: fired yet?
    fault_fired: Vec<bool>,
    /// Team circuit breaker, advanced once per region boundary.
    breaker: TeamBreaker,
    /// Parallel regions dispatched so far (the health controller ticks at
    /// the boundary *before* each dispatch after the first, and once more
    /// at the end of the run).
    regions_dispatched: u64,
    /// CPU-domain event tracer (disabled unless `cfg.trace` is on).
    tracer: Tracer,
    /// Lookahead horizon in effect (resolved once at build).
    lookahead: Cycle,
    /// PDES scheduling diagnostics (stays zeroed on the serial path).
    pdes: PdesDiag,
    /// Memoized-phase-replay runtime state (inert without a plan).
    memo: MemoRt,
}

/// Iteration-start samples retained per licensed loop: the longest
/// steady-state period the engine can detect. Physical rotation (e.g.
/// barrier-line ownership migrating to the last arriver, which shifts who
/// arrives last next time) makes many loops periodic with period > 1, so
/// convergence is sought against every retained sample, not just the
/// previous iteration's.
const MEMO_HISTORY: usize = 8;

/// Give up memoization after this many consecutive samples taken with a
/// full history and no period found. Cold caches typically settle within
/// a few iterations; a loop that has not become periodic after a full
/// history plus eight more samples is doing something the fixed-point
/// argument cannot exploit, and every further sample is pure overhead.
const MEMO_MAX_STRIKES: u32 = 8;

/// One iteration-start machine-state sample.
struct MemoSample {
    /// Licensed frame's `cur` at the sampled boundary (period measure).
    cur: i64,
    /// Release time of the boundary the sample was taken at.
    at: Cycle,
    /// Time-shift-normalized digest of the complete machine state.
    digest: Vec<u64>,
    /// Monotone counter snapshot (the δ source).
    counters: Vec<u64>,
}

/// Sampling state for the licensed loop currently being executed.
struct MemoActive {
    /// Body node of the licensed `For` frame being tracked.
    body: NodeId,
    /// `cur` of the licensed frame at the last inspected boundary; a
    /// change marks the first boundary of a new iteration (the only
    /// sampling point).
    last_cur: i64,
    /// Recent iteration-start samples, oldest first.
    samples: Vec<MemoSample>,
}

/// Memoized-phase-replay runtime state. Inert (every check one branch)
/// when the plan is empty.
struct MemoRt {
    plan: MemoPlan,
    active: Option<MemoActive>,
    /// Consecutive non-converging sample pairs.
    strikes: u32,
    disabled: bool,
    diag: MemoDiag,
}

impl MemoRt {
    fn new(plan: MemoPlan) -> Self {
        MemoRt {
            plan,
            active: None,
            strikes: 0,
            disabled: false,
            diag: MemoDiag::default(),
        }
    }
}

/// The innermost licensed `For` frame on a stack, as
/// `(body, var, cur, end, step)`.
fn licensed_for(frames: &[Frame], plan: &MemoPlan) -> Option<(NodeId, VarId, i64, i64, u64)> {
    frames.iter().rev().find_map(|f| match f {
        Frame::For {
            var,
            cur,
            end,
            step,
            body,
        } if plan.lookup(*body).is_some() => Some((*body, *var, *cur, *end, *step)),
        _ => None,
    })
}

/// Encode one protocol frame into digest words. The licensed loop's own
/// `cur` is normalized to zero — it is the loop clock, advancing every
/// iteration by construction; everything else is raw. `DynP` schedules
/// and `RedP` operators are derived deterministically from the node and
/// carry no timing state of their own, so the node/target ids cover them.
fn memo_frame_words(f: &Frame, licensed: NodeId, out: &mut Vec<u64>) {
    match f {
        Frame::Seq { node, idx } => out.extend([1, node.0 as u64, *idx as u64]),
        Frame::For {
            var,
            cur,
            end,
            step,
            body,
        } => out.extend([
            2,
            var.0 as u64,
            if *body == licensed { 0 } else { *cur as u64 },
            *end as u64,
            *step,
            body.0 as u64,
        ]),
        Frame::ChunkIter {
            var,
            chunks,
            ci,
            cur,
            body,
        } => {
            out.extend([3, var.0 as u64, chunks.len() as u64]);
            for ch in chunks {
                out.extend([ch.lo as u64, ch.hi as u64]);
            }
            out.extend([*ci as u64, *cur as u64, body.0 as u64]);
        }
        Frame::LoopEnd { node, stage } => out.extend([4, node.0 as u64, *stage as u64]),
        Frame::Bar { internal, stage } => out.extend([5, *internal as u64, *stage as u64]),
        Frame::SingleP { node, enc, stage } => {
            out.extend([6, node.0 as u64, *enc as u64, *stage as u64])
        }
        Frame::SectionsP {
            node,
            enc,
            stage,
            claimed,
        } => out.extend([
            7,
            node.0 as u64,
            *enc as u64,
            *stage as u64,
            *claimed as u64,
        ]),
        Frame::DynP {
            node,
            enc,
            lo,
            hi,
            stage,
            chunk,
            ..
        } => out.extend([
            8,
            node.0 as u64,
            *enc as u64,
            *lo as u64,
            *hi as u64,
            *stage as u64,
            chunk.lo as u64,
            chunk.hi as u64,
        ]),
        Frame::CritP { lock, body, stage } => {
            out.extend([9, *lock as u64, body.0 as u64, *stage as u64])
        }
        Frame::RedP { red, stage } => out.extend([10, red.target.0 as u64, *stage as u64]),
        Frame::RegionP { node, stage } => out.extend([11, node.0 as u64, *stage as u64]),
        Frame::RegionEndP { stage } => out.extend([12, *stage as u64]),
        Frame::PoolWait => out.push(13),
        Frame::IoP {
            input,
            bytes,
            stage,
        } => out.extend([14, *input as u64, *bytes, *stage as u64]),
    }
}

const MASTER: usize = 0; // the master's OpenMP thread id

impl<'p> Engine<'p> {
    /// Build an engine for a compiled program.
    pub fn new(cp: &'p CompiledProgram, mut cfg: EngineConfig) -> Self {
        // The legacy injection interface maps onto wander faults.
        for &(tid, epoch) in &cfg.inject_divergence {
            cfg.faults.events.push(FaultEvent {
                kind: FaultKind::Wander,
                tid,
                seq: epoch,
                arg: 0,
            });
        }
        let fault_fired = vec![false; cfg.faults.events.len()];
        let layout = TeamLayout::new(&cfg.machine, cfg.mode).with_max_threads(cfg.env.num_threads);
        let mut ms = MemSystem::new(&cfg.machine);
        ms.set_self_invalidation(cfg.mode == ExecMode::Slipstream && cfg.policy.self_invalidation);
        ms.set_trace(&cfg.trace);
        let map = AddressMap::new(&cfg.machine);
        let base_line = cp.runtime_base / map.line_bytes();
        // workers > 1 swaps in the per-CMP domain queues (identical pop
        // order; see `Q`) and records the run's PDES configuration. The
        // serial path keeps the flat heap untouched.
        let workers = cfg.workers.max(1);
        let lookahead = cfg
            .lookahead
            .unwrap_or_else(|| dsm_sim::lookahead_cycles(&cfg.machine));
        let q = if workers > 1 {
            Q::Domains(DomainQueues::new(
                cfg.machine.num_cmps,
                cfg.machine.cpus_per_cmp,
            ))
        } else {
            Q::Serial(EventQueue::new())
        };
        let pdes = PdesDiag {
            workers,
            lookahead: if workers > 1 { lookahead } else { 0 },
            ..PdesDiag::default()
        };
        // Arm the memo plan only when nothing can perturb the certified
        // iteration dynamics: no mutation, faults, OS noise, or tracing,
        // and a deterministic single/double run (slipstream pairs have
        // their own recovery machinery the fixed-point argument does not
        // cover). Anything else leaves the plan empty — a memo-off run.
        let memo_armed = !cfg.memo.is_empty()
            && cfg.mutation == EngineMutation::None
            && cfg.os_noise.is_none()
            && !cfg.trace.is_on()
            && cfg.faults.is_empty()
            && cfg.mode != ExecMode::Slipstream;
        let memo = MemoRt::new(if memo_armed {
            cfg.memo.clone()
        } else {
            MemoPlan::default()
        });
        let mut eng = Engine {
            cp,
            layout,
            map,
            ms,
            q,
            cpus: Vec::new(),
            pairs: Vec::new(),
            construct_barrier: Barrier::new(1, 0),
            region_barrier: Barrier::new(1, 0),
            critical_locks: Vec::new(),
            reduction_lock: Lock::new(0),
            sched_locks: Vec::new(),
            sched_counter_lines: Vec::new(),
            affinity_locks: Vec::new(),
            single_lines: Vec::new(),
            sections_lines: Vec::new(),
            arena: ConstructArena::new(),
            global_slip: None,
            region_slip: RegionSlip::Off,
            current_region: None,
            job_gen: 0,
            job_flag: 0,
            alloc_next: vec![0; cfg.machine.num_cmps],
            alloc_base_line: base_line,
            master_done: false,
            events: 0,
            sched_grabs_total: 0,
            sched_steals_total: 0,
            fault_fired,
            breaker: TeamBreaker::new(cfg.health.breaker),
            regions_dispatched: 0,
            tracer: Tracer::new(&cfg.trace, TrackDomain::Cpu),
            lookahead,
            pdes,
            memo,
            cfg,
        };
        eng.init();
        eng
    }

    fn init(&mut self) {
        let ncpus = self.cfg.machine.num_cpus();
        let team = self.layout.team_size();

        // Runtime shared lines.
        let bar_line = self.alloc_line(CmpId(0));
        let region_bar_line = self.alloc_line(CmpId(0));
        self.job_flag = self.alloc_line(CmpId(0));
        self.reduction_lock = Lock::new(self.alloc_line(CmpId(0)));
        for _ in 0..self.cp.num_critical_locks {
            let addr = self.alloc_line(CmpId(0));
            self.critical_locks.push(Lock::new(addr));
        }

        let active_streams = self.layout.active_cpus().len();
        self.construct_barrier = Barrier::new(team as usize, bar_line);
        self.region_barrier = Barrier::new(active_streams, region_bar_line);

        // Pairs (slipstream only).
        if self.cfg.mode == ExecMode::Slipstream {
            for tid in 0..team {
                let r = self.layout.worker_cpu(tid);
                let a = self.layout.astream_cpu(tid).expect("slipstream layout");
                let cmp = CmpId(tid as usize);
                let decision = self.alloc_line(cmp);
                self.pairs.push(PairState::new(
                    tid,
                    r,
                    a,
                    SlipSync::G0,
                    0, // token semaphore is a pair register, not memory
                    0, // scheduling semaphore likewise
                    decision,
                ));
            }
        }

        // Processor states.
        for i in 0..ncpus {
            let assign = self.layout.assignment_of(CpuId(i));
            let (role, tid) = match assign {
                CpuAssignment::Worker { tid } => (
                    if self.cfg.mode == ExecMode::Slipstream {
                        StreamRole::R
                    } else {
                        StreamRole::Solo
                    },
                    tid,
                ),
                CpuAssignment::AStream { tid } => (StreamRole::A, tid),
                CpuAssignment::Idle => (StreamRole::Solo, 0),
            };
            self.ms.set_role(CpuId(i), role);
            let frames = match assign {
                CpuAssignment::Idle => Vec::new(),
                _ if tid as usize == MASTER => vec![Frame::Seq {
                    node: self.cp.root,
                    idx: 0,
                }],
                _ => vec![Frame::PoolWait],
            };
            // A Seq frame over a non-Seq root still works because we
            // normalize below.
            self.cpus.push(CpuState {
                timeline: CpuTimeline::new(),
                assign,
                role,
                tid,
                frames,
                vars: vec![0; self.cp.num_vars as usize],
                status: if assign == CpuAssignment::Idle {
                    Status::Done
                } else {
                    Status::Ready
                },
                next_wake: 0,
                park_class: TimeClass::JobWait,
                pending_class: None,
                singles_seen: 0,
                sections_seen: 0,
                dynloops_seen: 0,
                jobs_taken: 0,
                next_interrupt: 0,
                interrupts: 0,
                user: OpCounts::default(),
                stores_converted: 0,
                stores_skipped: 0,
                watchdog_deadline: None,
                watchdog_gen: 0,
                token_wait_deadline: None,
            });
        }

        // Active timelines record coalesced time-class spans when tracing.
        if self.cfg.trace.is_on() {
            let cap = self.cfg.trace.capacity;
            for c in self.cpus.iter_mut() {
                if c.assign != CpuAssignment::Idle {
                    c.timeline.enable_trace(cap);
                }
            }
        }

        // Stagger the first OS interruption per processor.
        if let Some(noise) = self.cfg.os_noise {
            for (i, c) in self.cpus.iter_mut().enumerate() {
                c.next_interrupt = mix64(noise.seed ^ (i as u64).wrapping_mul(0x9E37))
                    % noise.quantum_cycles.max(1);
            }
        }

        // Schedule all non-idle processors at cycle 0.
        for i in 0..ncpus {
            if self.cpus[i].status == Status::Ready {
                self.q.schedule(0, CpuId(i));
            }
        }
    }

    /// Allocate a fresh shared runtime line homed on `home`.
    fn alloc_line(&mut self, home: CmpId) -> Addr {
        let n = self.cfg.machine.num_cmps as u64;
        let k = self.alloc_next[home.0];
        self.alloc_next[home.0] += 1;
        let first = self.alloc_base_line;
        let offset = (home.0 as u64 + n - (first % n)) % n;
        let line = first + offset + k * n;
        debug_assert_eq!(line % n, home.0 as u64);
        line * self.map.line_bytes()
    }

    fn get_sched_lock(&mut self, enc: usize) -> usize {
        while self.sched_locks.len() <= enc {
            let addr = self.alloc_line(CmpId(self.sched_locks.len() % self.cfg.machine.num_cmps));
            self.sched_locks.push(Lock::new(addr));
            let caddr = self.alloc_line(CmpId(
                self.sched_counter_lines.len() % self.cfg.machine.num_cmps,
            ));
            self.sched_counter_lines.push(caddr);
        }
        enc
    }

    fn get_affinity_locks(&mut self, enc: usize) {
        let team = self.layout.team_size() as usize;
        while self.affinity_locks.len() <= enc {
            let mut row = Vec::with_capacity(team);
            for t in 0..team {
                let home = CmpId(t % self.cfg.machine.num_cmps);
                let addr = self.alloc_line(home);
                row.push(Lock::new(addr));
            }
            self.affinity_locks.push(row);
        }
    }

    fn get_single_line(&mut self, enc: usize) -> Addr {
        while self.single_lines.len() <= enc {
            let a = self.alloc_line(CmpId(self.single_lines.len() % self.cfg.machine.num_cmps));
            self.single_lines.push(a);
        }
        self.single_lines[enc]
    }

    fn get_sections_line(&mut self, enc: usize) -> Addr {
        while self.sections_lines.len() <= enc {
            let a = self.alloc_line(CmpId(self.sections_lines.len() % self.cfg.machine.num_cmps));
            self.sections_lines.push(a);
        }
        self.sections_lines[enc]
    }

    // ------------------------------------------------------- primitives --

    fn eval(&self, ci: usize, e: &Expr) -> i64 {
        let c = &self.cpus[ci];
        e.eval(&ExprView {
            vars: &c.vars,
            tid: c.tid as i64,
            nthreads: self.layout.team_size() as i64,
            tables: &self.cp.tables,
        })
    }

    fn busy(&mut self, ci: usize, cycles: u64, class: TimeClass) {
        self.cpus[ci].timeline.busy(cycles, class);
    }

    fn mem(&mut self, ci: usize, addr: Addr, kind: AccessKind, class: TimeClass) {
        let now = self.cpus[ci].timeline.now();
        let r = self.ms.access(
            CpuId(ci),
            addr,
            kind,
            now,
            &mut self.cpus[ci].timeline.stats,
        );
        self.cpus[ci].timeline.mem_access(1, r.complete, class);
    }

    fn element_addr(&self, ci: usize, array: ArrayId, index: i64) -> Addr {
        self.cp.element_addr(&self.map, CpuId(ci), array, index)
    }

    fn park(&mut self, ci: usize, class: TimeClass) {
        debug_assert_eq!(self.cpus[ci].status, Status::Ready);
        self.cpus[ci].status = Status::Parked;
        self.cpus[ci].park_class = class;
    }

    fn park_pool(&mut self, ci: usize) {
        self.cpus[ci].status = Status::PoolIdle;
        self.cpus[ci].park_class = TimeClass::JobWait;
    }

    fn wake(&mut self, cpu: CpuId, t: Cycle) {
        let c = &mut self.cpus[cpu.0];
        debug_assert!(
            matches!(c.status, Status::Parked | Status::PoolIdle),
            "waking a non-parked cpu {cpu:?}"
        );
        c.pending_class = Some(c.park_class);
        c.status = Status::Ready;
        // A normal wake disarms any pending token-wait timeout; the queued
        // deadline event then fails the armed-deadline match and is
        // discarded as stale.
        c.token_wait_deadline = None;
        let t = t.max(c.timeline.now());
        c.next_wake = t;
        self.q.schedule(t, cpu);
    }

    fn yield_self(&mut self, ci: usize) {
        let t = self.cpus[ci].timeline.now();
        self.cpus[ci].next_wake = t;
        self.q.schedule(t, CpuId(ci));
    }

    fn is_a(&self, ci: usize) -> bool {
        self.cpus[ci].role == StreamRole::A
    }

    fn pair_of(&self, ci: usize) -> Option<usize> {
        if self.cfg.mode == ExecMode::Slipstream {
            let tid = self.cpus[ci].tid as usize;
            if tid < self.pairs.len() {
                return Some(tid);
            }
        }
        None
    }

    fn slip_active(&self) -> Option<SlipSync> {
        match self.region_slip {
            RegionSlip::On(s) => Some(s),
            RegionSlip::Off => None,
        }
    }

    /// Slipstream synchronization in effect for `ci`'s pair: the region's
    /// setting, masked off for pairs demoted to single-stream mode.
    fn slip_on(&self, ci: usize) -> Option<SlipSync> {
        let s = self.slip_active()?;
        match self.pair_of(ci) {
            Some(p) if self.pairs[p].demoted() => None,
            _ => Some(s),
        }
    }

    fn pair_demoted(&self, ci: usize) -> bool {
        self.pair_of(ci)
            .map(|p| self.pairs[p].demoted())
            .unwrap_or(false)
    }

    /// Fire the first unfired fault scheduled for `(site, tid, seq)`, if
    /// any, at the hook point reached by `ci`. Each event fires at most
    /// once; firings are recorded in the victim pair's ledger (and in the
    /// trace, on the hook processor's track).
    fn fault_at(&mut self, ci: usize, site: FaultSite, tid: u64, seq: u64) -> Option<FaultEvent> {
        for i in 0..self.cfg.faults.events.len() {
            let e = self.cfg.faults.events[i];
            if !self.fault_fired[i] && e.kind.site() == site && e.tid == tid && e.seq == seq {
                self.fault_fired[i] = true;
                if (tid as usize) < self.pairs.len() {
                    self.pairs[tid as usize].faults_injected += 1;
                    let ai = self.pairs[tid as usize].a_cpu.0;
                    self.cpus[ai].timeline.stats.faults_injected += 1;
                }
                if self.tracer.is_on() {
                    let now = self.cpus[ci].timeline.now();
                    self.tracer.record(
                        now,
                        ci as u32,
                        TraceEvent::Fault {
                            kind: e.kind.label(),
                            site: site.label(),
                            pair: tid as u32,
                            seq,
                        },
                    );
                }
                return Some(e);
            }
        }
        None
    }

    /// True if the A-stream currently holds a construct lock (possible
    /// only under ablation policies that execute critical sections);
    /// re-seeding it then would orphan the lock.
    fn a_holds_lock(&self, a: CpuId) -> bool {
        self.reduction_lock.holder() == Some(a)
            || self.critical_locks.iter().any(|l| l.holder() == Some(a))
    }

    /// A-stream handshake failure (lost signal, corrupted or missing
    /// decision): mark the pair diverged and park until the R-stream
    /// re-seeds us. The A-stream is speculative, so giving up on the
    /// handshake is always safe.
    fn a_diverge(&mut self, ci: usize, p: usize) {
        self.pairs[p].diverged = true;
        self.park(ci, TimeClass::AStreamWait);
    }

    /// Trace an A–R lead-distance sample for pair `p` on `ci`'s track
    /// (recorded at every epoch boundary so the exporter can draw a
    /// per-pair lead counter track).
    fn trace_lead(&mut self, ci: usize, p: usize) {
        if !self.tracer.is_on() {
            return;
        }
        let t = self.cpus[ci].timeline.now();
        let lead = self.pairs[p].lead();
        self.tracer.record(
            t,
            ci as u32,
            TraceEvent::Lead {
                pair: p as u32,
                lead,
            },
        );
    }

    /// Trace an A-stream token consume (with the post-consume semaphore
    /// count) plus the resulting lead sample.
    fn trace_token_consume(&mut self, ci: usize, p: usize) {
        if !self.tracer.is_on() {
            return;
        }
        let t = self.cpus[ci].timeline.now();
        let count = self.pairs[p].tokens.count() as i64;
        self.tracer.record(
            t,
            ci as u32,
            TraceEvent::TokenConsume {
                pair: p as u32,
                count,
            },
        );
        self.trace_lead(ci, p);
    }

    /// Trace a consumed scheduling decision on `ci`'s track.
    fn trace_decision_consume(&mut self, ci: usize, p: usize, d: Option<Decision>) {
        if !self.tracer.is_on() {
            return;
        }
        if let Some(d) = d {
            let t = self.cpus[ci].timeline.now();
            self.tracer.record(
                t,
                ci as u32,
                TraceEvent::DecisionConsume {
                    pair: p as u32,
                    kind: d.label(),
                },
            );
        }
    }

    // ------------------------------------------------------ entry logic --

    /// Begin executing `node` on `ci`: leaves act immediately; containers
    /// push frames. Dispatches on the compile-time flat op table; only
    /// control constructs fall through to the `FNode` walk.
    fn enter(&mut self, ci: usize, node: NodeId) {
        let cp = self.cp;
        match cp.ops[node.0 as usize] {
            Op::Seq { .. } => self.cpus[ci].frames.push(Frame::Seq { node, idx: 0 }),
            Op::ComputeConst(cyc) => {
                self.cpus[ci].user.compute_cycles += cyc;
                self.busy(ci, cyc, TimeClass::Busy);
            }
            Op::ComputeDyn(x) => {
                let cyc = self.eval(ci, &cp.exprs[x as usize]).max(0) as u64;
                self.cpus[ci].user.compute_cycles += cyc;
                self.busy(ci, cyc, TimeClass::Busy);
            }
            Op::LoadShared(addr) => {
                self.cpus[ci].user.loads += 1;
                self.mem(ci, addr, AccessKind::Load, TimeClass::MemStall);
            }
            Op::LoadPrivate(off) => {
                let addr = self.map.private_base(CpuId(ci)) + off;
                self.cpus[ci].user.loads += 1;
                self.mem(ci, addr, AccessKind::Load, TimeClass::MemStall);
            }
            Op::LoadDyn { array, index } => {
                let idx = self.eval(ci, &cp.exprs[index as usize]);
                let addr = self.element_addr(ci, array, idx);
                self.cpus[ci].user.loads += 1;
                self.mem(ci, addr, AccessKind::Load, TimeClass::MemStall);
            }
            Op::StoreShared(addr) => {
                self.cpus[ci].user.stores += 1;
                if self.is_a(ci) {
                    self.a_shared_store(ci, addr);
                } else {
                    self.mem(ci, addr, AccessKind::Store, TimeClass::MemStall);
                }
            }
            Op::StorePrivate(off) => {
                let addr = self.map.private_base(CpuId(ci)) + off;
                self.cpus[ci].user.stores += 1;
                self.mem(ci, addr, AccessKind::Store, TimeClass::MemStall);
            }
            Op::StoreDyn { array, index } => {
                let idx = self.eval(ci, &cp.exprs[index as usize]);
                let addr = self.element_addr(ci, array, idx);
                self.cpus[ci].user.stores += 1;
                let shared = cp.arrays[array.0 as usize].shared;
                if self.is_a(ci) && shared {
                    self.a_shared_store(ci, addr);
                } else {
                    self.mem(ci, addr, AccessKind::Store, TimeClass::MemStall);
                }
            }
            Op::Slow => self.enter_slow(ci, node),
        }
    }

    /// Cold entry path: control constructs and rare leaves, dispatched by
    /// borrowing the `FNode` (no clone).
    fn enter_slow(&mut self, ci: usize, node: NodeId) {
        let cp = self.cp;
        let role_a = self.is_a(ci);
        match cp.node(node) {
            // Leaves covered by the op table never reach here, but the
            // arms stay for exhaustiveness (`enter` handles them).
            FNode::Seq(_) | FNode::Compute(_) | FNode::Load { .. } | FNode::Store { .. } => {
                self.enter(ci, node)
            }
            FNode::Atomic { array, index } => {
                let idx = self.eval(ci, index);
                let addr = self.element_addr(ci, *array, idx);
                self.cpus[ci].user.atomics += 1;
                if role_a {
                    if self.cfg.policy.atomic == AAction::Execute {
                        self.a_shared_store(ci, addr);
                    }
                    // Skip otherwise.
                } else {
                    // Read-modify-write under hardware atomicity.
                    self.busy(ci, 2, TimeClass::Busy);
                    self.mem(ci, addr, AccessKind::Store, TimeClass::MemStall);
                }
            }
            FNode::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                let lo = self.eval(ci, begin);
                let hi = self.eval(ci, end);
                self.cpus[ci].frames.push(Frame::For {
                    var: *var,
                    cur: lo,
                    end: hi,
                    step: *step,
                    body: *body,
                });
            }
            FNode::Parallel { .. } => {
                // Only master streams reach Parallel nodes (slaves get the
                // region through dispatch).
                self.cpus[ci].frames.push(Frame::RegionP { node, stage: 0 });
            }
            FNode::SlipstreamSet(clause) => {
                if !role_a {
                    self.global_slip = Some(*clause);
                }
                self.busy(ci, 1, TimeClass::Busy);
            }
            FNode::ParFor {
                sched,
                var,
                begin,
                end,
                body,
                nowait: _,
                reduction: _,
            } => {
                let var = *var;
                let body = *body;
                let lo = self.eval(ci, begin);
                let hi = self.eval(ci, end);
                let resolved = resolve_schedule(*sched, self.cfg.env.schedule);
                match resolved {
                    ResolvedSchedule::StaticBlock | ResolvedSchedule::StaticChunked(_) => {
                        // Each thread computes its chunks independently.
                        self.busy(ci, self.cfg.static_sched_cycles, TimeClass::Scheduling);
                        let tid = self.cpus[ci].tid;
                        let mut chunks =
                            static_chunks(resolved, lo, hi, 1, self.layout.team_size(), tid);
                        if self.cfg.mutation == EngineMutation::ChunkOffByOne
                            && tid + 1 == self.layout.team_size()
                        {
                            // Injected bug class: the last thread's final
                            // chunk silently loses its last iteration.
                            if let Some(last) = chunks.last_mut() {
                                if last.hi > last.lo {
                                    last.hi -= 1;
                                }
                            }
                        }
                        self.cpus[ci].frames.push(Frame::LoopEnd { node, stage: 0 });
                        self.cpus[ci].frames.push(Frame::ChunkIter {
                            var,
                            chunks,
                            ci: 0,
                            cur: i64::MIN,
                            body,
                        });
                    }
                    ResolvedSchedule::Dynamic(_)
                    | ResolvedSchedule::Guided(_)
                    | ResolvedSchedule::Affinity(_) => {
                        let enc = self.cpus[ci].dynloops_seen;
                        self.cpus[ci].dynloops_seen += 1;
                        self.get_sched_lock(enc);
                        if resolved.is_affinity() {
                            self.get_affinity_locks(enc);
                        }
                        self.cpus[ci].frames.push(Frame::LoopEnd { node, stage: 0 });
                        self.cpus[ci].frames.push(Frame::DynP {
                            node,
                            enc,
                            sched: resolved,
                            lo,
                            hi,
                            stage: 0,
                            chunk: Chunk { lo: 0, hi: 0 },
                        });
                    }
                }
            }
            FNode::Barrier => {
                self.cpus[ci].frames.push(Frame::Bar {
                    internal: false,
                    stage: 0,
                });
            }
            FNode::Single(_) => {
                let enc = self.cpus[ci].singles_seen;
                self.cpus[ci].singles_seen += 1;
                self.cpus[ci].frames.push(Frame::SingleP {
                    node,
                    enc,
                    stage: 0,
                });
            }
            FNode::Master(body) => {
                let is_master_tid = self.cpus[ci].tid as usize == MASTER;
                let execute = if role_a {
                    is_master_tid && self.cfg.policy.master == AAction::Execute
                } else {
                    is_master_tid
                };
                if execute {
                    self.enter(ci, *body);
                }
            }
            FNode::Critical { lock, body } => {
                if role_a {
                    // Execute only under the ablation policy; the paper's
                    // A-stream skips critical sections to avoid migrating
                    // protected data.
                    if self.cfg.policy.critical == AAction::Execute {
                        self.enter(ci, *body);
                    }
                } else {
                    self.cpus[ci].frames.push(Frame::CritP {
                        lock: *lock,
                        body: *body,
                        stage: 0,
                    });
                }
            }
            FNode::Sections(_) => {
                let enc = self.cpus[ci].sections_seen;
                self.cpus[ci].sections_seen += 1;
                self.cpus[ci].frames.push(Frame::SectionsP {
                    node,
                    enc,
                    stage: 0,
                    claimed: 0,
                });
            }
            FNode::Flush => {
                // Hardware-coherent machine: flush maps to void; the
                // A-stream skips it entirely.
                if !role_a {
                    self.busy(ci, 1, TimeClass::Busy);
                }
            }
            FNode::Io { input, bytes } => {
                self.cpus[ci].frames.push(Frame::IoP {
                    input: *input,
                    bytes: *bytes,
                    stage: 0,
                });
            }
        }
    }

    /// True when the stepper must return control to `run_cpu` between
    /// batched micro-steps: the exact disjunction of `run_cpu`'s loop
    /// checks (max-cycles trip, time-order yield, pending OS interrupt),
    /// so batching never moves a scheduling decision.
    fn must_bail(&self, ci: usize) -> bool {
        let now = self.cpus[ci].timeline.now();
        if now > self.cfg.max_cycles {
            return true;
        }
        if let Some(h) = self.q.peek_time() {
            if now > h {
                return true;
            }
        }
        if self.cfg.os_noise.is_some() && now >= self.cpus[ci].next_interrupt {
            return true;
        }
        false
    }

    /// Closed-form replay of a constant-compute `for` run (PDES pure
    /// prefix, `workers > 1` only). The serial batched loop retires one
    /// iteration per `overhead + cyc` cycles and re-checks `must_bail`
    /// between iterations; since nothing inside the run mutates shared
    /// state, its timeline is an arithmetic progression and the first
    /// bail point is computable without stepping. Retiring `k`
    /// iterations as one batch is exact: the induction variable keeps
    /// only its last write, op counts and time-class buckets are
    /// additive, and contiguous same-class spans coalesce in the trace
    /// log ([`sim_trace::SpanLog::note`]) — so stats, fingerprints, and
    /// traces all match the serial loop bit for bit.
    // The `stride == 0` arm is a semantic case split (time never
    // advances), not a checked-division guard — `checked_div` would
    // obscure that, so the lint is silenced rather than followed.
    #[allow(clippy::too_many_arguments, clippy::manual_checked_ops)]
    fn replay_const_run(
        &mut self,
        ci: usize,
        var: VarId,
        cur: i64,
        end: i64,
        step: u64,
        body: NodeId,
        stop_at: i64,
        cyc: u64,
        overhead: u64,
    ) {
        let stride = overhead + cyc;
        let start = self.cpus[ci].timeline.now();
        // Iterations left by the induction bound alone: values `cur`,
        // `cur + step`, ... strictly below `stop_at`. The caller enters
        // this arm only when `cur < end <= stop_at`, so `n >= 1`.
        let span = (stop_at as i128) - (cur as i128);
        let n = ((span + step as i128 - 1) / step as i128).min(u64::MAX as i128) as u64;
        // First k (iterations retired) at which the serial loop would
        // bail *between* iterations; MAX = runs to the induction bound.
        let mut k_bail = u64::MAX;
        if stride == 0 {
            // Time never advances, so the bail predicates are constant;
            // they are only consulted after an iteration retires.
            if self.must_bail(ci) {
                k_bail = 1;
            }
        } else {
            let mc = self.cfg.max_cycles;
            k_bail = k_bail.min(if start > mc {
                1
            } else {
                (mc - start) / stride + 1
            });
            if let Some(h) = self.q.peek_time() {
                k_bail = k_bail.min(if start > h {
                    1
                } else {
                    (h - start) / stride + 1
                });
            }
            if self.cfg.os_noise.is_some() {
                let ni = self.cpus[ci].next_interrupt;
                let k = if start >= ni {
                    1
                } else {
                    (ni - start).div_ceil(stride).max(1)
                };
                k_bail = k_bail.min(k);
            }
        }
        let k = n.min(k_bail);
        self.cpus[ci].vars[var.0 as usize] = cur + (k as i64 - 1) * step as i64;
        self.cpus[ci].user.compute_cycles += k * cyc;
        self.busy(ci, k * stride, TimeClass::Busy);
        self.pdes.ff_pieces += 1;
        self.pdes.ff_iters += k;
        if k < n {
            self.cpus[ci].frames.push(Frame::For {
                var,
                cur: cur + k as i64 * step as i64,
                end,
                step,
                body,
            });
        }
    }

    /// A-stream shared store: convert to a read-exclusive prefetch when in
    /// the same barrier session as the R-stream and an MSHR is free;
    /// otherwise skip (paper Section 5.1).
    fn a_shared_store(&mut self, ci: usize, addr: Addr) {
        let store_seq = self.cpus[ci].stores_converted + self.cpus[ci].stores_skipped;
        let convert = self.cfg.policy.convert_shared_stores
            && self
                .pair_of(ci)
                .map(|p| self.pairs[p].same_session())
                .unwrap_or(false)
            && {
                let cmp = CpuId(ci).cmp(&self.cfg.machine);
                let now = self.cpus[ci].timeline.now();
                self.ms.mshr_free(cmp, now)
            };
        if convert {
            self.cpus[ci].stores_converted += 1;
            self.cpus[ci].timeline.stats.stores_converted += 1;
            let mut target = addr;
            if let Some(p) = self.pair_of(ci) {
                let tid = self.pairs[p].tid;
                if let Some(ev) = self.fault_at(ci, FaultSite::AStore, tid, store_seq) {
                    if ev.kind == FaultKind::StalePrefetch {
                        // Failed self-invalidation: the prefetch lands on
                        // the pair's decision line instead of the intended
                        // one, polluting the cache with a stale line. R's
                        // correctness is unaffected; the pair just loses
                        // the prefetch benefit.
                        target = self.pairs[p].decision_addr;
                    }
                }
            }
            self.mem(ci, target, AccessKind::PrefetchEx, TimeClass::Busy);
        } else {
            self.cpus[ci].stores_skipped += 1;
            self.cpus[ci].timeline.stats.stores_skipped += 1;
            self.busy(ci, 1, TimeClass::Busy);
        }
    }

    // --------------------------------------------------------- stepping --

    /// Execute protocol steps for `ci` until it parks, finishes, or runs
    /// past the next pending event. Returns `Err` on watchdog trip.
    fn run_cpu(&mut self, ci: usize) -> Result<(), String> {
        // Account the time spent parked.
        let t = self.cpus[ci].next_wake;
        if let Some(class) = self.cpus[ci].pending_class.take() {
            self.cpus[ci].timeline.advance_to(t, class);
        }
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > 50_000_000 {
                return Err(format!("cpu {ci} made no blocking progress (livelock?)"));
            }
            if self.cpus[ci].status != Status::Ready {
                return Ok(()); // parked by the step
            }
            if self.cpus[ci].frames.is_empty() {
                self.cpus[ci].status = Status::Done;
                if self.cpus[ci].tid as usize == MASTER && !self.is_a(ci) {
                    self.master_done = true;
                }
                return Ok(());
            }
            if self.cpus[ci].timeline.now() > self.cfg.max_cycles {
                return Err(format!(
                    "cpu {ci} exceeded max_cycles={} (deadlock or runaway kernel)",
                    self.cfg.max_cycles
                ));
            }
            // Yield once we have advanced past the next pending event so
            // other processors observe memory in time order.
            if let Some(h) = self.q.peek_time() {
                if self.cpus[ci].timeline.now() > h {
                    self.yield_self(ci);
                    return Ok(());
                }
            }
            // OS interference: steal a slice when the quantum expires.
            if let Some(noise) = self.cfg.os_noise {
                let now = self.cpus[ci].timeline.now();
                if now >= self.cpus[ci].next_interrupt {
                    self.cpus[ci]
                        .timeline
                        .busy(noise.slice_cycles, TimeClass::Os);
                    self.cpus[ci].interrupts += 1;
                    let jitter = mix64(noise.seed ^ now ^ ((ci as u64) << 32))
                        % (noise.quantum_cycles / 4).max(1);
                    self.cpus[ci].next_interrupt =
                        now + noise.slice_cycles + noise.quantum_cycles + jitter
                            - noise.quantum_cycles / 8;
                }
            }
            self.step_once(ci);
        }
    }

    fn step_once(&mut self, ci: usize) {
        let fr = self.cpus[ci].frames.pop().expect("step with no frames");
        match fr {
            Frame::Seq { node, idx } => {
                let cp = self.cp;
                let (first, len) = match cp.ops[node.0 as usize] {
                    Op::Seq { first, len } => (first as usize, len as usize),
                    _ => {
                        // Normalized singleton (non-Seq root).
                        if idx == 0 {
                            self.cpus[ci].frames.push(Frame::Seq { node, idx: 1 });
                            self.enter(ci, node);
                        }
                        return;
                    }
                };
                // Runs of consecutive compute children retire in one
                // step, re-checking the scheduler's bail conditions
                // between each so every yield point of the unbatched
                // stepper is preserved exactly.
                let mut i = idx;
                while i < len {
                    let kid = cp.kids[first + i];
                    match cp.ops[kid.0 as usize] {
                        Op::ComputeConst(cyc) => {
                            self.cpus[ci].user.compute_cycles += cyc;
                            self.busy(ci, cyc, TimeClass::Busy);
                        }
                        Op::ComputeDyn(x) => {
                            let cyc = self.eval(ci, &cp.exprs[x as usize]).max(0) as u64;
                            self.cpus[ci].user.compute_cycles += cyc;
                            self.busy(ci, cyc, TimeClass::Busy);
                        }
                        _ => {
                            self.cpus[ci].frames.push(Frame::Seq { node, idx: i + 1 });
                            self.enter(ci, kid);
                            return;
                        }
                    }
                    i += 1;
                    if i < len && self.must_bail(ci) {
                        self.cpus[ci].frames.push(Frame::Seq { node, idx: i });
                        return;
                    }
                }
            }
            Frame::For {
                var,
                cur,
                end,
                step,
                body,
            } => {
                if cur < end {
                    // Compute-only bodies iterate natively: same per-
                    // iteration busy cycles and induction-variable
                    // updates, with the scheduler's bail conditions
                    // checked between iterations (a zero step falls
                    // through so the livelock guard still sees it).
                    let overhead = self.cfg.machine.loop_overhead_cycles;
                    let cp = self.cp;
                    // Injected bug class: the batched loop's exit check is
                    // off by one, retiring one extra iteration whenever the
                    // induction variable lands exactly on the bound.
                    let stop_at = if self.cfg.mutation == EngineMutation::BatchBailOffByOne {
                        end.saturating_add(1)
                    } else {
                        end
                    };
                    if step > 0 {
                        match cp.ops[body.0 as usize] {
                            Op::ComputeConst(cyc) => {
                                if self.cfg.workers > 1 {
                                    // PDES pure-prefix replay: the whole
                                    // run below is an arithmetic
                                    // progression in time, so the first
                                    // bail point is computable in O(1)
                                    // and the retired prefix commits as
                                    // one batch — bit-identical to the
                                    // serial loop (see DESIGN.md §13).
                                    self.replay_const_run(
                                        ci, var, cur, end, step, body, stop_at, cyc, overhead,
                                    );
                                    return;
                                }
                                let mut cur = cur;
                                loop {
                                    self.cpus[ci].vars[var.0 as usize] = cur;
                                    self.cpus[ci].user.compute_cycles += cyc;
                                    self.busy(ci, overhead + cyc, TimeClass::Busy);
                                    cur += step as i64;
                                    if cur >= stop_at {
                                        return;
                                    }
                                    if self.must_bail(ci) {
                                        self.cpus[ci].frames.push(Frame::For {
                                            var,
                                            cur,
                                            end,
                                            step,
                                            body,
                                        });
                                        return;
                                    }
                                }
                            }
                            Op::ComputeDyn(x) => {
                                let mut cur = cur;
                                loop {
                                    self.cpus[ci].vars[var.0 as usize] = cur;
                                    let cyc = self.eval(ci, &cp.exprs[x as usize]).max(0) as u64;
                                    self.cpus[ci].user.compute_cycles += cyc;
                                    self.busy(ci, overhead + cyc, TimeClass::Busy);
                                    cur += step as i64;
                                    if cur >= stop_at {
                                        return;
                                    }
                                    if self.must_bail(ci) {
                                        self.cpus[ci].frames.push(Frame::For {
                                            var,
                                            cur,
                                            end,
                                            step,
                                            body,
                                        });
                                        return;
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    self.cpus[ci].vars[var.0 as usize] = cur;
                    self.cpus[ci].frames.push(Frame::For {
                        var,
                        cur: cur + step as i64,
                        end,
                        step,
                        body,
                    });
                    self.busy(ci, overhead, TimeClass::Busy);
                    self.enter(ci, body);
                }
            }
            Frame::ChunkIter {
                var,
                chunks,
                ci: cidx,
                cur,
                body,
            } => {
                // Find the next iteration, moving across chunks. `cur`
                // starts at i64::MIN so the first iteration is chunk.lo.
                let mut cidx = cidx;
                let mut cur = cur;
                loop {
                    if cidx >= chunks.len() {
                        return; // all chunks done; frame dropped
                    }
                    let ch = chunks[cidx];
                    let v = cur.max(ch.lo);
                    if v < ch.hi {
                        self.cpus[ci].vars[var.0 as usize] = v;
                        self.cpus[ci].frames.push(Frame::ChunkIter {
                            var,
                            chunks,
                            ci: cidx,
                            cur: v + 1,
                            body,
                        });
                        self.busy(ci, self.cfg.machine.loop_overhead_cycles, TimeClass::Busy);
                        self.enter(ci, body);
                        return;
                    }
                    cidx += 1;
                    cur = i64::MIN;
                }
            }
            Frame::LoopEnd { node, stage } => self.loop_end(ci, node, stage),
            Frame::Bar { internal, stage } => self.barrier_step(ci, internal, stage),
            Frame::SingleP { node, enc, stage } => self.single_step(ci, node, enc, stage),
            Frame::SectionsP {
                node,
                enc,
                stage,
                claimed,
            } => self.sections_step(ci, node, enc, stage, claimed),
            Frame::DynP {
                node,
                enc,
                sched,
                lo,
                hi,
                stage,
                chunk,
            } => self.dyn_step(ci, node, enc, sched, lo, hi, stage, chunk),
            Frame::CritP { lock, body, stage } => self.critical_step(ci, lock, body, stage),
            Frame::RedP { red, stage } => self.reduction_step(ci, red, stage),
            Frame::RegionP { node, stage } => self.region_step(ci, node, stage),
            Frame::RegionEndP { stage } => self.region_end_step(ci, stage),
            Frame::PoolWait => self.pool_step(ci),
            Frame::IoP {
                input,
                bytes,
                stage,
            } => self.io_step(ci, input, bytes, stage),
        }
    }

    // -------------------------------------------------------- protocols --

    /// R-stream: insert a token and wake the A-stream if it was waiting.
    /// Fault hook: `TokenLoss` drops the signal, `TokenDup` doubles it.
    fn insert_token(&mut self, ci: usize) {
        if let Some(p) = self.pair_of(ci) {
            if self.slip_on(ci).is_some() {
                self.busy(ci, self.cfg.machine.pair_register_cycles, TimeClass::Busy);
                let tid = self.pairs[p].tid;
                let seq = self.pairs[p].token_seq;
                self.pairs[p].token_seq = seq.wrapping_add(1);
                let mut fault = self
                    .fault_at(ci, FaultSite::TokenInsert, tid, seq)
                    .map(|e| e.kind);
                if self.cfg.mutation == EngineMutation::TokenAccounting && seq % 2 == 1 {
                    // Injected bug class: every second pair-register write
                    // is dropped, exactly like a deterministic TokenLoss.
                    fault = Some(FaultKind::TokenLoss);
                }
                if fault == Some(FaultKind::TokenLoss) {
                    // The pair-register write is lost: the semaphore never
                    // sees the insertion, so the A-stream may strand on an
                    // empty semaphore. The barrier watchdog is the backstop.
                    if self.tracer.is_on() {
                        let t = self.cpus[ci].timeline.now();
                        let count = self.pairs[p].tokens.count() as i64;
                        self.tracer.record(
                            t,
                            ci as u32,
                            TraceEvent::TokenInsert {
                                pair: p as u32,
                                seq,
                                count,
                                lost: true,
                            },
                        );
                    }
                    return;
                }
                let woken = self.pairs[p].tokens.signal();
                let woken = if fault == Some(FaultKind::TokenDup) {
                    // Replayed write: a second token lets the A-stream run
                    // one session further ahead than the policy allows. The
                    // slack heuristic at the next R barrier spots it.
                    woken.or(self.pairs[p].tokens.signal())
                } else {
                    woken
                };
                let t = self.cpus[ci].timeline.now();
                if self.tracer.is_on() {
                    let count = self.pairs[p].tokens.count() as i64;
                    self.tracer.record(
                        t,
                        ci as u32,
                        TraceEvent::TokenInsert {
                            pair: p as u32,
                            seq,
                            count,
                            lost: false,
                        },
                    );
                }
                if let Some(a_cpu) = woken {
                    self.wake(a_cpu, t);
                }
            }
        }
    }

    /// R-stream divergence check at a barrier; recovers the A-stream if
    /// it is known-diverged or tokens have accumulated unconsumed.
    fn check_divergence(&mut self, ci: usize) {
        let Some(p) = self.pair_of(ci) else { return };
        if self.slip_on(ci).is_none() {
            return;
        }
        self.busy(ci, 2, TimeClass::Busy); // compare token count
        let suspected = self.pairs[p].diverged
            || self.pairs[p].divergence_suspected(self.cfg.recovery.divergence_slack);
        if suspected {
            self.recover_astream(ci, p);
        }
    }

    /// Recover pair `p`'s A-stream from R-stream `ci`'s current state, if
    /// the A-stream is actually lost. An A-stream that is ahead and
    /// healthy — parked at the region-end barrier, waiting on a lock, or
    /// already done — must not be re-seeded: yanking it would corrupt
    /// barrier arrival counts or orphan a held lock.
    fn recover_astream(&mut self, ci: usize, p: usize) {
        let a_cpu = self.pairs[p].a_cpu;
        let ai = a_cpu.0;
        match self.cpus[ai].status {
            Status::Done | Status::PoolIdle => {
                self.pairs[p].diverged = false;
                return;
            }
            Status::Parked
                if !matches!(
                    self.cpus[ai].park_class,
                    TimeClass::AStreamWait | TimeClass::Recovery
                ) =>
            {
                // Parked at a barrier or on a lock: it is ahead of R, not
                // lost. Clear the (false) suspicion and move on.
                self.pairs[p].diverged = false;
                return;
            }
            _ => {}
        }
        if self.a_holds_lock(a_cpu) {
            self.pairs[p].diverged = false;
            return;
        }
        let frames = self.cpus[ci].frames.clone();
        let now = self.cpus[ci].timeline.now();
        self.reseed_astream(ci, p, frames, false, now);
    }

    /// Re-seed pair `p`'s A-stream with the continuation `frames` (cloned
    /// from R-stream `ci`, possibly transformed by the caller), charging
    /// the recovery cost and enforcing the bounded-retry budget. The
    /// recovery ledger distinguishes watchdog-forced recoveries.
    fn reseed_astream(
        &mut self,
        ci: usize,
        p: usize,
        frames: Vec<Frame>,
        watchdog: bool,
        now: Cycle,
    ) {
        let a_cpu = self.pairs[p].a_cpu;
        let ai = a_cpu.0;
        let sync = self.pairs[p].sync;
        // Discard published-but-unconsumed scheduling decisions together
        // with their semaphore tokens, and evict the A-stream from any
        // semaphore queue it is stranded in (a stale waiter entry would
        // hand the re-seeded stream a phantom grant later).
        self.pairs[p].decisions.clear();
        let _ = self.pairs[p].sched_sem.force_reset(0);
        let _ = self.pairs[p].tokens.force_reset(sync.tokens);
        self.pairs[p].diverged = false;
        self.pairs[p].recoveries += 1;
        self.pairs[p].episode_recoveries += 1;
        if watchdog {
            self.pairs[p].watchdog_recoveries += 1;
            self.cpus[ai].timeline.stats.watchdog_recoveries += 1;
        }
        // Attribute a pending token-wait timeout to this recovery.
        let timeout = std::mem::take(&mut self.pairs[p].timeout_pending);
        if timeout {
            self.pairs[p].timeout_recoveries += 1;
        }
        let r_epoch = self.pairs[p].r_epoch;
        self.pairs[p].a_epoch = r_epoch;
        self.cpus[ai].timeline.stats.recoveries += 1;
        if self.tracer.is_on() {
            self.tracer.record(
                now,
                ai as u32,
                TraceEvent::Recovery {
                    pair: p as u32,
                    watchdog,
                    timeout,
                },
            );
        }
        // The retry budget bounds the current health episode (reset on
        // re-promotion, so a probationary pair starts with a fresh
        // budget); any recovery *on* probation fails the trial outright.
        if !self.pairs[p].demoted()
            && (self.pairs[p].episode_recoveries > self.cfg.recovery.max_recoveries_per_pair
                || self.pairs[p].health.state == HealthState::Probation)
        {
            // Retrying is judged futile: degrade gracefully instead.
            self.demote_pair(ci, p, now);
            return;
        }
        self.cpus[ai].vars = self.cpus[ci].vars.clone();
        self.cpus[ai].frames = frames;
        self.cpus[ai].singles_seen = self.cpus[ci].singles_seen;
        self.cpus[ai].sections_seen = self.cpus[ci].sections_seen;
        self.cpus[ai].dynloops_seen = self.cpus[ci].dynloops_seen;
        self.cpus[ai].jobs_taken = self.cpus[ci].jobs_taken;
        let t = now + self.cfg.recovery.recovery_cycles;
        match self.cpus[ai].status {
            Status::Parked => {
                self.cpus[ai].park_class = TimeClass::Recovery;
                self.wake(a_cpu, t);
            }
            _ => {
                // Ready (e.g. mid-stall-burst with a queued event): the new
                // frames take effect at its next dispatch; just charge the
                // re-seed cost.
                self.cpus[ai]
                    .timeline
                    .busy(self.cfg.recovery.recovery_cycles, TimeClass::Recovery);
            }
        }
    }

    /// Demote pair `p` to single-stream mode: the A-stream abandons the
    /// region body and proceeds straight to the region-end barrier (the
    /// team layout counts it there), and the R-stream stops inserting
    /// tokens and publishing decisions for it ([`Engine::slip_on`]).
    fn demote_pair(&mut self, ci: usize, p: usize, now: Cycle) {
        let a_cpu = self.pairs[p].a_cpu;
        let ai = a_cpu.0;
        self.pairs[p].mode = PairMode::DegradedSingle;
        self.pairs[p].demoted_at = Some(now);
        self.cpus[ai].timeline.stats.demotions = 1;
        let from = self.pairs[p].health.on_demote(&self.cfg.health);
        if self.tracer.is_on() {
            self.tracer
                .record(now, ai as u32, TraceEvent::Demotion { pair: p as u32 });
        }
        self.trace_health(ai, p, from, HealthState::Demoted, now);
        // The A-stream's remaining obligation is the region-end barrier.
        // Rebuild its continuation as R's enclosing region-end protocol
        // with the body dropped; a worker A outside any region frame just
        // waits for the end.
        let frames = match self.cpus[ci]
            .frames
            .iter()
            .rposition(|f| matches!(f, Frame::RegionEndP { .. }))
        {
            Some(idx) => {
                let mut f = self.cpus[ci].frames[..=idx].to_vec();
                f[idx] = Frame::RegionEndP { stage: 0 };
                f
            }
            None => vec![Frame::RegionEndP { stage: 0 }],
        };
        self.cpus[ai].vars = self.cpus[ci].vars.clone();
        self.cpus[ai].frames = frames;
        let t = now + self.cfg.recovery.recovery_cycles;
        match self.cpus[ai].status {
            Status::Parked => {
                self.cpus[ai].park_class = TimeClass::Recovery;
                self.wake(a_cpu, t);
            }
            _ => {
                self.cpus[ai]
                    .timeline
                    .busy(self.cfg.recovery.recovery_cycles, TimeClass::Recovery);
            }
        }
    }

    /// Arm the barrier watchdog for R-stream `ci`, parked at the
    /// region-end barrier. If the deadline passes while it is still
    /// parked in the same barrier generation, stuck A-streams are forced
    /// through recovery instead of deadlocking the run.
    fn arm_watchdog(&mut self, ci: usize, now: Cycle) {
        if self.cfg.recovery.watchdog_cycles == 0 || self.slip_active().is_none() {
            return;
        }
        let deadline = now + self.cfg.recovery.watchdog_cycles;
        self.cpus[ci].watchdog_deadline = Some(deadline);
        self.cpus[ci].watchdog_gen = self.region_barrier.generation();
        self.q.schedule(deadline, CpuId(ci));
    }

    /// Watchdog deadline reached for `ci`. Validate it is still stuck at
    /// the same region-end barrier, then force-recover every stranded
    /// A-stream (token loss / lost signals leave the A parked where no
    /// slack heuristic ever fires).
    fn watchdog_fire(&mut self, ci: usize, t: Cycle) {
        self.cpus[ci].watchdog_deadline = None;
        if self.cpus[ci].status != Status::Parked
            || self.cpus[ci].park_class != TimeClass::Barrier
            || self.region_barrier.generation() != self.cpus[ci].watchdog_gen
            || !matches!(
                self.cpus[ci].frames.last(),
                Some(Frame::Bar { internal: true, .. })
            )
        {
            return; // stale: the barrier released in the meantime
        }
        let mut recovered = false;
        for p in 0..self.pairs.len() {
            let a_cpu = self.pairs[p].a_cpu;
            let ai = a_cpu.0;
            // Stuck means: parked somewhere other than this barrier.
            let stuck = match self.cpus[ai].status {
                Status::Parked => self.cpus[ai].park_class != TimeClass::Barrier,
                _ => false,
            };
            if !stuck || self.a_holds_lock(a_cpu) {
                continue;
            }
            // Re-seed only from an R-stream that is itself parked inside
            // the region-end barrier protocol: rebuild its continuation so
            // the A-stream arrives at that barrier itself. An R still
            // working through the region makes progress on its own and
            // recovers its A at its next divergence check instead.
            let ri = self.pairs[p].r_cpu.0;
            let mut frames = self.cpus[ri].frames.clone();
            match frames.last() {
                Some(Frame::Bar { internal: true, .. }) => {
                    let top = frames.len() - 1;
                    frames[top] = Frame::Bar {
                        internal: true,
                        stage: 0,
                    };
                }
                _ => continue,
            }
            self.pairs[p].diverged = true;
            self.reseed_astream(ri, p, frames, true, t);
            recovered = true;
        }
        if !recovered {
            // Nothing was recoverable right now (e.g. A-streams merely
            // slow and still Ready, or their R-streams still mid-region).
            // Re-arm; if the machine is truly wedged the event-queue
            // drain reports the deadlock.
            let progressing = self.cpus.iter().any(|c| c.status == Status::Ready);
            if progressing {
                self.arm_watchdog(ci, t);
            }
        }
    }

    /// Trace a health-controller transition on `ci`'s track.
    fn trace_health(&mut self, ci: usize, p: usize, from: HealthState, to: HealthState, t: Cycle) {
        if !self.tracer.is_on() || from == to {
            return;
        }
        self.tracer.record(
            t,
            ci as u32,
            TraceEvent::Health {
                pair: p as u32,
                from: from.label(),
                to: to.label(),
            },
        );
    }

    /// Arm the token-wait timeout for A-stream `ci`, just parked on pair
    /// `p`'s token or scheduling semaphore. The deadline backs off
    /// exponentially with the region's consecutive timeout count. One
    /// deadline per park: a normal wake disarms it ([`Engine::wake`]).
    fn arm_token_wait(&mut self, ci: usize, p: usize) {
        if self.pairs[p].demoted() {
            return;
        }
        let Some(len) = self
            .cfg
            .recovery
            .token_wait_deadline(self.pairs[p].wait_timeouts)
        else {
            return;
        };
        let now = self.cpus[ci].timeline.now();
        let deadline = now.saturating_add(len);
        self.cpus[ci].token_wait_deadline = Some(deadline);
        self.q.schedule(deadline, CpuId(ci));
    }

    /// Token-wait deadline reached for A-stream `ci`. Validate it is
    /// still stranded on the pair-semaphore path, then declare divergence
    /// instead of hanging: if its R-stream is already parked at the
    /// region-end barrier (and will never run another divergence check)
    /// re-seed immediately, otherwise the R-stream's next check recovers
    /// it.
    fn token_wait_fire(&mut self, ci: usize, t: Cycle) {
        self.cpus[ci].token_wait_deadline = None;
        let Some(p) = self.pair_of(ci) else { return };
        if self.cpus[ci].status != Status::Parked
            || self.cpus[ci].park_class != TimeClass::AStreamWait
            || self.pairs[p].demoted()
        {
            return; // stale: woken, recovered, or demoted in the meantime
        }
        self.pairs[p].wait_timeouts += 1;
        self.pairs[p].timeout_pending = true;
        self.pairs[p].diverged = true;
        let a_cpu = self.pairs[p].a_cpu;
        let ri = self.pairs[p].r_cpu.0;
        let r_at_region_end = self.cpus[ri].status == Status::Parked
            && matches!(
                self.cpus[ri].frames.last(),
                Some(Frame::Bar { internal: true, .. })
            );
        if r_at_region_end && !self.a_holds_lock(a_cpu) {
            let mut frames = self.cpus[ri].frames.clone();
            let top = frames.len() - 1;
            frames[top] = Frame::Bar {
                internal: true,
                stage: 0,
            };
            self.reseed_astream(ri, p, frames, false, t);
        }
    }

    /// Re-promote a demoted pair back into slipstream on probation: the
    /// retry budget refreshes and the pair runs the upcoming region as a
    /// full A–R pair again. Called at the region boundary, before the
    /// region's `start_region`/dispatch, so the A-stream (idling in the
    /// pool or shadowing serial code) simply takes the next job with the
    /// body re-enabled.
    fn repromote_pair(&mut self, p: usize) {
        self.pairs[p].mode = PairMode::Slipstream;
        self.pairs[p].diverged = false;
        self.pairs[p].episode_recoveries = 0;
        self.pairs[p].wait_timeouts = 0;
        self.pairs[p].timeout_pending = false;
    }

    /// Advance the pair-health controller and the team breaker by one
    /// region boundary: tick every pair's state machine on its recovery
    /// and fill-classifier deltas, execute re-promotions, then let the
    /// breaker decide whether the upcoming region may run slipstream.
    /// Pure bookkeeping — no simulated cycles are charged, and under
    /// [`HealthPolicy::paper`] no state ever changes.
    fn health_region_tick(&mut self, ci: usize, now: Cycle) {
        for p in 0..self.pairs.len() {
            let recoveries = self.pairs[p].recoveries;
            let cmp = CmpId(self.pairs[p].tid as usize);
            let tally = self.ms.classifier.a_tally(cmp);
            let fills = FillWindow {
                polluted: tally.polluted,
                total: tally.total,
            };
            let out = self.pairs[p]
                .health
                .on_region_boundary(&self.cfg.health, recoveries, fills);
            if out.repromote {
                self.repromote_pair(p);
            }
            if let Some((from, to)) = out.transition {
                let ai = self.pairs[p].a_cpu.0;
                self.trace_health(ai, p, from, to, now);
            }
        }
        let unhealthy = self
            .pairs
            .iter()
            .filter(|p| p.health.counts_as_unhealthy())
            .count();
        let team = self.pairs.len();
        let before = self.breaker.state();
        let after = self.breaker.on_region_boundary(unhealthy, team);
        if after != before && self.tracer.is_on() {
            self.tracer.record(
                now,
                ci as u32,
                TraceEvent::Breaker {
                    from: before.label(),
                    to: after.label(),
                    unhealthy: unhealthy as u32,
                },
            );
        }
    }

    /// Barrier protocol. Stages: 0 = entry (A: token consume; R: local
    /// token insert + arrive), 1 = A woken with a granted token,
    /// 2 = R woken by release (post-wait flag load + global token insert).
    fn barrier_step(&mut self, ci: usize, internal: bool, stage: u8) {
        let role_a = self.is_a(ci);
        if role_a && !internal {
            if let Some(sync) = self.slip_on(ci) {
                let _ = sync;
                match stage {
                    0 => {
                        let p = self.pair_of(ci).expect("A-stream without pair");
                        let tid = self.cpus[ci].tid;
                        let epoch = self.pairs[p].a_epoch;
                        match self.fault_at(ci, FaultSite::ABarrier, tid, epoch) {
                            Some(ev) if ev.kind == FaultKind::Wander => {
                                // Wander off the control path: diverge and
                                // park until recovered.
                                self.a_diverge(ci, p);
                                return;
                            }
                            Some(ev) if ev.kind == FaultKind::StallBurst => {
                                // OS preemption burst on the A processor:
                                // lose the cycles, then proceed normally.
                                self.busy(ci, ev.arg, TimeClass::Os);
                            }
                            _ => {}
                        }
                        self.busy(ci, self.cfg.machine.pair_register_cycles, TimeClass::Busy);
                        let granted = self.pairs[p].tokens.wait(CpuId(ci));
                        if granted {
                            self.pairs[p].bump_a_epoch();
                            self.cpus[ci].timeline.stats.barriers += 1;
                            self.trace_token_consume(ci, p);
                        } else {
                            self.cpus[ci].frames.push(Frame::Bar { internal, stage: 1 });
                            if self.tracer.is_on() {
                                let t = self.cpus[ci].timeline.now();
                                self.tracer.record(
                                    t,
                                    ci as u32,
                                    TraceEvent::TokenWait { pair: p as u32 },
                                );
                            }
                            self.park(ci, TimeClass::AStreamWait);
                            self.arm_token_wait(ci, p);
                        }
                    }
                    1 => {
                        let p = self.pair_of(ci).expect("A-stream without pair");
                        self.pairs[p].bump_a_epoch();
                        self.cpus[ci].timeline.stats.barriers += 1;
                        self.trace_token_consume(ci, p);
                    }
                    _ => unreachable!("A-stream barrier stage"),
                }
                return;
            }
            // Slipstream off for this region (or the pair is demoted): A
            // skips construct barriers without tokens.
            return;
        }

        // R-stream or solo (or any stream at an internal barrier).
        match stage {
            0 => {
                if !internal && !role_a {
                    self.check_divergence(ci);
                    if let Some(sync) = self.slip_on(ci) {
                        if !sync.global {
                            // Local sync: token inserted at barrier entry.
                            self.insert_token(ci);
                            if let Some(p) = self.pair_of(ci) {
                                self.pairs[p].bump_r_epoch();
                                self.trace_lead(ci, p);
                            }
                        }
                    }
                }
                // Arrive: fetch-and-increment of the barrier counter — a
                // read-modify-write that migrates the line to this node.
                let bar_addr = if internal {
                    self.region_barrier.addr
                } else {
                    self.construct_barrier.addr
                };
                self.mem(ci, bar_addr, AccessKind::Load, TimeClass::Barrier);
                self.mem(ci, bar_addr, AccessKind::Store, TimeClass::Barrier);
                self.cpus[ci].timeline.stats.barriers += 1;
                if self.tracer.is_on() {
                    let t = self.cpus[ci].timeline.now();
                    let bar = if internal {
                        &self.region_barrier
                    } else {
                        &self.construct_barrier
                    };
                    let ev = TraceEvent::BarrierArrive {
                        addr: bar_addr,
                        generation: bar.generation(),
                        arrived: bar.arrived() as u32 + 1,
                        total: bar.total() as u32,
                    };
                    self.tracer.record(t, ci as u32, ev);
                }
                let released = {
                    let bar = if internal {
                        &mut self.region_barrier
                    } else {
                        &mut self.construct_barrier
                    };
                    bar.arrive(CpuId(ci))
                };
                match released {
                    Some(waiters) => {
                        // Memoized phase replay: a non-internal barrier
                        // release is a certified phase boundary — the only
                        // point where a licensed loop may bulk-jump. Runs
                        // before the waiter wakes so a jump shifts every
                        // timeline first and the wakes land at the
                        // post-jump release time.
                        if !internal {
                            self.memo_boundary(ci, &waiters);
                        }
                        let t = self.cpus[ci].timeline.now();
                        if self.tracer.is_on() {
                            let generation = if internal {
                                self.region_barrier.generation()
                            } else {
                                self.construct_barrier.generation()
                            };
                            self.tracer.record(
                                t,
                                ci as u32,
                                TraceEvent::BarrierRelease {
                                    addr: bar_addr,
                                    generation,
                                    woken: waiters.len() as u32,
                                },
                            );
                        }
                        for w in waiters {
                            self.wake(w, t);
                        }
                        // The releasing arriver proceeds directly.
                        self.barrier_exit(ci, internal, false);
                    }
                    None => {
                        self.cpus[ci].frames.push(Frame::Bar { internal, stage: 2 });
                        self.park(ci, TimeClass::Barrier);
                        if internal && !role_a {
                            // R-streams waiting at the region-end barrier
                            // arm the divergence watchdog: a stranded
                            // A-stream would otherwise deadlock the team.
                            let now = self.cpus[ci].timeline.now();
                            self.arm_watchdog(ci, now);
                        }
                    }
                }
            }
            2 => {
                // Woken by the release: re-read the flag line (it was
                // invalidated by the releasing store).
                self.barrier_exit(ci, internal, true);
            }
            _ => unreachable!("barrier stage"),
        }
    }

    fn barrier_exit(&mut self, ci: usize, internal: bool, reload_flag: bool) {
        // Global sync: the token is inserted "before exiting the barrier"
        // (paper Section 2.2) — at release detection, ahead of the
        // R-stream's own exit path (flag re-read, pipeline resumption), so
        // the A-stream gets a head start of the R-stream's exit overhead.
        if !internal && !self.is_a(ci) {
            if let Some(sync) = self.slip_on(ci) {
                if sync.global {
                    self.insert_token(ci);
                    if let Some(p) = self.pair_of(ci) {
                        self.pairs[p].bump_r_epoch();
                        self.trace_lead(ci, p);
                    }
                }
            }
        }
        if reload_flag {
            let addr = if internal {
                self.region_barrier.addr
            } else {
                self.construct_barrier.addr
            };
            self.mem(ci, addr, AccessKind::Load, TimeClass::Barrier);
        }
    }

    /// Worksharing loop end: reduction combine, then the implicit barrier
    /// unless `nowait`.
    fn loop_end(&mut self, ci: usize, node: NodeId, stage: u8) {
        let (reduction, nowait) = match self.cp.node(node) {
            FNode::ParFor {
                reduction, nowait, ..
            } => (reduction.clone(), *nowait),
            _ => unreachable!("LoopEnd on non-ParFor"),
        };
        match stage {
            0 => {
                self.cpus[ci].frames.push(Frame::LoopEnd { node, stage: 1 });
                if let Some(red) = reduction {
                    if self.is_a(ci) {
                        // Policy: the A-stream runs reduction bodies as
                        // user code but skips the shared combine.
                        if self.cfg.policy.reduction_combine == AAction::Execute {
                            self.cpus[ci].frames.push(Frame::RedP { red, stage: 0 });
                        }
                    } else {
                        self.cpus[ci].frames.push(Frame::RedP { red, stage: 0 });
                    }
                }
            }
            1 => {
                if !nowait {
                    self.cpus[ci].frames.push(Frame::Bar {
                        internal: false,
                        stage: 0,
                    });
                }
            }
            _ => unreachable!("loop_end stage"),
        }
    }

    /// Reduction combine: serialize through the reduction lock and update
    /// the shared target cell.
    fn reduction_step(&mut self, ci: usize, red: Reduction, stage: u8) {
        match stage {
            0 => {
                // Acquire the reduction lock.
                self.mem(
                    ci,
                    self.reduction_lock.addr,
                    AccessKind::Store,
                    TimeClass::Lock,
                );
                if self.reduction_lock.acquire(CpuId(ci)) {
                    self.cpus[ci].frames.push(Frame::RedP { red, stage: 1 });
                } else {
                    self.cpus[ci].frames.push(Frame::RedP { red, stage: 1 });
                    self.park(ci, TimeClass::Lock);
                }
            }
            1 => {
                // Combine: load target, apply op, store target, release.
                let idx = self.eval(ci, &red.index);
                let addr = self.element_addr(ci, red.target, idx);
                self.mem(ci, addr, AccessKind::Load, TimeClass::MemStall);
                self.busy(ci, 3, TimeClass::Busy);
                self.mem(ci, addr, AccessKind::Store, TimeClass::MemStall);
                self.mem(
                    ci,
                    self.reduction_lock.addr,
                    AccessKind::Store,
                    TimeClass::Lock,
                );
                let next = self.reduction_lock.release(CpuId(ci));
                let t = self.cpus[ci].timeline.now();
                if let Some(w) = next {
                    self.wake(w, t);
                }
            }
            _ => unreachable!("reduction stage"),
        }
    }

    fn critical_step(&mut self, ci: usize, lock: usize, body: NodeId, stage: u8) {
        match stage {
            0 => {
                self.mem(
                    ci,
                    self.critical_locks[lock].addr,
                    AccessKind::Store,
                    TimeClass::Lock,
                );
                let granted = self.critical_locks[lock].acquire(CpuId(ci));
                self.cpus[ci].frames.push(Frame::CritP {
                    lock,
                    body,
                    stage: 1,
                });
                if granted {
                    self.enter(ci, body);
                } else {
                    // On wake the lock is already ours; re-read the lock
                    // line then run the body.
                    self.cpus[ci].frames.pop();
                    self.cpus[ci].frames.push(Frame::CritP {
                        lock,
                        body,
                        stage: 2,
                    });
                    self.park(ci, TimeClass::Lock);
                }
            }
            2 => {
                // Woken as the new holder.
                self.mem(
                    ci,
                    self.critical_locks[lock].addr,
                    AccessKind::Load,
                    TimeClass::Lock,
                );
                self.cpus[ci].frames.push(Frame::CritP {
                    lock,
                    body,
                    stage: 1,
                });
                self.enter(ci, body);
            }
            1 => {
                // Body finished: release.
                self.mem(
                    ci,
                    self.critical_locks[lock].addr,
                    AccessKind::Store,
                    TimeClass::Lock,
                );
                let next = self.critical_locks[lock].release(CpuId(ci));
                let t = self.cpus[ci].timeline.now();
                if let Some(w) = next {
                    self.wake(w, t);
                }
            }
            _ => unreachable!("critical stage"),
        }
    }

    fn single_step(&mut self, ci: usize, node: NodeId, enc: usize, stage: u8) {
        let body = match self.cp.node(node) {
            FNode::Single(b) => *b,
            _ => unreachable!("SingleP on non-Single"),
        };
        if self.is_a(ci) && self.slip_on(ci).is_some() {
            // Skip the body; the implicit end barrier is a construct
            // barrier (token consume).
            self.cpus[ci].frames.push(Frame::Bar {
                internal: false,
                stage: 0,
            });
            return;
        }
        match stage {
            0 => {
                // Claim via an atomic on the single's flag line.
                let line = self.get_single_line(enc);
                self.mem(ci, line, AccessKind::Store, TimeClass::Scheduling);
                let won = self.arena.single(enc).claim();
                self.cpus[ci].frames.push(Frame::SingleP {
                    node,
                    enc,
                    stage: 1,
                });
                if won {
                    self.enter(ci, body);
                }
            }
            1 => {
                // Implicit end barrier.
                self.cpus[ci].frames.push(Frame::Bar {
                    internal: false,
                    stage: 0,
                });
            }
            _ => unreachable!("single stage"),
        }
    }

    fn sections_step(&mut self, ci: usize, node: NodeId, enc: usize, stage: u8, claimed: usize) {
        let secs = match self.cp.node(node) {
            FNode::Sections(v) => v.clone(),
            _ => unreachable!("SectionsP on non-Sections"),
        };
        let role_a = self.is_a(ci) && self.slip_on(ci).is_some();
        if role_a {
            // A-stream mirrors its R-stream's claimed sections through the
            // pair semaphore (dynamic assignment ⇒ SyncWithR).
            if self.cfg.policy.sections != AAction::SyncWithR {
                // Ablation: skip sections entirely.
                self.cpus[ci].frames.push(Frame::Bar {
                    internal: false,
                    stage: 0,
                });
                return;
            }
            match stage {
                0 => {
                    let p = self.pair_of(ci).expect("A without pair");
                    self.busy(ci, self.cfg.machine.pair_register_cycles, TimeClass::Busy);
                    let granted = self.pairs[p].sched_sem.wait(CpuId(ci));
                    self.cpus[ci].frames.push(Frame::SectionsP {
                        node,
                        enc,
                        stage: 1,
                        claimed,
                    });
                    if !granted {
                        self.park(ci, TimeClass::AStreamWait);
                        self.arm_token_wait(ci, p);
                    }
                }
                1 => {
                    let p = self.pair_of(ci).expect("A without pair");
                    let d = self.pairs[p].take_decision();
                    self.trace_decision_consume(ci, p, d);
                    match d {
                        Some(Decision::Section(s)) if s < secs.len() => {
                            let daddr = self.pairs[p].decision_addr;
                            self.mem(ci, daddr, AccessKind::Load, TimeClass::Busy);
                            self.cpus[ci].frames.push(Frame::SectionsP {
                                node,
                                enc,
                                stage: 0,
                                claimed,
                            });
                            self.enter(ci, secs[s]);
                        }
                        Some(Decision::End) => {
                            self.cpus[ci].frames.push(Frame::Bar {
                                internal: false,
                                stage: 0,
                            });
                        }
                        // Empty queue (lost signal) or a decision that
                        // makes no sense here (corruption): the A-stream
                        // can no longer follow its R-stream. Diverge; the
                        // R-stream recovers it at its next barrier check.
                        _ => self.a_diverge(ci, p),
                    }
                }
                _ => unreachable!("A sections stage"),
            }
            return;
        }
        match stage {
            0 => {
                // Grab the next section index.
                let line = self.get_sections_line(enc);
                self.mem(ci, line, AccessKind::Store, TimeClass::Scheduling);
                match self.arena.sections(enc).claim(secs.len()) {
                    Some(s) => {
                        self.publish_decision(ci, Decision::Section(s));
                        self.cpus[ci].frames.push(Frame::SectionsP {
                            node,
                            enc,
                            stage: 0,
                            claimed: claimed + 1,
                        });
                        self.enter(ci, secs[s]);
                    }
                    None => {
                        self.publish_decision(ci, Decision::End);
                        self.cpus[ci].frames.push(Frame::Bar {
                            internal: false,
                            stage: 0,
                        });
                    }
                }
            }
            _ => unreachable!("sections stage"),
        }
    }

    /// R-stream: publish a scheduling decision for the A-stream (store to
    /// the pair decision line + pair-register signal).
    fn publish_decision(&mut self, ci: usize, d: Decision) {
        if self.is_a(ci) || self.slip_on(ci).is_none() {
            return;
        }
        if let Some(p) = self.pair_of(ci) {
            self.publish_pair(ci, p, d);
        }
    }

    /// Publish `d` on pair `p`'s handshake, with the `Publish`-site fault
    /// hooks: `SignalLoss` enqueues the decision but drops the semaphore
    /// signal (the A-stream is never woken for it); `DecisionCorrupt`
    /// delivers a well-formed but wrong decision.
    fn publish_pair(&mut self, ci: usize, p: usize, d: Decision) {
        let daddr = self.pairs[p].decision_addr;
        self.mem(ci, daddr, AccessKind::Store, TimeClass::Busy);
        self.busy(ci, self.cfg.machine.pair_register_cycles, TimeClass::Busy);
        let tid = self.pairs[p].tid;
        let seq = self.pairs[p].publish_seq;
        self.pairs[p].publish_seq = seq.wrapping_add(1);
        let d = match self
            .fault_at(ci, FaultSite::Publish, tid, seq)
            .map(|e| e.kind)
        {
            Some(FaultKind::SignalLoss) => {
                // The decision reaches the queue but the sched_sem signal
                // is lost: an A-stream parked on the semaphore strands
                // until the watchdog or a slack check recovers it.
                if self.tracer.is_on() {
                    let t = self.cpus[ci].timeline.now();
                    self.tracer.record(
                        t,
                        ci as u32,
                        TraceEvent::DecisionPublish {
                            pair: p as u32,
                            seq,
                            kind: d.label(),
                            lost: true,
                        },
                    );
                }
                self.pairs[p].decisions.push_back(d);
                return;
            }
            Some(FaultKind::DecisionCorrupt) => match d {
                Decision::RegionGo => Decision::End,
                _ => Decision::RegionGo,
            },
            _ => d,
        };
        if self.tracer.is_on() {
            let t = self.cpus[ci].timeline.now();
            self.tracer.record(
                t,
                ci as u32,
                TraceEvent::DecisionPublish {
                    pair: p as u32,
                    seq,
                    kind: d.label(),
                    lost: false,
                },
            );
        }
        let woken = self.pairs[p].publish(d);
        let t = self.cpus[ci].timeline.now();
        if let Some(a) = woken {
            self.wake(a, t);
        }
    }

    /// Dynamic/guided loop protocol.
    ///
    /// R/solo stages: 0 = acquire scheduler lock (or park), 2 = woken as
    /// lock holder, 1 = grab chunk under the lock and release, 3 = chunk
    /// body done, grab again.
    /// A-stream stages: 10 = wait on pair semaphore, 11 = consume
    /// decision.
    #[allow(clippy::too_many_arguments)]
    fn dyn_step(
        &mut self,
        ci: usize,
        node: NodeId,
        enc: usize,
        sched: ResolvedSchedule,
        lo: i64,
        hi: i64,
        stage: u8,
        chunk: Chunk,
    ) {
        let body = match self.cp.node(node) {
            FNode::ParFor { body, .. } => *body,
            _ => unreachable!("DynP on non-ParFor"),
        };
        let role_a = self.is_a(ci) && self.slip_on(ci).is_some();
        if role_a {
            match stage {
                0 | 10 => {
                    // Wait for the R-stream's scheduling decision (the
                    // syscall hardware semaphore of Section 3.2.2).
                    let p = self.pair_of(ci).expect("A without pair");
                    self.busy(ci, self.cfg.machine.pair_register_cycles, TimeClass::Busy);
                    let granted = self.pairs[p].sched_sem.wait(CpuId(ci));
                    self.cpus[ci].frames.push(Frame::DynP {
                        node,
                        enc,
                        sched,
                        lo,
                        hi,
                        stage: 11,
                        chunk,
                    });
                    if !granted {
                        self.park(ci, TimeClass::AStreamWait);
                        self.arm_token_wait(ci, p);
                    }
                }
                11 => {
                    let p = self.pair_of(ci).expect("A without pair");
                    let d = self.pairs[p].take_decision();
                    self.trace_decision_consume(ci, p, d);
                    match d {
                        Some(Decision::Chunk(c)) => {
                            let daddr = self.pairs[p].decision_addr;
                            self.mem(ci, daddr, AccessKind::Load, TimeClass::Busy);
                            self.cpus[ci].frames.push(Frame::DynP {
                                node,
                                enc,
                                sched,
                                lo,
                                hi,
                                stage: 10,
                                chunk: c,
                            });
                            let var = self.parfor_var(node);
                            self.cpus[ci].frames.push(Frame::ChunkIter {
                                var,
                                chunks: vec![c],
                                ci: 0,
                                cur: i64::MIN,
                                body,
                            });
                        }
                        Some(Decision::End) => {} // fall through to LoopEnd
                        // Lost signal or corrupted decision: diverge and
                        // wait for the R-stream to recover this pair.
                        _ => self.a_diverge(ci, p),
                    }
                }
                _ => unreachable!("A dyn stage"),
            }
            return;
        }

        let lock_id = enc;
        let tid = self.cpus[ci].tid as usize;
        let affinity = sched.is_affinity();
        match stage {
            0 => {
                // Serialize through the scheduler lock: the shared counter
                // lock for dynamic/guided, the thread's own queue lock for
                // affinity (node-local in the common case).
                let laddr = if affinity {
                    self.affinity_locks[lock_id][tid].addr
                } else {
                    self.sched_locks[lock_id].addr
                };
                self.mem(ci, laddr, AccessKind::Store, TimeClass::Scheduling);
                let granted = if affinity {
                    self.affinity_locks[lock_id][tid].acquire(CpuId(ci))
                } else {
                    self.sched_locks[lock_id].acquire(CpuId(ci))
                };
                self.cpus[ci].frames.push(Frame::DynP {
                    node,
                    enc,
                    sched,
                    lo,
                    hi,
                    stage: if granted { 1 } else { 2 },
                    chunk,
                });
                if !granted {
                    self.park(ci, TimeClass::Scheduling);
                }
            }
            2 => {
                // Woken as lock holder: re-read the lock line.
                let laddr = if affinity {
                    self.affinity_locks[lock_id][tid].addr
                } else {
                    self.sched_locks[lock_id].addr
                };
                self.mem(ci, laddr, AccessKind::Load, TimeClass::Scheduling);
                self.cpus[ci].frames.push(Frame::DynP {
                    node,
                    enc,
                    sched,
                    lo,
                    hi,
                    stage: 1,
                    chunk,
                });
            }
            1 => {
                // Holding the lock: read and update the scheduler state.
                // The lock word and counter share a cache line (one
                // migration per grab brings both), so the counter accesses
                // hit in the L1 after the acquire.
                let caddr = if affinity {
                    self.affinity_locks[lock_id][tid].addr
                } else {
                    self.sched_locks[lock_id].addr
                };
                self.mem(ci, caddr, AccessKind::Load, TimeClass::Scheduling);
                self.busy(ci, self.cfg.dynamic_sched_cycles, TimeClass::Scheduling);
                let next = if let ResolvedSchedule::Affinity(chunk) = sched {
                    // Lazy init of the per-thread queues.
                    let team = self.layout.team_size();
                    let n = omp_ir::wsloop::trip_count(lo, hi, 1);
                    if !self.arena.affinity_loop(enc).is_initialized() {
                        *self.arena.affinity_loop(enc) =
                            omp_rt::schedule::AffinityState::init(n, team);
                    }
                    let grab = self
                        .arena
                        .affinity_loop(enc)
                        .next_chunk(tid as u64, chunk, lo, 1);
                    if let Some(g) = grab {
                        if g.stolen {
                            // Touch the victim's queue line (remote): the
                            // cost of the steal.
                            let vaddr = self.affinity_locks[lock_id][g.victim as usize].addr;
                            self.mem(ci, vaddr, AccessKind::Load, TimeClass::Scheduling);
                            self.mem(ci, vaddr, AccessKind::Store, TimeClass::Scheduling);
                        }
                    }
                    grab.map(|g| g.chunk)
                } else {
                    self.arena
                        .dyn_loop(enc)
                        .next_chunk(sched, lo, hi, 1, self.layout.team_size())
                };
                self.mem(ci, caddr, AccessKind::Store, TimeClass::Scheduling);
                let (woken, t) = if affinity {
                    let w = self.affinity_locks[lock_id][tid].release(CpuId(ci));
                    (w, self.cpus[ci].timeline.now())
                } else {
                    let laddr = self.sched_locks[lock_id].addr;
                    self.mem(ci, laddr, AccessKind::Store, TimeClass::Scheduling);
                    let w = self.sched_locks[lock_id].release(CpuId(ci));
                    (w, self.cpus[ci].timeline.now())
                };
                if let Some(w) = woken {
                    self.wake(w, t);
                }
                match next {
                    Some(c) => {
                        self.publish_decision(ci, Decision::Chunk(c));
                        self.cpus[ci].frames.push(Frame::DynP {
                            node,
                            enc,
                            sched,
                            lo,
                            hi,
                            stage: 0,
                            chunk: c,
                        });
                        let var = self.parfor_var(node);
                        self.cpus[ci].frames.push(Frame::ChunkIter {
                            var,
                            chunks: vec![c],
                            ci: 0,
                            cur: i64::MIN,
                            body,
                        });
                    }
                    None => {
                        self.publish_decision(ci, Decision::End);
                        // Fall through to LoopEnd (reduction + barrier).
                    }
                }
            }
            _ => unreachable!("dyn stage"),
        }
    }

    fn parfor_var(&self, node: NodeId) -> VarId {
        match self.cp.node(node) {
            FNode::ParFor { var, .. } => *var,
            _ => unreachable!("parfor_var on non-ParFor"),
        }
    }

    /// Master's path through a `Parallel` node.
    ///
    /// R-master (stage 0): resolve slipstream, configure region state,
    /// dispatch the job to the pool, publish RegionGo to its A-stream, and
    /// enter the body. A-master: wait for RegionGo (stages 0/1/2), then
    /// enter. The matching region-end barrier is pushed beneath the body.
    fn region_step(&mut self, ci: usize, node: NodeId, stage: u8) {
        let (body, clause) = match self.cp.node(node) {
            FNode::Parallel { body, slipstream } => (*body, *slipstream),
            _ => unreachable!("RegionP on non-Parallel"),
        };
        let role_a = self.is_a(ci);

        if role_a {
            // The A-master may run ahead of its R-master in serial code;
            // it must not enter the region before the R-master configures
            // it. Synchronize through the pair semaphore.
            match stage {
                0 => {
                    let p = self.pair_of(ci).expect("A-master without pair");
                    self.busy(ci, self.cfg.machine.pair_register_cycles, TimeClass::Busy);
                    let granted = self.pairs[p].sched_sem.wait(CpuId(ci));
                    self.cpus[ci].frames.push(Frame::RegionP { node, stage: 1 });
                    if !granted {
                        self.park(ci, TimeClass::AStreamWait);
                        self.arm_token_wait(ci, p);
                    }
                }
                1 => {
                    let p = self.pair_of(ci).expect("A-master without pair");
                    let d = self.pairs[p].take_decision();
                    self.trace_decision_consume(ci, p, d);
                    match d {
                        Some(Decision::RegionGo) => {
                            self.cpus[ci].jobs_taken += 1;
                            self.cpus[ci].reset_encounters();
                            self.cpus[ci].frames.push(Frame::RegionEndP { stage: 0 });
                            if self.region_slip != RegionSlip::Off && !self.pairs[p].demoted() {
                                self.enter(ci, body);
                            }
                        }
                        // Lost or corrupted region-go handshake: the
                        // A-master cannot enter the region. Diverge; the
                        // watchdog reseeds it at the region end.
                        _ => self.a_diverge(ci, p),
                    }
                }
                _ => unreachable!("A-master region stage"),
            }
            return;
        }

        debug_assert_eq!(stage, 0);
        // Every region boundary after the first region advances the
        // pair-health controller and the team breaker on the region that
        // just completed (the last region's boundary runs in `finish`).
        if self.cfg.mode == ExecMode::Slipstream && self.regions_dispatched > 0 {
            let now = self.cpus[ci].timeline.now();
            self.health_region_tick(ci, now);
        }
        self.regions_dispatched += 1;
        let resolved = if self.cfg.mode != ExecMode::Slipstream {
            RegionSlip::Off
        } else if self.breaker.forces_off() {
            // Breaker open: the whole region runs without slipstream.
            RegionSlip::Off
        } else {
            resolve_region(clause, self.global_slip, self.cfg.env.slipstream)
        };

        // R-master configures shared region state exactly once.
        self.region_slip = resolved;
        self.current_region = Some(body);
        self.sched_grabs_total += self.arena.total_grabs();
        self.sched_steals_total += self.arena.total_steals();
        self.arena = ConstructArena::new();
        self.sched_locks.clear();
        self.sched_counter_lines.clear();
        self.affinity_locks.clear();
        self.single_lines.clear();
        self.sections_lines.clear();
        if let RegionSlip::On(sync) = resolved {
            for p in &mut self.pairs {
                // A fresh region restarts token allocation (Fig. 1).
                p.start_region(sync);
            }
        }
        // Dispatch: one store to the job flag; every pool slave wakes and
        // re-reads the flag line.
        self.job_gen += 1;
        self.mem(ci, self.job_flag, AccessKind::Store, TimeClass::Scheduling);
        let t = self.cpus[ci].timeline.now();
        let pool: Vec<CpuId> = (0..self.cpus.len())
            .filter(|i| self.cpus[*i].status == Status::PoolIdle)
            .map(CpuId)
            .collect();
        for w in pool {
            self.wake(w, t);
        }
        // Release the A-master into the region.
        if self.cfg.mode == ExecMode::Slipstream {
            if let Some(p) = self.pair_of(ci) {
                self.publish_pair(ci, p, Decision::RegionGo);
            }
        }

        self.cpus[ci].jobs_taken += 1;
        self.cpus[ci].reset_encounters();
        self.cpus[ci].frames.push(Frame::RegionEndP { stage: 0 });
        self.enter(ci, body);
    }

    /// Region-end internal barrier; slaves then return to the pool.
    fn region_end_step(&mut self, ci: usize, stage: u8) {
        match stage {
            0 => {
                // Recover a diverged A-stream before it deadlocks the
                // internal barrier. The clone must include this region-end
                // step itself, so the recovered A-stream arrives at the
                // barrier like everyone else.
                if !self.is_a(ci) {
                    if let Some(p) = self.pair_of(ci) {
                        if self.pairs[p].diverged {
                            self.cpus[ci].frames.push(Frame::RegionEndP { stage: 0 });
                            self.recover_astream(ci, p);
                            self.cpus[ci].frames.pop();
                        }
                    }
                }
                self.cpus[ci].frames.push(Frame::RegionEndP { stage: 1 });
                self.cpus[ci].frames.push(Frame::Bar {
                    internal: true,
                    stage: 0,
                });
            }
            1 => {
                // Past the barrier. Slaves go back to the pool; masters
                // continue with serial code.
                if self.cpus[ci].tid as usize != MASTER {
                    self.cpus[ci].frames.clear();
                    self.cpus[ci].frames.push(Frame::PoolWait);
                }
            }
            _ => unreachable!("region end stage"),
        }
    }

    /// Slave pool loop: wait for a job generation, then run the region.
    fn pool_step(&mut self, ci: usize) {
        if self.cpus[ci].jobs_taken < self.job_gen {
            // A job is (or became) available.
            self.cpus[ci].jobs_taken += 1;
            self.cpus[ci].reset_encounters();
            // Spin-exit: read the job flag (invalidated by the master's
            // dispatch store).
            self.mem(ci, self.job_flag, AccessKind::Load, TimeClass::JobWait);
            let body = self.current_region.expect("dispatch without a region");
            self.cpus[ci].frames.push(Frame::RegionEndP { stage: 0 });
            let skip_body =
                self.is_a(ci) && (self.region_slip == RegionSlip::Off || self.pair_demoted(ci));
            if !skip_body {
                self.enter(ci, body);
            }
        } else {
            self.cpus[ci].frames.push(Frame::PoolWait);
            self.park_pool(ci);
        }
    }

    /// I/O protocol: never executed by the A-stream; inputs synchronize
    /// the pair through the scheduling semaphore.
    fn io_step(&mut self, ci: usize, input: bool, bytes: u64, stage: u8) {
        let role_a = self.is_a(ci);
        if role_a {
            if !input || self.cfg.mode != ExecMode::Slipstream {
                return; // outputs (and non-slipstream) are simply skipped
            }
            match stage {
                0 => {
                    let p = self.pair_of(ci).expect("A without pair");
                    self.busy(ci, self.cfg.machine.pair_register_cycles, TimeClass::Busy);
                    let granted = self.pairs[p].sched_sem.wait(CpuId(ci));
                    if granted {
                        let d = self.pairs[p].take_decision();
                        self.trace_decision_consume(ci, p, d);
                        match d {
                            Some(Decision::IoDone) => {}
                            _ => self.a_diverge(ci, p),
                        }
                    } else {
                        self.cpus[ci].frames.push(Frame::IoP {
                            input,
                            bytes,
                            stage: 1,
                        });
                        self.park(ci, TimeClass::AStreamWait);
                        self.arm_token_wait(ci, p);
                    }
                }
                1 => {
                    let p = self.pair_of(ci).expect("A without pair");
                    let d = self.pairs[p].take_decision();
                    self.trace_decision_consume(ci, p, d);
                    match d {
                        Some(Decision::IoDone) => {}
                        _ => self.a_diverge(ci, p),
                    }
                }
                _ => unreachable!("A io stage"),
            }
            return;
        }
        // R/solo: charge the I/O latency, then release the A-stream for
        // inputs.
        if input {
            self.cpus[ci].user.io_in += 1;
        } else {
            self.cpus[ci].user.io_out += 1;
        }
        let cost = self.cfg.io_fixed_cycles + (bytes / 8) * self.cfg.io_cycles_per_8_bytes;
        self.busy(ci, cost, TimeClass::Busy);
        if input && self.cfg.mode == ExecMode::Slipstream {
            if let Some(p) = self.pair_of(ci) {
                self.publish_pair(ci, p, Decision::IoDone);
            }
        }
    }

    // -------------------------------------------------------- main loop --

    /// One conservative window on the parallel path: find the domains
    /// whose fronts lie within the lookahead horizon of the global
    /// frontier and record the admission diagnostics. A sample of the
    /// multi-domain windows is handed to the scout worker pool, which
    /// classifies each admitted front's next work (CPU-private compute,
    /// domain-local access, or a directory/network boundary crossing)
    /// with read-only probes. The window bounds what *may* run
    /// concurrently; commits stay in global event order.
    fn form_window(&mut self) {
        /// Every how-many multi-domain windows the scout pool runs (the
        /// probes are read-only, so sampling only trades diagnostic
        /// resolution against thread-dispatch overhead).
        const SCOUT_SAMPLE: u64 = 64;
        let Q::Domains(q) = &self.q else { return };
        if q.is_empty() {
            return;
        }
        // Hot path: admission is a count; the domain list is only
        // materialized for the sampled windows below.
        let admitted = q.count_within(self.lookahead);
        self.pdes.windows += 1;
        self.pdes.peak_window_domains = self.pdes.peak_window_domains.max(admitted);
        if admitted < 2 {
            return;
        }
        self.pdes.multi_domain_windows += 1;
        if self.pdes.multi_domain_windows % SCOUT_SAMPLE != 1 {
            return;
        }
        let fronts: Vec<usize> = q
            .domains_within(self.lookahead)
            .iter()
            .filter_map(|&d| q.domain_front(d).map(|(_, c)| c.0))
            .collect();
        let tally = self.scout_window(&fronts);
        self.pdes.scouted_windows += 1;
        self.pdes.scout_pure += tally[ScoutClass::Pure as usize];
        self.pdes.scout_local += tally[ScoutClass::Local as usize];
        self.pdes.scout_boundary += tally[ScoutClass::Boundary as usize];
        self.pdes.scout_other += tally[ScoutClass::Other as usize];
    }

    /// Classify the admitted fronts on the scout worker pool: the
    /// read-only probes fan out across up to `workers` threads sharing
    /// the engine state immutably. Per-class tallies are summed, so the
    /// result is independent of thread count and OS scheduling.
    fn scout_window(&self, fronts: &[usize]) -> [u64; 4] {
        let cp = self.cp;
        let ms = &self.ms;
        let map = &self.map;
        let cpus = &self.cpus;
        let nthreads = self.layout.team_size() as i64;
        // A classification probe is a few hundred nanoseconds; a scoped
        // thread spawn is tens of microseconds. Fan out only when each
        // helper gets enough fronts to amortize its spawn — small
        // machines (few domains) always classify inline.
        const SCOUT_THREAD_MIN: usize = 8;
        let workers = if fronts.len() >= SCOUT_THREAD_MIN {
            self.cfg.workers.min(fronts.len()).max(1)
        } else {
            1
        };
        let chunk = fronts.len().div_ceil(workers);
        let mut tally = [0u64; 4];
        if workers == 1 {
            for &ci in fronts {
                tally[scout_classify(cp, ms, map, cpus, nthreads, ci) as usize] += 1;
            }
            return tally;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = fronts
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut t = [0u64; 4];
                        for &ci in part {
                            t[scout_classify(cp, ms, map, cpus, nthreads, ci) as usize] += 1;
                        }
                        t
                    })
                })
                .collect();
            for h in handles {
                let t = h.join().expect("scout thread panicked");
                for (acc, v) in tally.iter_mut().zip(t) {
                    *acc += v;
                }
            }
        });
        tally
    }

    /// The event loop: commit scheduler events in global `(time, seq,
    /// cpu)` order until the queue drains, the master finishes, or —
    /// when `limit` is set — the next event's time reaches `limit`.
    ///
    /// The limit check runs *before* window formation and the pop, so
    /// stopping at a boundary leaves every piece of engine state exactly
    /// as an uninterrupted run has it when its frontier first reaches
    /// that time: a `pump(Some(t))` followed by `pump(None)` is
    /// state-for-state identical to a single `pump(None)`.
    fn pump(&mut self, limit: Option<Cycle>) -> Result<(), String> {
        let parallel = matches!(self.q, Q::Domains(_));
        loop {
            if let Some(lim) = limit {
                match self.q.peek_time() {
                    Some(t) if t < lim => {}
                    _ => break,
                }
            }
            // On the parallel path, form the conservative window before
            // committing the frontier event: record which domains could
            // step concurrently and scout a sample of them. Admission
            // never reorders execution — the pop below still commits
            // events in global `(time, seq, cpu)` order.
            if parallel {
                self.form_window();
            }
            let Some((t, cpu)) = self.q.pop() else { break };
            if self.master_done {
                break;
            }
            self.events += 1;
            if self.events > self.cfg.max_events {
                return Err("event budget exhausted (runaway simulation)".into());
            }
            let c = &self.cpus[cpu.0];
            if c.status == Status::Parked && c.watchdog_deadline == Some(t) {
                // Watchdog deadline for an R-stream parked at the
                // region-end barrier.
                self.watchdog_fire(cpu.0, t);
                continue;
            }
            if c.status == Status::Parked && c.token_wait_deadline == Some(t) {
                // Token-wait deadline for an A-stream parked on the pair
                // semaphore path.
                self.token_wait_fire(cpu.0, t);
                continue;
            }
            if c.status != Status::Ready || c.next_wake != t {
                continue; // stale event
            }
            self.run_cpu(cpu.0)?;
        }
        Ok(())
    }

    /// Run to completion. Returns the aggregated results.
    pub fn run(mut self) -> Result<RunResult, String> {
        self.pump(None)?;
        self.finish_run()
    }

    /// Advance the simulation until the next pending event would run at
    /// or after `limit` cycles (or the program finishes first). Returns
    /// true once the master has finished. Pair with
    /// [`Engine::finish_run`] to collect results, or
    /// [`Engine::snapshot`] to checkpoint at the boundary.
    pub fn run_until(&mut self, limit: Cycle) -> Result<bool, String> {
        self.pump(Some(limit))?;
        Ok(self.master_done)
    }

    /// Collect the run's results after the event loop has completed
    /// (via [`Engine::run_until`] returning true, or a full
    /// [`Engine::pump`]). Errors if the program has not finished —
    /// either the caller stopped early or the queue drained in deadlock.
    pub fn finish_run(self) -> Result<RunResult, String> {
        if !self.master_done {
            // Queue drained without the master finishing: deadlock.
            let stuck: Vec<String> = self
                .cpus
                .iter()
                .enumerate()
                .filter(|(_, c)| !matches!(c.status, Status::Done))
                .map(|(i, c)| format!("cpu{i}:{:?}@{}", c.status, c.timeline.now()))
                .collect();
            return Err(format!("deadlock: master never finished; stuck: {stuck:?}"));
        }
        Ok(self.finish())
    }

    fn finish(mut self) -> RunResult {
        let master_ci = self.layout.master_cpu().0;
        let end = self.cpus[master_ci].timeline.now();
        // Close out the last region's health boundary so residency covers
        // every completed region (runs before the tracer drains below).
        if self.cfg.mode == ExecMode::Slipstream && self.regions_dispatched > 0 {
            self.health_region_tick(master_ci, end);
        }
        // Attribute the tail of every stream's timeline up to program end.
        for c in self.cpus.iter_mut() {
            if c.assign == CpuAssignment::Idle {
                continue;
            }
            let class = match c.status {
                Status::Parked | Status::PoolIdle => c.park_class,
                _ => TimeClass::JobWait,
            };
            c.timeline.advance_to(end, class);
        }
        self.ms.finish();

        // Assemble the trace after the memory system retires its live fill
        // records (end-of-run classifications land in the classifier's
        // tracer during `ms.finish()`).
        let trace = if self.cfg.trace.is_on() {
            let mut data = TraceData {
                cycles: end,
                cpu_names: self
                    .cpus
                    .iter()
                    .enumerate()
                    .map(|(i, c)| format!("cpu{i} ({:?})", c.role))
                    .collect(),
                cmp_count: self.cfg.machine.num_cmps,
                spans: Vec::with_capacity(self.cpus.len()),
                events: Vec::new(),
                dropped: 0,
            };
            for c in self.cpus.iter_mut() {
                match c.timeline.take_spans() {
                    Some((spans, dropped)) => {
                        data.spans.push(spans);
                        data.dropped += dropped;
                    }
                    None => data.spans.push(Vec::new()),
                }
            }
            let mut batches = self.ms.take_trace();
            let engine_tracer =
                std::mem::replace(&mut self.tracer, Tracer::disabled(TrackDomain::Cpu));
            batches.push(engine_tracer.drain());
            data.merge_events(batches);
            Some(data)
        } else {
            None
        };

        let mut r_breakdown = dsm_sim::TimeBreakdown::new();
        let mut a_breakdown = dsm_sim::TimeBreakdown::new();
        let mut user_r = OpCounts::default();
        let mut user_a = OpCounts::default();
        let mut stores_converted = 0;
        let mut stores_skipped = 0;
        for c in &self.cpus {
            match c.role {
                StreamRole::A if c.assign != CpuAssignment::Idle => {
                    a_breakdown.merge(&c.timeline.stats.time);
                    merge_ops(&mut user_a, &c.user);
                    stores_converted += c.stores_converted;
                    stores_skipped += c.stores_skipped;
                }
                _ if c.assign != CpuAssignment::Idle => {
                    r_breakdown.merge(&c.timeline.stats.time);
                    merge_ops(&mut user_r, &c.user);
                }
                _ => {}
            }
        }
        let recoveries = self.pairs.iter().map(|p| p.recoveries).sum();
        let watchdog_recoveries = self.pairs.iter().map(|p| p.watchdog_recoveries).sum();
        let timeout_recoveries = self.pairs.iter().map(|p| p.timeout_recoveries).sum();
        let repromotions = self.pairs.iter().map(|p| p.health.repromotions).sum();
        let mut health_residency = [0u64; 4];
        for p in &self.pairs {
            for (acc, r) in health_residency.iter_mut().zip(p.health.residency.iter()) {
                *acc += r;
            }
        }
        let pair_ledgers: Vec<PairLedger> = self
            .pairs
            .iter()
            .map(|p| PairLedger {
                tid: p.tid,
                mode: p.mode,
                health: p.health.state,
                faults_injected: p.faults_injected,
                recoveries: p.recoveries,
                watchdog_recoveries: p.watchdog_recoveries,
                timeout_recoveries: p.timeout_recoveries,
                repromotions: p.health.repromotions,
                demoted_at: p.demoted_at,
            })
            .collect();
        let demotions = pair_ledgers.iter().filter(|l| l.demoted()).count() as u64;
        let machine = self.ms.machine_counters();
        RunResult {
            exec_cycles: end,
            roles: self.cpus.iter().map(|c| c.role).collect(),
            cpu_stats: self.cpus.iter().map(|c| c.timeline.stats.clone()).collect(),
            fill_counts: self.ms.classifier.counts,
            r_breakdown,
            a_breakdown,
            user_r,
            user_a,
            sched_grabs: self.sched_grabs_total + self.arena.total_grabs(),
            sched_steals: self.sched_steals_total + self.arena.total_steals(),
            recoveries,
            watchdog_recoveries,
            timeout_recoveries,
            demotions,
            repromotions,
            breaker_trips: self.breaker.trips,
            breaker_reclosures: self.breaker.reclosures,
            health_residency,
            pair_ledgers,
            stores_converted,
            stores_skipped,
            machine,
            trace,
            pdes: self.pdes,
            memo: self.memo.diag,
        }
    }
}

// ---------------------------------------------------------------------------
// Memoized phase replay.
//
// `omp-analyze` licenses serial loops whose barrier phases are all
// `Pure`/`ReplaySafe`: each iteration performs the same communication
// pattern, so iteration dynamics are a function of the machine state at the
// iteration's first barrier boundary alone. The engine is deterministic and
// time-shift covariant (no absolute-time behavior), so if two consecutive
// iterations start from the identical normalized state, *every* remaining
// iteration repeats the same per-iteration deltas `(δ, Δ)` — counters and
// time respectively — and the last `k` iterations collapse to `+k·δ`,
// `+k·Δ`. The final iteration still executes live so its tail (loop exit,
// region teardown) is real.
//
// Soundness is by induction on digest equality: the digest covers all
// mutable engine and memory-system state that can influence future events
// (frames, variables, clock offsets, caches, directories, network, MSHRs,
// classifier), normalized by subtracting the boundary release time from
// every embedded clock and zeroing the licensed induction variable. Two
// documented diagnostics are exempt from the bit-identity contract:
// `RunResult::events` via the engine's processed-event count and
// `Lock::acquisitions` (skipped iterations process no events and take no
// locks); neither feeds stats fingerprints.
impl<'p> Engine<'p> {
    /// Inspect a non-internal barrier release: sample at iteration starts
    /// of licensed loops and bulk-jump once a fixed point is reached.
    /// `ci` is the releasing processor, `waiters` the processors it woke.
    fn memo_boundary(&mut self, ci: usize, waiters: &[CpuId]) {
        if self.memo.disabled || self.memo.plan.is_empty() {
            return;
        }
        self.memo.diag.boundaries += 1;
        let Some((body, var, cur, end, step)) =
            licensed_for(&self.cpus[ci].frames, &self.memo.plan)
        else {
            self.memo.active = None;
            return;
        };
        // Only the first boundary of each iteration samples: the serial
        // loop frame's `cur` advances exactly once per iteration.
        if let Some(a) = &self.memo.active {
            if a.body == body && a.last_cur == cur {
                return;
            }
        }
        // Runtime guard: the live frame must match its certificate. A
        // resolved-but-stale plan (recompiled bounds, different program)
        // is caught here and memoization falls back to full execution.
        let lp = self.memo.plan.lookup(body).expect("licensed frame").clone();
        let guard_ok = var == lp.var
            && end == lp.end
            && step == lp.step
            && cur >= lp.begin
            && (cur - lp.begin) % step as i64 == 0
            && omp_ir::wsloop::trip_count(lp.begin, end, step) == lp.trip_count
            && omp_analyze::guard_checksum(var.0, lp.begin, end, step) == lp.guard_checksum;
        if !guard_ok {
            self.memo.diag.guard_fallbacks += 1;
            self.memo.disabled = true;
            self.memo.diag.disabled = true;
            self.memo.active = None;
            return;
        }
        // Quiescence: the digest describes the future only if nothing is
        // in flight — no pending events, every other live processor parked
        // at this barrier (holding the same licensed frame at the same
        // iteration), pool-idle, or done, and no armed deadlines. A
        // non-quiescent boundary is skipped, not a strike: the loop may
        // still converge at the next iteration.
        let vars_ok = |c: &CpuState| c.vars[var.0 as usize] == cur - step as i64;
        let quiescent = self.q.peek_time().is_none()
            && self.cpus[ci].watchdog_deadline.is_none()
            && self.cpus[ci].token_wait_deadline.is_none()
            && vars_ok(&self.cpus[ci])
            && self.cpus.iter().enumerate().all(|(i, c)| {
                i == ci
                    || c.assign == CpuAssignment::Idle
                    || (matches!(c.status, Status::Parked | Status::PoolIdle | Status::Done)
                        && c.watchdog_deadline.is_none()
                        && c.token_wait_deadline.is_none())
            })
            && waiters.iter().all(|w| {
                let c = &self.cpus[w.0];
                vars_ok(c)
                    && matches!(
                        licensed_for(&c.frames, &self.memo.plan),
                        Some((b, v, wc, we, ws))
                            if b == body && v == var && wc == cur && we == end && ws == step
                    )
            });
        if !quiescent {
            self.memo.active = Some(MemoActive {
                body,
                last_cur: cur,
                samples: Vec::new(),
            });
            return;
        }
        let at = self.cpus[ci].timeline.now();
        let digest = self.memo_digest(at, body, var);
        let mut counters = Vec::new();
        self.memo_take_counters(&mut counters);
        self.memo.diag.samples += 1;
        let mut active = match self.memo.active.take() {
            Some(a) if a.body == body => a,
            _ => MemoActive {
                body,
                last_cur: cur,
                samples: Vec::new(),
            },
        };
        active.last_cur = cur;
        // Seek the steady-state period: the most recent retained sample
        // with an identical normalized digest. Determinism plus time-shift
        // covariance make digest equality at distance p a proof that the
        // machine repeats with period p iterations from here on.
        let hit = active
            .samples
            .iter()
            .rev()
            .find(|s| s.digest == digest)
            .map(|s| (s.cur, s.at, s.counters.clone()));
        let Some((prev_cur, prev_at, prev_counters)) = hit else {
            if active.samples.len() >= MEMO_HISTORY {
                active.samples.remove(0);
                self.memo.strikes += 1;
                if self.memo.strikes >= MEMO_MAX_STRIKES {
                    self.memo.disabled = true;
                    self.memo.diag.disabled = true;
                    self.memo.active = None;
                    return;
                }
            }
            active.samples.push(MemoSample {
                cur,
                at,
                digest,
                counters,
            });
            self.memo.active = Some(active);
            return;
        };
        self.memo.strikes = 0;
        // The current iteration has value `cur - step` (the frame
        // pre-advances); `remaining` counts it plus every future one. Jump
        // `j` whole periods of `p` iterations, keeping at least the
        // current iteration's tail (and the loop exit) live.
        let p = ((cur - prev_cur) / step as i64) as u64;
        let remaining = omp_ir::wsloop::trip_count(cur - step as i64, end, step);
        let j = remaining.saturating_sub(1) / p;
        if j == 0 {
            if active.samples.len() >= MEMO_HISTORY {
                active.samples.remove(0);
            }
            active.samples.push(MemoSample {
                cur,
                at,
                digest,
                counters,
            });
            self.memo.active = Some(active);
            return;
        }
        let period_t = at - prev_at;
        let jump = j * period_t;
        let delta: Vec<u64> = counters
            .iter()
            .zip(prev_counters.iter())
            .map(|(now, then)| now - then)
            .collect();
        // j periods of counters, and j periods of time on every live
        // clock — waiters' clocks shift too, so their wake-time park
        // attribution matches the unjumped run exactly.
        self.memo_apply_counters(&delta, j);
        for c in &mut self.cpus {
            if c.assign != CpuAssignment::Idle && c.status != Status::Done {
                c.timeline.memo_shift(jump);
            }
        }
        self.ms.memo_shift(at, jump);
        // Land the whole team at the same phase `j` periods later: advance
        // the licensed frame and induction variable by j·p steps.
        let hop = (j * p) as i64 * step as i64;
        for id in waiters.iter().map(|w| w.0).chain([ci]) {
            let c = &mut self.cpus[id];
            for f in c.frames.iter_mut() {
                if let Frame::For {
                    body: b, cur: fc, ..
                } = f
                {
                    if *b == body {
                        *fc += hop;
                    }
                }
            }
            c.vars[var.0 as usize] += hop;
        }
        self.memo.diag.engagements += 1;
        self.memo.diag.jumped_iterations += j * p;
        // The tail (at most p iterations plus the loop exit) executes
        // live; sampling restarts from scratch if the loop somehow
        // re-converges before exiting.
        self.memo.active = Some(MemoActive {
            body,
            last_cur: cur + hop,
            samples: Vec::new(),
        });
    }

    /// Time-shift-normalized digest of the complete machine state at a
    /// quiescent boundary released at `at`. Embedded clocks are encoded as
    /// offsets from `at`; the licensed loop's `cur` and induction variable
    /// are zeroed (they are the loop clock). `Done` processors contribute
    /// their status only — `finish()` advances every clock to the common
    /// end, so their frozen timelines carry no future-relevant state.
    fn memo_digest(&self, at: Cycle, licensed_body: NodeId, var: VarId) -> Vec<u64> {
        debug_assert!(self.pairs.is_empty(), "memo never arms in slipstream mode");
        let mut out: Vec<u64> = Vec::with_capacity(512);
        // Global control state.
        out.push(self.current_region.map_or(0, |n| n.0 as u64 + 1));
        out.push(self.job_gen);
        out.push(u64::from(self.master_done));
        out.push(self.regions_dispatched);
        // Homed-line allocator and per-encounter runtime-line pools: growth
        // tripwires. A construct inside the loop that allocates fresh lines
        // each encounter (single, sections, dynamic loop) keeps these
        // moving and correctly blocks convergence.
        out.extend(self.alloc_next.iter().copied());
        out.push(self.single_lines.len() as u64);
        out.push(self.sections_lines.len() as u64);
        out.push(self.sched_locks.len() as u64);
        out.push(self.sched_counter_lines.len() as u64);
        out.push(self.affinity_locks.len() as u64);
        // Barrier occupancy after the release (generation deliberately
        // excluded: it advances once per boundary and is compared only for
        // watchdog staleness, which quiescence already rules out).
        out.push(self.construct_barrier.arrived() as u64);
        out.push(self.construct_barrier.waiting() as u64);
        out.push(self.region_barrier.arrived() as u64);
        out.push(self.region_barrier.waiting() as u64);
        // Locks: holder + queue depth (acquisition totals are diagnostics,
        // exempt from bit-identity). At a quiescent boundary every lock is
        // free, but encode them anyway — cheap and future-proof.
        for l in self
            .critical_locks
            .iter()
            .chain([&self.reduction_lock])
            .chain(&self.sched_locks)
            .chain(self.affinity_locks.iter().flatten())
        {
            out.push(l.holder().map_or(0, |c| c.0 as u64 + 1));
            out.push(l.queue_len() as u64);
        }
        // Per-processor state. `next_wake` is dead while parked (always
        // overwritten by the wake) and excluded.
        for (i, c) in self.cpus.iter().enumerate() {
            if c.assign == CpuAssignment::Idle {
                continue;
            }
            out.push(i as u64);
            out.push(match c.status {
                Status::Ready => 0,
                Status::Parked => 1,
                Status::PoolIdle => 2,
                Status::Done => 3,
            });
            if matches!(c.status, Status::Done) {
                continue;
            }
            out.push(at - c.timeline.now());
            out.push(c.park_class.index() as u64);
            out.push(c.pending_class.map_or(0, |t| t.index() as u64 + 1));
            out.push(c.singles_seen as u64);
            out.push(c.sections_seen as u64);
            out.push(c.dynloops_seen as u64);
            out.push(c.jobs_taken);
            out.push(c.vars.len() as u64);
            for (vi, v) in c.vars.iter().enumerate() {
                out.push(if vi == var.0 as usize { 0 } else { *v as u64 });
            }
            out.push(c.frames.len() as u64);
            for f in &c.frames {
                memo_frame_words(f, licensed_body, &mut out);
            }
        }
        // The entire memory system: caches, directories, network, memory,
        // live MSHRs (as time offsets), classifier.
        self.ms.memo_digest(at, &mut out);
        out
    }

    /// Snapshot every monotone counter the bit-identity contract covers.
    /// Order must match [`Engine::memo_apply_counters`] exactly. Dynamic-
    /// loop arena totals are omitted: a dynamic loop inside the licensed
    /// body bumps `dynloops_seen`, which blocks convergence, so their δ is
    /// provably zero at any engagement.
    fn memo_take_counters(&self, out: &mut Vec<u64>) {
        for c in &self.cpus {
            if c.assign == CpuAssignment::Idle {
                continue;
            }
            c.timeline.stats.memo_counters(out);
            out.extend([
                c.user.loads,
                c.user.stores,
                c.user.atomics,
                c.user.compute_cycles,
                c.user.io_in,
                c.user.io_out,
                c.stores_converted,
                c.stores_skipped,
                c.interrupts,
            ]);
        }
        out.extend([self.sched_grabs_total, self.sched_steals_total]);
        self.ms.memo_counters(out);
    }

    /// Apply `k` copies of the per-iteration counter delta, mirroring
    /// [`Engine::memo_take_counters`] slot for slot.
    fn memo_apply_counters(&mut self, delta: &[u64], k: u64) {
        let mut idx = 0usize;
        for c in &mut self.cpus {
            if c.assign == CpuAssignment::Idle {
                continue;
            }
            c.timeline.stats.memo_apply(delta, &mut idx, k);
            for field in [
                &mut c.user.loads,
                &mut c.user.stores,
                &mut c.user.atomics,
                &mut c.user.compute_cycles,
                &mut c.user.io_in,
                &mut c.user.io_out,
                &mut c.stores_converted,
                &mut c.stores_skipped,
                &mut c.interrupts,
            ] {
                *field += delta[idx] * k;
                idx += 1;
            }
        }
        for field in [&mut self.sched_grabs_total, &mut self.sched_steals_total] {
            *field += delta[idx] * k;
            idx += 1;
        }
        self.ms.memo_apply(delta, &mut idx, k);
        debug_assert_eq!(idx, delta.len(), "counter vectors out of sync");
    }
}

// ---------------------------------------------------------------------------
// Engine checkpoint/restore.
//
// A snapshot captures the complete mutable simulation state mid-run so a
// sweep sharing a warmup prefix can fork from it instead of re-simulating.
// Everything config-derived (compiled program, machine layout, address
// map, latencies) is rebuilt by `Engine::new` on restore and validated
// against an identity hash stored in the snapshot; worker count,
// lookahead, and cycle/event budgets are deliberately excluded from that
// hash because the scheduler state is exported queue-neutrally and
// results are bit-identical across those knobs.

/// Version of the engine snapshot payload format. Bumped on any change
/// to the serialized layout; [`Engine::restore`] rejects other versions.
pub const SNAPSHOT_VERSION: u32 = 1;

fn snap_expr(w: &mut snap::Writer, e: &Expr) {
    match e {
        Expr::Const(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Expr::Var(v) => {
            w.u8(1);
            w.u32(v.0);
        }
        Expr::ThreadId => w.u8(2),
        Expr::NumThreads => w.u8(3),
        Expr::Bin(op, a, b) => {
            w.u8(4);
            w.u8(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
                BinOp::Mod => 4,
                BinOp::Min => 5,
                BinOp::Max => 6,
            });
            snap_expr(w, a);
            snap_expr(w, b);
        }
        Expr::Table(t, idx) => {
            w.u8(5);
            w.u32(t.0);
            snap_expr(w, idx);
        }
    }
}

fn restore_expr(r: &mut snap::Reader) -> Result<Expr, snap::SnapError> {
    Ok(match r.u8()? {
        0 => Expr::Const(r.i64()?),
        1 => Expr::Var(VarId(r.u32()?)),
        2 => Expr::ThreadId,
        3 => Expr::NumThreads,
        4 => {
            let op = match r.u8()? {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                4 => BinOp::Mod,
                5 => BinOp::Min,
                6 => BinOp::Max,
                _ => return Err(snap::SnapError::Corrupt { what: "BinOp" }),
            };
            let a = restore_expr(r)?;
            let b = restore_expr(r)?;
            Expr::Bin(op, Box::new(a), Box::new(b))
        }
        5 => {
            let t = TableId(r.u32()?);
            Expr::Table(t, Box::new(restore_expr(r)?))
        }
        _ => return Err(snap::SnapError::Corrupt { what: "Expr" }),
    })
}

fn snap_reduction(w: &mut snap::Writer, red: &Reduction) {
    w.u8(match red.op {
        ReductionOp::Sum => 0,
        ReductionOp::Max => 1,
        ReductionOp::Min => 2,
    });
    w.u32(red.target.0);
    snap_expr(w, &red.index);
}

fn restore_reduction(r: &mut snap::Reader) -> Result<Reduction, snap::SnapError> {
    let op = match r.u8()? {
        0 => ReductionOp::Sum,
        1 => ReductionOp::Max,
        2 => ReductionOp::Min,
        _ => {
            return Err(snap::SnapError::Corrupt {
                what: "ReductionOp",
            })
        }
    };
    Ok(Reduction {
        op,
        target: ArrayId(r.u32()?),
        index: restore_expr(r)?,
    })
}

fn snap_sched(w: &mut snap::Writer, s: ResolvedSchedule) {
    match s {
        ResolvedSchedule::StaticBlock => w.u8(0),
        ResolvedSchedule::StaticChunked(c) => {
            w.u8(1);
            w.u64(c);
        }
        ResolvedSchedule::Dynamic(c) => {
            w.u8(2);
            w.u64(c);
        }
        ResolvedSchedule::Guided(c) => {
            w.u8(3);
            w.u64(c);
        }
        ResolvedSchedule::Affinity(c) => {
            w.u8(4);
            w.u64(c);
        }
    }
}

fn restore_sched(r: &mut snap::Reader) -> Result<ResolvedSchedule, snap::SnapError> {
    Ok(match r.u8()? {
        0 => ResolvedSchedule::StaticBlock,
        1 => ResolvedSchedule::StaticChunked(r.u64()?),
        2 => ResolvedSchedule::Dynamic(r.u64()?),
        3 => ResolvedSchedule::Guided(r.u64()?),
        4 => ResolvedSchedule::Affinity(r.u64()?),
        _ => {
            return Err(snap::SnapError::Corrupt {
                what: "ResolvedSchedule",
            })
        }
    })
}

fn snap_chunk(w: &mut snap::Writer, c: &Chunk) {
    w.i64(c.lo);
    w.i64(c.hi);
}

fn restore_chunk(r: &mut snap::Reader) -> Result<Chunk, snap::SnapError> {
    Ok(Chunk {
        lo: r.i64()?,
        hi: r.i64()?,
    })
}

fn snap_time_class(w: &mut snap::Writer, tc: TimeClass) {
    w.u8(tc.index() as u8);
}

fn restore_time_class(r: &mut snap::Reader) -> Result<TimeClass, snap::SnapError> {
    dsm_sim::TIME_CLASSES
        .get(r.u8()? as usize)
        .copied()
        .ok_or(snap::SnapError::Corrupt { what: "TimeClass" })
}

impl Frame {
    fn snapshot(&self, w: &mut snap::Writer) {
        match self {
            Frame::Seq { node, idx } => {
                w.u8(0);
                w.u32(node.0);
                w.usize(*idx);
            }
            Frame::For {
                var,
                cur,
                end,
                step,
                body,
            } => {
                w.u8(1);
                w.u32(var.0);
                w.i64(*cur);
                w.i64(*end);
                w.u64(*step);
                w.u32(body.0);
            }
            Frame::ChunkIter {
                var,
                chunks,
                ci,
                cur,
                body,
            } => {
                w.u8(2);
                w.u32(var.0);
                w.seq(chunks, snap_chunk);
                w.usize(*ci);
                w.i64(*cur);
                w.u32(body.0);
            }
            Frame::LoopEnd { node, stage } => {
                w.u8(3);
                w.u32(node.0);
                w.u8(*stage);
            }
            Frame::Bar { internal, stage } => {
                w.u8(4);
                w.bool(*internal);
                w.u8(*stage);
            }
            Frame::SingleP { node, enc, stage } => {
                w.u8(5);
                w.u32(node.0);
                w.usize(*enc);
                w.u8(*stage);
            }
            Frame::SectionsP {
                node,
                enc,
                stage,
                claimed,
            } => {
                w.u8(6);
                w.u32(node.0);
                w.usize(*enc);
                w.u8(*stage);
                w.usize(*claimed);
            }
            Frame::DynP {
                node,
                enc,
                sched,
                lo,
                hi,
                stage,
                chunk,
            } => {
                w.u8(7);
                w.u32(node.0);
                w.usize(*enc);
                snap_sched(w, *sched);
                w.i64(*lo);
                w.i64(*hi);
                w.u8(*stage);
                snap_chunk(w, chunk);
            }
            Frame::CritP { lock, body, stage } => {
                w.u8(8);
                w.usize(*lock);
                w.u32(body.0);
                w.u8(*stage);
            }
            Frame::RedP { red, stage } => {
                w.u8(9);
                snap_reduction(w, red);
                w.u8(*stage);
            }
            Frame::RegionP { node, stage } => {
                w.u8(10);
                w.u32(node.0);
                w.u8(*stage);
            }
            Frame::RegionEndP { stage } => {
                w.u8(11);
                w.u8(*stage);
            }
            Frame::PoolWait => w.u8(12),
            Frame::IoP {
                input,
                bytes,
                stage,
            } => {
                w.u8(13);
                w.bool(*input);
                w.u64(*bytes);
                w.u8(*stage);
            }
        }
    }

    fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        Ok(match r.u8()? {
            0 => Frame::Seq {
                node: NodeId(r.u32()?),
                idx: r.usize()?,
            },
            1 => Frame::For {
                var: VarId(r.u32()?),
                cur: r.i64()?,
                end: r.i64()?,
                step: r.u64()?,
                body: NodeId(r.u32()?),
            },
            2 => Frame::ChunkIter {
                var: VarId(r.u32()?),
                chunks: r.seq(restore_chunk)?,
                ci: r.usize()?,
                cur: r.i64()?,
                body: NodeId(r.u32()?),
            },
            3 => Frame::LoopEnd {
                node: NodeId(r.u32()?),
                stage: r.u8()?,
            },
            4 => Frame::Bar {
                internal: r.bool()?,
                stage: r.u8()?,
            },
            5 => Frame::SingleP {
                node: NodeId(r.u32()?),
                enc: r.usize()?,
                stage: r.u8()?,
            },
            6 => Frame::SectionsP {
                node: NodeId(r.u32()?),
                enc: r.usize()?,
                stage: r.u8()?,
                claimed: r.usize()?,
            },
            7 => Frame::DynP {
                node: NodeId(r.u32()?),
                enc: r.usize()?,
                sched: restore_sched(r)?,
                lo: r.i64()?,
                hi: r.i64()?,
                stage: r.u8()?,
                chunk: restore_chunk(r)?,
            },
            8 => Frame::CritP {
                lock: r.usize()?,
                body: NodeId(r.u32()?),
                stage: r.u8()?,
            },
            9 => Frame::RedP {
                red: restore_reduction(r)?,
                stage: r.u8()?,
            },
            10 => Frame::RegionP {
                node: NodeId(r.u32()?),
                stage: r.u8()?,
            },
            11 => Frame::RegionEndP { stage: r.u8()? },
            12 => Frame::PoolWait,
            13 => Frame::IoP {
                input: r.bool()?,
                bytes: r.u64()?,
                stage: r.u8()?,
            },
            _ => return Err(snap::SnapError::Corrupt { what: "Frame" }),
        })
    }
}

impl CpuState {
    /// Serialize the mutable per-processor state. Identity fields
    /// (assignment, role, tid) are layout-derived and kept from the
    /// freshly built engine on restore.
    fn snapshot(&self, w: &mut snap::Writer) {
        self.timeline.snapshot(w);
        w.seq(&self.frames, |w, f| f.snapshot(w));
        w.seq(&self.vars, |w, v| w.i64(*v));
        w.u8(match self.status {
            Status::Ready => 0,
            Status::Parked => 1,
            Status::PoolIdle => 2,
            Status::Done => 3,
        });
        w.u64(self.next_wake);
        snap_time_class(w, self.park_class);
        w.opt(&self.pending_class, |w, &tc| snap_time_class(w, tc));
        w.usize(self.singles_seen);
        w.usize(self.sections_seen);
        w.usize(self.dynloops_seen);
        w.u64(self.jobs_taken);
        w.u64(self.next_interrupt);
        w.u64(self.interrupts);
        for v in [
            self.user.loads,
            self.user.stores,
            self.user.atomics,
            self.user.compute_cycles,
            self.user.io_in,
            self.user.io_out,
        ] {
            w.u64(v);
        }
        w.u64(self.stores_converted);
        w.u64(self.stores_skipped);
        w.opt(&self.watchdog_deadline, |w, &c| w.u64(c));
        w.u64(self.watchdog_gen);
        w.opt(&self.token_wait_deadline, |w, &c| w.u64(c));
    }

    fn restore_into(&mut self, r: &mut snap::Reader) -> Result<(), snap::SnapError> {
        self.timeline.restore_into(r)?;
        self.frames = r.seq(Frame::restore)?;
        self.vars = r.seq(|r| r.i64())?;
        self.status = match r.u8()? {
            0 => Status::Ready,
            1 => Status::Parked,
            2 => Status::PoolIdle,
            3 => Status::Done,
            _ => return Err(snap::SnapError::Corrupt { what: "Status" }),
        };
        self.next_wake = r.u64()?;
        self.park_class = restore_time_class(r)?;
        self.pending_class = r.opt(restore_time_class)?;
        self.singles_seen = r.usize()?;
        self.sections_seen = r.usize()?;
        self.dynloops_seen = r.usize()?;
        self.jobs_taken = r.u64()?;
        self.next_interrupt = r.u64()?;
        self.interrupts = r.u64()?;
        self.user = OpCounts {
            loads: r.u64()?,
            stores: r.u64()?,
            atomics: r.u64()?,
            compute_cycles: r.u64()?,
            io_in: r.u64()?,
            io_out: r.u64()?,
        };
        self.stores_converted = r.u64()?;
        self.stores_skipped = r.u64()?;
        self.watchdog_deadline = r.opt(|r| r.u64())?;
        self.watchdog_gen = r.u64()?;
        self.token_wait_deadline = r.opt(|r| r.u64())?;
        Ok(())
    }
}

fn snap_slip_clause(w: &mut snap::Writer, cl: &SlipstreamClause) {
    w.u8(match cl.sync {
        SlipSyncType::GlobalSync => 0,
        SlipSyncType::LocalSync => 1,
        SlipSyncType::RuntimeSync => 2,
        SlipSyncType::None => 3,
    });
    w.u64(cl.tokens);
}

fn restore_slip_clause(r: &mut snap::Reader) -> Result<SlipstreamClause, snap::SnapError> {
    let sync = match r.u8()? {
        0 => SlipSyncType::GlobalSync,
        1 => SlipSyncType::LocalSync,
        2 => SlipSyncType::RuntimeSync,
        3 => SlipSyncType::None,
        _ => {
            return Err(snap::SnapError::Corrupt {
                what: "SlipSyncType",
            })
        }
    };
    Ok(SlipstreamClause {
        sync,
        tokens: r.u64()?,
    })
}

impl<'p> Engine<'p> {
    /// Hash of everything that must match between the snapshotting engine
    /// and a restoring one: the compiled program and every configuration
    /// field that shapes simulation state. Worker count, lookahead, and
    /// the cycle/event budgets are excluded — the scheduler state is
    /// exported queue-neutrally and results are bit-identical across
    /// them. The fault plan is excluded too (it has its own swap rule;
    /// see [`Engine::restore`]).
    fn identity_hash(&self) -> u64 {
        use std::fmt::Write as _;
        let c = &self.cfg;
        let mut s = String::new();
        let _ = write!(
            s,
            "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.cp,
            c.machine,
            c.mode,
            c.env,
            c.policy,
            c.static_sched_cycles,
            c.dynamic_sched_cycles,
            c.io_fixed_cycles,
            c.io_cycles_per_8_bytes,
            c.recovery,
            c.health,
            c.os_noise,
            c.trace,
            c.mutation,
        );
        snap::fnv1a(s.as_bytes())
    }

    /// Hash of the (post-conversion) fault plan, for the swap rule.
    fn fault_plan_hash(&self) -> u64 {
        snap::fnv1a(format!("{:?}", self.cfg.faults).as_bytes())
    }

    /// Serialize the complete mutable engine state into a versioned,
    /// checksummed snapshot. Call at a [`Engine::run_until`] boundary;
    /// a restored engine continued to completion produces results
    /// bit-identical to the uninterrupted run.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = snap::Writer::new();
        w.u64(self.identity_hash());
        w.u64(self.fault_plan_hash());
        w.seq(&self.fault_fired, |w, b| w.bool(*b));
        let (events, next_seq) = match &self.q {
            Q::Serial(q) => q.export(),
            Q::Domains(q) => q.export(),
        };
        w.seq(&events, |w, &(t, s, c)| {
            w.u64(t);
            w.u64(s);
            w.usize(c.0);
        });
        w.u64(next_seq);
        self.ms.snapshot(&mut w);
        w.seq(&self.cpus, |w, c| c.snapshot(w));
        w.seq(&self.pairs, |w, p| p.snapshot(w));
        self.construct_barrier.snapshot(&mut w);
        self.region_barrier.snapshot(&mut w);
        w.seq(&self.critical_locks, |w, l| l.snapshot(w));
        self.reduction_lock.snapshot(&mut w);
        w.seq(&self.sched_locks, |w, l| l.snapshot(w));
        w.u64s(&self.sched_counter_lines);
        w.seq(&self.affinity_locks, |w, ls| {
            w.seq(ls, |w, l| l.snapshot(w))
        });
        w.u64s(&self.single_lines);
        w.u64s(&self.sections_lines);
        self.arena.snapshot(&mut w);
        w.opt(&self.global_slip, snap_slip_clause);
        match self.region_slip {
            RegionSlip::Off => w.u8(0),
            RegionSlip::On(s) => {
                w.u8(1);
                w.bool(s.global);
                w.u64(s.tokens);
            }
        }
        w.opt(&self.current_region, |w, n| w.u32(n.0));
        w.u64(self.job_gen);
        w.u64(self.job_flag);
        w.u64s(&self.alloc_next);
        w.u64(self.alloc_base_line);
        w.bool(self.master_done);
        w.u64(self.events);
        w.u64(self.sched_grabs_total);
        w.u64(self.sched_steals_total);
        self.breaker.snapshot(&mut w);
        w.u64(self.regions_dispatched);
        self.tracer.snapshot(&mut w);
        // PDES diagnostics: counters only (workers/lookahead re-derive
        // from the restoring engine's own configuration).
        w.u64(self.pdes.windows);
        w.u64(self.pdes.multi_domain_windows);
        w.usize(self.pdes.peak_window_domains);
        w.u64(self.pdes.scouted_windows);
        w.u64(self.pdes.scout_pure);
        w.u64(self.pdes.scout_local);
        w.u64(self.pdes.scout_boundary);
        w.u64(self.pdes.scout_other);
        w.u64(self.pdes.ff_pieces);
        w.u64(self.pdes.ff_iters);
        snap::seal(SNAPSHOT_VERSION, &w.into_bytes())
    }

    /// Rebuild an engine from a snapshot taken by [`Engine::snapshot`].
    ///
    /// `cp` and `cfg` must describe the same simulation the snapshot was
    /// taken from (validated by the stored identity hash), with three
    /// allowed differences: `workers`/`lookahead` (scheduler state is
    /// queue-neutral), the cycle/event budgets, and the fault plan —
    /// which may be *swapped* for a different one only while no fault of
    /// the stored plan has fired yet (so a fault-free warmup can fork
    /// into many differently-faulted continuations).
    pub fn restore(
        cp: &'p CompiledProgram,
        cfg: EngineConfig,
        bytes: &[u8],
    ) -> Result<Self, String> {
        let payload = snap::open(bytes, SNAPSHOT_VERSION).map_err(|e| format!("snapshot: {e}"))?;
        let mut eng = Engine::new(cp, cfg);
        let mut r = snap::Reader::new(payload);
        eng.restore_fields(&mut r)
            .map_err(|e| format!("snapshot: {e}"))?;
        r.expect_end().map_err(|e| format!("snapshot: {e}"))?;
        Ok(eng)
    }

    fn restore_fields(&mut self, r: &mut snap::Reader) -> Result<(), String> {
        let stored_identity = r.u64()?;
        if stored_identity != self.identity_hash() {
            return Err(
                "identity mismatch: snapshot was taken under a different program or \
                 configuration"
                    .into(),
            );
        }
        let stored_plan = r.u64()?;
        let fired = r.seq(|r| r.bool())?;
        if stored_plan == self.fault_plan_hash() {
            if fired.len() != self.fault_fired.len() {
                return Err("fault-fired ledger length mismatch".into());
            }
            self.fault_fired = fired;
        } else if fired.iter().any(|&f| f) {
            return Err(
                "cannot swap the fault plan: a fault of the stored plan already fired \
                 before the checkpoint"
                    .into(),
            );
        }
        let events = r.seq(|r| Ok((r.u64()?, r.u64()?, CpuId(r.usize()?))))?;
        let next_seq = r.u64()?;
        self.q = match &self.q {
            Q::Serial(_) => Q::Serial(EventQueue::import(&events, next_seq)),
            Q::Domains(_) => Q::Domains(DomainQueues::import(
                &events,
                next_seq,
                self.cfg.machine.num_cmps,
                self.cfg.machine.cpus_per_cmp,
            )),
        };
        self.ms.restore_into(r)?;
        let ncpus = r.usize()?;
        if ncpus != self.cpus.len() {
            return Err("processor count mismatch".into());
        }
        for c in self.cpus.iter_mut() {
            c.restore_into(r)?;
        }
        let npairs = r.usize()?;
        if npairs != self.pairs.len() {
            return Err("pair count mismatch".into());
        }
        for p in self.pairs.iter_mut() {
            p.restore_into(r)?;
        }
        self.construct_barrier = Barrier::restore(r)?;
        self.region_barrier = Barrier::restore(r)?;
        self.critical_locks = r.seq(Lock::restore)?;
        self.reduction_lock = Lock::restore(r)?;
        self.sched_locks = r.seq(Lock::restore)?;
        self.sched_counter_lines = r.u64s()?;
        self.affinity_locks = r.seq(|r| r.seq(Lock::restore))?;
        self.single_lines = r.u64s()?;
        self.sections_lines = r.u64s()?;
        self.arena = ConstructArena::restore(r)?;
        self.global_slip = r.opt(restore_slip_clause)?;
        self.region_slip = match r.u8()? {
            0 => RegionSlip::Off,
            1 => RegionSlip::On(SlipSync {
                global: r.bool()?,
                tokens: r.u64()?,
            }),
            _ => return Err("corrupt RegionSlip".into()),
        };
        self.current_region = r.opt(|r| Ok(NodeId(r.u32()?)))?;
        self.job_gen = r.u64()?;
        self.job_flag = r.u64()?;
        self.alloc_next = r.u64s()?;
        self.alloc_base_line = r.u64()?;
        self.master_done = r.bool()?;
        self.events = r.u64()?;
        self.sched_grabs_total = r.u64()?;
        self.sched_steals_total = r.u64()?;
        self.breaker.restore_into(r)?;
        self.regions_dispatched = r.u64()?;
        self.tracer = Tracer::restore(r)?;
        self.pdes.windows = r.u64()?;
        self.pdes.multi_domain_windows = r.u64()?;
        self.pdes.peak_window_domains = r.usize()?;
        self.pdes.scouted_windows = r.u64()?;
        self.pdes.scout_pure = r.u64()?;
        self.pdes.scout_local = r.u64()?;
        self.pdes.scout_boundary = r.u64()?;
        self.pdes.scout_other = r.u64()?;
        self.pdes.ff_pieces = r.u64()?;
        self.pdes.ff_iters = r.u64()?;
        Ok(())
    }
}

fn merge_ops(into: &mut OpCounts, from: &OpCounts) {
    into.loads += from.loads;
    into.stores += from.stores;
    into.atomics += from.atomics;
    into.compute_cycles += from.compute_cycles;
    into.io_in += from.io_in;
    into.io_out += from.io_out;
}
