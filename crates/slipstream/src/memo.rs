//! Memoized phase replay: turn `omp-analyze` replay-loop licenses into an
//! engine-executable plan, and report what the engine did with it.
//!
//! The analyzer's certification pass ([`omp_analyze::ReplayLoop`]) licenses
//! serial top-level loops whose barrier phases are all `Pure`/`ReplaySafe`:
//! every iteration performs the same shared-memory communication pattern, so
//! once the simulated machine reaches a fixed point — two iteration starts
//! `p` iterations apart present the identical time-shift-normalized machine
//! state (`p > 1` happens physically: barrier-line ownership migrates to the
//! last arriver, rotating who arrives last next) — the remaining iterations
//! are a closed form. The engine then *replays* whole periods in bulk:
//! counters advance by `j·δ` and every live clock by `j·Δ`, where `(δ, Δ)`
//! are the per-period deltas measured between the two converged iteration
//! starts and `j` is the number of skipped periods (`j·p` iterations).
//!
//! The plan built here resolves each license's [`omp_ir::NodePath`] to the
//! compiled node ids the engine's frame stack actually carries. Resolution is
//! structural, so a plan applied to a *different* program (or the same
//! program recompiled with different bounds) is caught at run time by the
//! license's guard checksum and the engine falls back to full execution.
//!
//! Bit-identity contract: a memo-on run must produce exactly the statistics
//! of the memo-off run. Two observation-only quantities are exempt and
//! deliberately excluded from stats fingerprints: the engine's processed
//! event count and [`dsm_sim::Lock::acquisitions`] (skipped iterations
//! process no events and take no locks).

use crate::compile::{CompiledProgram, FNode, NodeId};
use omp_analyze::AnalysisReport;
use omp_ir::path::{NodePath, PathSeg};
use omp_ir::VarId;

/// One licensed replay loop, resolved to compiled-node coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoLoop {
    /// The loop's body node — the engine's `For` frame carries this id, so
    /// it is the plan's lookup key.
    pub body: NodeId,
    /// Induction variable.
    pub var: VarId,
    /// Certified first iteration value.
    pub begin: i64,
    /// Certified exclusive upper bound.
    pub end: i64,
    /// Certified step.
    pub step: u64,
    /// Certified trip count.
    pub trip_count: u64,
    /// [`omp_analyze::guard_checksum`] over the certified loop bounds; the
    /// engine recomputes it from the live frame before engaging.
    pub guard_checksum: u64,
}

/// Licensed loops keyed by their body [`NodeId`], ready for the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoPlan {
    /// Licensed loops, sorted by body id.
    pub loops: Vec<MemoLoop>,
}

impl MemoPlan {
    /// True when no loop is licensed (memo machinery fully inert).
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The license whose loop body is `body`, if any.
    pub fn lookup(&self, body: NodeId) -> Option<&MemoLoop> {
        self.loops.iter().find(|l| l.body == body)
    }
}

/// What the memo runtime did during a run. Observation-only — excluded
/// from stats fingerprints, like traces and PDES diagnostics — and all
/// zeros when no plan was installed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoDiag {
    /// Non-internal barrier releases inspected while a plan was armed.
    pub boundaries: u64,
    /// Iteration-start machine-state digests computed.
    pub samples: u64,
    /// Fixed points reached: bulk jumps performed.
    pub engagements: u64,
    /// Loop iterations replayed in closed form instead of executed.
    pub jumped_iterations: u64,
    /// Times the runtime guard found the live loop contradicting its
    /// certificate (stale plan); each permanently disables the memo.
    pub guard_fallbacks: u64,
    /// The memo runtime gave up for the rest of the run (guard fallback
    /// or too many non-converging samples).
    pub disabled: bool,
}

/// Stable node-kind labels for the compiled tree, matching
/// [`omp_ir::path::node_kind`] so resolved paths compare byte-for-byte
/// with analyzer evidence paths.
fn fnode_kind(n: &FNode) -> &'static str {
    match n {
        FNode::Seq(_) => "seq",
        FNode::Compute(_) => "compute",
        FNode::Load { .. } => "load",
        FNode::Store { .. } => "store",
        FNode::For { .. } => "for",
        FNode::Parallel { .. } => "parallel",
        FNode::SlipstreamSet(_) => "slipstream_set",
        FNode::ParFor { .. } => "parfor",
        FNode::Barrier => "barrier",
        FNode::Single(_) => "single",
        FNode::Master(_) => "master",
        FNode::Critical { .. } => "critical",
        FNode::Atomic { .. } => "atomic",
        FNode::Sections(_) => "sections",
        FNode::Flush => "flush",
        FNode::Io { .. } => "io",
    }
}

/// Walk the compiled tree with the analyzer's path convention — `Seq` is
/// transparent, every other node contributes a `kind[index]` segment with
/// its statement position in the enclosing block — collecting the path of
/// every serial `For`.
fn collect_for_paths(cp: &CompiledProgram) -> Vec<(String, NodeId)> {
    let mut out = Vec::new();
    let mut segs: Vec<PathSeg> = Vec::new();
    walk(cp, cp.root, 0, &mut segs, &mut out);
    out
}

fn walk(
    cp: &CompiledProgram,
    id: NodeId,
    idx: u32,
    segs: &mut Vec<PathSeg>,
    out: &mut Vec<(String, NodeId)>,
) {
    let n = cp.node(id);
    if let FNode::Seq(kids) = n {
        for (k, c) in kids.iter().enumerate() {
            walk(cp, *c, k as u32, segs, out);
        }
        return;
    }
    segs.push(PathSeg {
        kind: fnode_kind(n),
        index: idx,
    });
    if matches!(n, FNode::For { .. }) {
        out.push((NodePath::from_segs(segs).to_string(), id));
    }
    match n {
        FNode::For { body, .. }
        | FNode::Parallel { body, .. }
        | FNode::ParFor { body, .. }
        | FNode::Critical { body, .. } => walk(cp, *body, 0, segs, out),
        FNode::Single(b) | FNode::Master(b) => walk(cp, *b, 0, segs, out),
        FNode::Sections(kids) => {
            for (k, c) in kids.iter().enumerate() {
                walk(cp, *c, k as u32, segs, out);
            }
        }
        _ => {}
    }
    segs.pop();
}

/// Resolve every replay-loop license in `report` against the compiled
/// program. Licenses whose path does not resolve to a serial `For` with
/// the certified induction variable and step are dropped (the program
/// differs from the analyzed one); the runtime guard re-verifies bounds
/// before any jump, so a resolved-but-stale license still cannot engage.
pub fn build_plan(report: &AnalysisReport, cp: &CompiledProgram) -> MemoPlan {
    if report.replay_loops.is_empty() {
        return MemoPlan::default();
    }
    let paths = collect_for_paths(cp);
    let mut loops: Vec<MemoLoop> = Vec::new();
    for rl in &report.replay_loops {
        let want = rl.path.to_string();
        let Some((_, id)) = paths.iter().find(|(p, _)| *p == want) else {
            continue;
        };
        let FNode::For {
            var, step, body, ..
        } = cp.node(*id)
        else {
            continue;
        };
        if var.0 != rl.var || *step != rl.step {
            continue;
        }
        loops.push(MemoLoop {
            body: *body,
            var: *var,
            begin: rl.begin,
            end: rl.end,
            step: rl.step,
            trip_count: rl.trip_count,
            guard_checksum: rl.guard_checksum,
        });
    }
    loops.sort_by_key(|l| l.body.0);
    loops.dedup_by_key(|l| l.body.0);
    MemoPlan { loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::analyze_config;
    use crate::policy::AStreamPolicy;
    use dsm_sim::{AddressMap, MachineConfig};
    use omp_analyze::analyze;
    use omp_ir::{Expr, ProgramBuilder};

    fn machine() -> MachineConfig {
        let mut m = MachineConfig::paper();
        m.num_cmps = 4;
        m
    }

    fn licensed_program(trip: i64) -> omp_ir::node::Program {
        let mut b = ProgramBuilder::new("memo-plan");
        let a = b.shared_array("a", 64, 8);
        let c = b.shared_array("c", 64, 8);
        let i = b.var();
        let t = b.var();
        b.parallel(move |r| {
            r.for_loop(t, 0, trip, move |it| {
                it.par_for(None, i, 0, 33, move |body| {
                    body.load(a, Expr::v(i));
                    body.compute(4);
                    body.store(c, Expr::v(i));
                });
            });
        });
        b.build()
    }

    fn plan_for(program: &omp_ir::node::Program) -> MemoPlan {
        let m = machine();
        let cfg = analyze_config(&m, &AStreamPolicy::paper(), None);
        let report = analyze(program, &cfg);
        let map = AddressMap::new(&m);
        let cp = crate::compile::compile(program, &map).unwrap();
        build_plan(&report, &cp)
    }

    #[test]
    fn licensed_loop_resolves_to_one_plan_entry() {
        let program = licensed_program(5);
        let plan = plan_for(&program);
        assert_eq!(plan.loops.len(), 1, "expected one license: {plan:?}");
        let l = &plan.loops[0];
        assert_eq!((l.begin, l.end, l.step, l.trip_count), (0, 5, 1, 5));
        assert_eq!(
            l.guard_checksum,
            omp_analyze::guard_checksum(l.var.0, 0, 5, 1)
        );
        assert!(plan.lookup(l.body).is_some());
    }

    #[test]
    fn unlicensed_program_yields_empty_plan() {
        // Store to a racy fixed element: phases are Opaque, nothing is
        // licensed, the plan is inert.
        let mut b = ProgramBuilder::new("racy");
        let a = b.shared_array("a", 64, 8);
        let i = b.var();
        let t = b.var();
        b.parallel(move |r| {
            r.for_loop(t, 0, 4, move |it| {
                it.par_for(None, i, 0, 16, move |body| {
                    body.store(a, Expr::c(7));
                });
            });
        });
        let plan = plan_for(&b.build());
        assert!(plan.is_empty());
    }

    #[test]
    fn stale_license_against_other_program_does_not_resolve_blindly() {
        // A license from the 5-trip program resolved against the 9-trip
        // compilation still resolves structurally (same tree shape), but
        // keeps the *certified* bounds — the runtime guard is what catches
        // the mismatch. The plan must carry the certified trip count.
        let p5 = licensed_program(5);
        let p9 = licensed_program(9);
        let m = machine();
        let cfg = analyze_config(&m, &AStreamPolicy::paper(), None);
        let report5 = analyze(&p5, &cfg);
        let map = AddressMap::new(&m);
        let cp9 = crate::compile::compile(&p9, &map).unwrap();
        let plan = build_plan(&report5, &cp9);
        assert_eq!(plan.loops.len(), 1);
        assert_eq!(plan.loops[0].trip_count, 5, "certified bounds preserved");
    }
}
