//! Text tables for the experiment harness (the "figures" of the repro).

use crate::exec::RunResult;
use crate::runner::RunSummary;
use dsm_sim::{FillClass, ReqKind, TimeClass, FILL_CLASSES};

/// Render the Figure 2/4-style table: speedups over the first (baseline)
/// summary plus the per-bucket execution-time breakdown.
pub fn breakdown_table(rows: &[RunSummary]) -> String {
    let mut s = String::new();
    let baseline = match rows.first() {
        Some(r) => r.exec_cycles,
        None => return s,
    };
    let classes = [
        TimeClass::Busy,
        TimeClass::MemStall,
        TimeClass::Lock,
        TimeClass::Barrier,
        TimeClass::Scheduling,
        TimeClass::JobWait,
    ];
    s.push_str(&format!("{:<12} {:>12} {:>8}", "mode", "cycles", "speedup"));
    for c in classes {
        s.push_str(&format!(" {:>10}", c.label()));
    }
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>12} {:>8.3}",
            r.label,
            r.exec_cycles,
            r.speedup_vs(baseline)
        ));
        for c in classes {
            s.push_str(&format!(" {:>9.1}%", 100.0 * r.r_fraction(c)));
        }
        s.push('\n');
    }
    s
}

/// Render the Figure 3/5-style table: shared-request classification for
/// read and read-exclusive fills.
pub fn fills_table(rows: &[RunSummary]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{:<12} {:<8}", "mode", "kind"));
    for c in FILL_CLASSES {
        s.push_str(&format!(" {:>9}", c.label()));
    }
    s.push_str(&format!(" {:>9}\n", "total"));
    for r in rows {
        for (kind, kname) in [(ReqKind::Read, "read"), (ReqKind::ReadEx, "read-ex")] {
            s.push_str(&format!("{:<12} {:<8}", r.label, kname));
            for c in FILL_CLASSES {
                s.push_str(&format!(" {:>8.1}%", 100.0 * r.fills.fraction(kind, c)));
            }
            s.push_str(&format!(" {:>9}\n", r.fills.total(kind)));
        }
    }
    s
}

/// One-line summary of the A-stream usefulness metrics the paper quotes
/// in Section 5.1 (timely/late coverage, premature prefetches).
pub fn coverage_line(r: &RunSummary) -> String {
    format!(
        "{}: read A-timely {:.0}%, A-late {:.0}%, A-only {:.0}%; rd-ex coverage {:.0}%; both-streams(read) {:.0}%",
        r.label,
        100.0 * r.fills.fraction(ReqKind::Read, FillClass::ATimely),
        100.0 * r.fills.fraction(ReqKind::Read, FillClass::ALate),
        100.0 * r.fills.fraction(ReqKind::Read, FillClass::AOnly),
        100.0 * r.fills.a_coverage(ReqKind::ReadEx),
        100.0 * r.fills.both_streams_fraction(ReqKind::Read),
    )
}

/// Render the per-pair resilience ledger of a run: faults fired,
/// recoveries performed (watchdog- and timeout-forced subsets), the
/// health-controller state, re-promotions granted, and the pair's final
/// operating mode. Pairs demoted to single-stream mode show the cycle of
/// their most recent demotion.
pub fn resilience_table(r: &RunResult) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<6} {:>8} {:>12} {:>10} {:>9} {:<10} {:>7} {:<16} {:>12}\n",
        "pair",
        "faults",
        "recoveries",
        "watchdog",
        "timeout",
        "health",
        "reprom",
        "mode",
        "demoted@"
    ));
    for l in &r.pair_ledgers {
        s.push_str(&format!(
            "{:<6} {:>8} {:>12} {:>10} {:>9} {:<10} {:>7} {:<16} {:>12}\n",
            l.tid,
            l.faults_injected,
            l.recoveries,
            l.watchdog_recoveries,
            l.timeout_recoveries,
            l.health.label(),
            l.repromotions,
            l.mode.label(),
            l.demoted_at
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
        ));
    }
    s.push_str(&format!(
        "total: {} faults, {} recoveries ({} watchdog, {} timeout), {} demotions, {} repromotions\n",
        r.pair_ledgers
            .iter()
            .map(|l| l.faults_injected)
            .sum::<u64>(),
        r.recoveries,
        r.watchdog_recoveries,
        r.timeout_recoveries,
        r.demotions,
        r.repromotions,
    ));
    let region_total: u64 = r.health_residency.iter().sum();
    if region_total > 0 {
        use omp_rt::mode::HEALTH_STATES;
        s.push_str("health residency (pair-regions):");
        for st in HEALTH_STATES {
            s.push_str(&format!(
                " {} {}",
                st.label(),
                r.health_residency[st.ordinal() as usize]
            ));
        }
        s.push('\n');
    }
    if r.breaker_trips > 0 {
        s.push_str(&format!(
            "breaker: {} trips, {} reclosures\n",
            r.breaker_trips, r.breaker_reclosures
        ));
    }
    s
}

/// Render the slipstream analytics of a traced run (A-stream lead,
/// token-slack histograms, prefetch-timeliness streaks, recovery
/// latencies). Returns `None` when the run was not traced.
pub fn trace_report(r: &RunResult) -> Option<String> {
    r.trace.as_ref().map(|t| sim_trace::analyze(t).render())
}

/// Canonical fingerprint of everything a run reports, used by the
/// golden-determinism regression tests, the differential fuzzer's
/// memo-mismatch check, and the throughput harness. Two runs are
/// bit-identical iff their fingerprints are equal: the string covers the
/// execution time, both time breakdowns, per-CPU cache/sync counters,
/// user-level op totals for both streams, the fill classification,
/// scheduler and resilience counters, and the machine-wide traffic
/// counters. Observation-only diagnostics (traces, PDES scheduling
/// stats, memo replay stats, processed-event and lock-acquisition
/// counts) are deliberately outside the contract.
pub fn stats_fingerprint(s: &RunSummary) -> String {
    use dsm_sim::{ReqKind, FILL_CLASSES, TIME_CLASSES};
    let mut v: Vec<u64> = vec![s.exec_cycles];
    for c in TIME_CLASSES {
        v.push(s.r_breakdown.get(c));
    }
    for c in TIME_CLASSES {
        v.push(s.a_breakdown.get(c));
    }
    for kind in [ReqKind::Read, ReqKind::ReadEx] {
        for c in FILL_CLASSES {
            v.push(s.fills.get(kind, c));
        }
    }
    let r = &s.raw;
    for u in [&r.user_r, &r.user_a] {
        v.extend([
            u.loads,
            u.stores,
            u.atomics,
            u.compute_cycles,
            u.io_in,
            u.io_out,
        ]);
    }
    let (mut l1, mut l2h, mut l2m, mut bars, mut lds, mut sts) = (0, 0, 0, 0, 0, 0);
    for c in &r.cpu_stats {
        l1 += c.l1_hits;
        l2h += c.l2_hits;
        l2m += c.l2_misses;
        bars += c.barriers;
        lds += c.loads;
        sts += c.stores;
    }
    v.extend([l1, l2h, l2m, bars, lds, sts]);
    v.extend([
        r.sched_grabs,
        r.sched_steals,
        r.recoveries,
        r.watchdog_recoveries,
        r.demotions,
        r.stores_converted,
        r.stores_skipped,
    ]);
    let m = &r.machine;
    v.extend([
        m.network_messages,
        m.network_contention,
        m.memory_contention,
        m.bus_contention,
        m.l2_evictions,
        m.l2_invalidations,
        m.three_hop_fetches,
        m.invalidations_sent,
    ]);
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::{FillCounts, TimeBreakdown};
    use omp_ir::trace::OpCounts;

    fn dummy(label: &str, cycles: u64) -> RunSummary {
        RunSummary {
            name: "t".into(),
            label: label.into(),
            exec_cycles: cycles,
            r_breakdown: TimeBreakdown::new(),
            a_breakdown: TimeBreakdown::new(),
            fills: FillCounts::default(),
            analysis: None,
            raw: RunResult {
                exec_cycles: cycles,
                cpu_stats: vec![],
                roles: vec![],
                fill_counts: FillCounts::default(),
                r_breakdown: TimeBreakdown::new(),
                a_breakdown: TimeBreakdown::new(),
                user_r: OpCounts::default(),
                user_a: OpCounts::default(),
                sched_grabs: 0,
                sched_steals: 0,
                recoveries: 0,
                watchdog_recoveries: 0,
                timeout_recoveries: 0,
                demotions: 0,
                repromotions: 0,
                breaker_trips: 0,
                breaker_reclosures: 0,
                health_residency: [0; 4],
                pair_ledgers: vec![],
                stores_converted: 0,
                stores_skipped: 0,
                machine: dsm_sim::MachineCounters::default(),
                trace: None,
                pdes: Default::default(),
                memo: Default::default(),
            },
        }
    }

    #[test]
    fn tables_render_and_normalize_to_first_row() {
        let rows = vec![dummy("single", 1000), dummy("slip-G0", 800)];
        let t = breakdown_table(&rows);
        assert!(t.contains("single"));
        assert!(t.contains("slip-G0"));
        assert!(t.contains("1.250"), "800 vs 1000 baseline: 1.25x\n{t}");
        let f = fills_table(&rows);
        assert!(f.contains("read-ex"));
        assert!(f.contains("A-Timely"));
        let c = coverage_line(&rows[1]);
        assert!(c.starts_with("slip-G0"));
    }

    #[test]
    fn empty_rows_render_empty() {
        assert!(breakdown_table(&[]).is_empty());
    }

    #[test]
    fn resilience_table_shows_modes_and_totals() {
        use crate::faults::PairLedger;
        use omp_rt::mode::{HealthState, PairMode};
        let mut r = dummy("slip-G0", 100).raw;
        r.recoveries = 11;
        r.watchdog_recoveries = 2;
        r.timeout_recoveries = 3;
        r.demotions = 1;
        r.repromotions = 1;
        r.health_residency = [7, 1, 3, 1];
        r.breaker_trips = 1;
        r.breaker_reclosures = 1;
        r.pair_ledgers = vec![
            PairLedger {
                tid: 0,
                mode: PairMode::Slipstream,
                health: HealthState::Healthy,
                faults_injected: 1,
                recoveries: 2,
                watchdog_recoveries: 0,
                timeout_recoveries: 1,
                repromotions: 1,
                demoted_at: Some(777),
            },
            PairLedger {
                tid: 1,
                mode: PairMode::DegradedSingle,
                health: HealthState::Demoted,
                faults_injected: 4,
                recoveries: 9,
                watchdog_recoveries: 2,
                timeout_recoveries: 2,
                repromotions: 0,
                demoted_at: Some(12_345),
            },
        ];
        let t = resilience_table(&r);
        assert!(t.contains("degraded-single"), "{t}");
        assert!(t.contains("slipstream"), "{t}");
        assert!(t.contains("12345"), "{t}");
        assert!(
            t.contains("total: 5 faults, 11 recoveries (2 watchdog, 3 timeout), 1 demotions, 1 repromotions"),
            "{t}"
        );
        assert!(
            t.contains(
                "health residency (pair-regions): healthy 7 suspect 1 demoted 3 probation 1"
            ),
            "{t}"
        );
        assert!(t.contains("breaker: 1 trips, 1 reclosures"), "{t}");
    }
}
