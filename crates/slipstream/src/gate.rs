//! Pre-run safety gating: bridge the engine's configuration to the
//! `omp-analyze` static analyzer and decide whether a program may run.
//!
//! The analyzer models the same machine and A-stream policy the engine
//! will use: the team size comes from the CMP count, the L2 capacity
//! from the cache configuration, and the skip model from the
//! [`AStreamPolicy`] rows. Gating is observation-only by default
//! ([`GateMode::Warn`]): the report is attached to the run summary but
//! the simulation proceeds exactly as before, bit-identical to an
//! ungated run. [`GateMode::Deny`] refuses to run programs with
//! deny-severity findings (data races, unbalanced synchronization).

use crate::policy::{AAction, AStreamPolicy};
use dsm_sim::MachineConfig;
use omp_analyze::{analyze, AnalysisReport, AnalyzeConfig, GateMode, SkipModel};
use omp_ir::node::Program;
use omp_rt::mode::SlipSync;

/// Derive the analyzer's construct skip model from the engine's
/// [`AStreamPolicy`] so both tools agree on what the A-stream executes.
pub fn skip_model(policy: &AStreamPolicy) -> SkipModel {
    SkipModel {
        skip_single: policy.single == AAction::Skip,
        skip_critical: policy.critical == AAction::Skip,
        execute_master: policy.master == AAction::Execute,
        execute_atomic: policy.atomic == AAction::Execute,
        convert_shared_stores: policy.convert_shared_stores,
    }
}

/// Build an [`AnalyzeConfig`] matching a machine + policy + optional
/// synchronization override (the same precedence [`run_program`]
/// (crate::runner::run_program) applies).
pub fn analyze_config(
    machine: &MachineConfig,
    policy: &AStreamPolicy,
    sync: Option<SlipSync>,
) -> AnalyzeConfig {
    let mut cfg = AnalyzeConfig::paper()
        .with_threads(machine.num_cmps as u64)
        .with_l2_lines(machine.l2.size_bytes / machine.l2.line_bytes);
    cfg.line_bytes = machine.l2.line_bytes;
    cfg.skip = skip_model(policy);
    if let Some(s) = sync {
        cfg.default_sync = if s.global {
            omp_ir::node::SlipSyncType::GlobalSync
        } else {
            omp_ir::node::SlipSyncType::LocalSync
        };
        cfg.default_tokens = s.tokens;
    }
    cfg
}

/// Run the analyzer according to `gate`.
///
/// Returns `Ok(None)` for [`GateMode::Allow`] (analysis skipped),
/// `Ok(Some(report))` when analysis ran and the program may proceed, and
/// `Err` with the rendered report when [`GateMode::Deny`] blocks the
/// run.
pub fn gate_program(
    program: &Program,
    gate: GateMode,
    cfg: &AnalyzeConfig,
) -> Result<Option<AnalysisReport>, String> {
    if gate == GateMode::Allow {
        return Ok(None);
    }
    let report = analyze(program, cfg);
    if gate == GateMode::Deny && report.deny_count() > 0 {
        return Err(format!(
            "slipstream gate: refusing to run `{}` with {} deny-severity finding(s)\n{}",
            program.name,
            report.deny_count(),
            report.render_text()
        ));
    }
    Ok(Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_maps_to_paper_skip_model() {
        assert_eq!(skip_model(&AStreamPolicy::paper()), SkipModel::paper());
        let ablated = skip_model(&AStreamPolicy::paper().without_store_conversion());
        assert!(!ablated.convert_shared_stores);
        let crit = skip_model(&AStreamPolicy::paper().with_critical_execution());
        assert!(!crit.skip_critical);
    }

    #[test]
    fn config_tracks_machine_shape() {
        let m = MachineConfig::paper();
        let cfg = analyze_config(&m, &AStreamPolicy::paper(), None);
        assert_eq!(cfg.num_threads, m.num_cmps as u64);
        assert_eq!(cfg.l2_lines, m.l2.size_bytes / m.l2.line_bytes);
        let cfg = analyze_config(&m, &AStreamPolicy::paper(), Some(SlipSync::L1));
        assert_eq!(cfg.default_sync, omp_ir::node::SlipSyncType::LocalSync);
        assert_eq!(cfg.default_tokens, 1);
    }
}
