//! Deterministic fault injection and the per-pair resilience ledger.
//!
//! The paper argues (Section 4.4) that the A-stream is *speculative
//! everywhere*: any A-stream misbehaviour — wandering off the control
//! path, losing or duplicating synchronization tokens, missed scheduling
//! handshakes, stalls — is tolerable because the R-stream carries the
//! architectural state and the runtime can always re-seed the A-stream
//! from it. This module makes that claim testable. A [`FaultPlan`] is a
//! seeded, reproducible set of [`FaultEvent`]s the execution engine fires
//! at well-defined hook points; the engine's recovery machinery
//! (token-slack suspicion, barrier watchdog, bounded retry with demotion
//! to single-stream mode) must absorb every plan without deadlocking or
//! corrupting R-stream output. The outcome of each run is summarized per
//! pair in a [`PairLedger`].
//!
//! Determinism: a plan is a pure function of its seed (via
//! [`SplitMix64`]), and the engine consumes it deterministically, so any
//! failing seed replays exactly.

use dsm_sim::SplitMix64;
use omp_rt::mode::{HealthState, PairMode};

/// The kinds of fault the engine knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The A-stream wanders off the program's control path at a barrier:
    /// it is marked diverged and parks instead of consuming a token
    /// (models a mispredicted reduced program).
    Wander,
    /// The A-stream is descheduled for `arg` cycles at a barrier entry
    /// (models an OS preemption burst hitting only the A processor).
    StallBurst,
    /// The R-stream's token insertion is dropped: the semaphore never
    /// sees the signal (models a lost pair-register write).
    TokenLoss,
    /// The R-stream's token insertion is duplicated: the semaphore is
    /// signalled twice (models a replayed pair-register write; the
    /// A-stream runs further ahead than the sync policy allows).
    TokenDup,
    /// A scheduling decision is enqueued but the `sched_sem` signal is
    /// lost: the A-stream is never woken for it.
    SignalLoss,
    /// A scheduling decision is corrupted in the queue: the A-stream
    /// receives a well-formed but wrong [`crate::pairing::Decision`].
    DecisionCorrupt,
    /// An A-stream store-to-prefetch conversion self-invalidates the
    /// wrong line, leaving a stale prefetched line in its cache instead
    /// of the intended one.
    StalePrefetch,
}

/// The engine hook point at which a [`FaultKind`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// A-stream barrier entry (keyed by the pair's A-side epoch).
    ABarrier,
    /// R-stream token insertion (keyed by a per-pair insertion sequence).
    TokenInsert,
    /// R-stream decision publication (keyed by a per-pair publication
    /// sequence; covers worksharing decisions and the region/IO
    /// handshakes).
    Publish,
    /// A-stream shared-store conversion (keyed by the A-stream's running
    /// count of shared stores).
    AStore,
}

impl FaultSite {
    /// Short label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::ABarrier => "a-barrier",
            FaultSite::TokenInsert => "token-insert",
            FaultSite::Publish => "publish",
            FaultSite::AStore => "a-store",
        }
    }
}

impl FaultKind {
    /// The hook point where this fault fires.
    pub fn site(self) -> FaultSite {
        match self {
            FaultKind::Wander | FaultKind::StallBurst => FaultSite::ABarrier,
            FaultKind::TokenLoss | FaultKind::TokenDup => FaultSite::TokenInsert,
            FaultKind::SignalLoss | FaultKind::DecisionCorrupt => FaultSite::Publish,
            FaultKind::StalePrefetch => FaultSite::AStore,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Wander => "wander",
            FaultKind::StallBurst => "stall-burst",
            FaultKind::TokenLoss => "token-loss",
            FaultKind::TokenDup => "token-dup",
            FaultKind::SignalLoss => "signal-loss",
            FaultKind::DecisionCorrupt => "decision-corrupt",
            FaultKind::StalePrefetch => "stale-prefetch",
        }
    }

    /// All kinds, in display order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Wander,
        FaultKind::StallBurst,
        FaultKind::TokenLoss,
        FaultKind::TokenDup,
        FaultKind::SignalLoss,
        FaultKind::DecisionCorrupt,
        FaultKind::StalePrefetch,
    ];
}

/// One scheduled fault: fire `kind` against pair `tid` the `seq`-th time
/// its hook point is reached. Each event fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What to inject.
    pub kind: FaultKind,
    /// Victim pair (team thread id == CMP index in slipstream mode).
    pub tid: u64,
    /// Sequence number at the hook point (epoch for barrier faults,
    /// running operation count for the others).
    pub seq: u64,
    /// Kind-specific magnitude (stall cycles for
    /// [`FaultKind::StallBurst`]; ignored otherwise).
    pub arg: u64,
}

/// A reproducible set of faults for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults. Order is irrelevant except as a tie-break
    /// when two events name the same (site, tid, seq): the earlier entry
    /// fires first.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: append one event.
    pub fn with(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// A single A-stream wander at `(tid, epoch)` — the legacy
    /// `inject_divergence` behaviour.
    pub fn wander_at(tid: u64, epoch: u64) -> Self {
        FaultPlan::none().with(FaultEvent {
            kind: FaultKind::Wander,
            tid,
            seq: epoch,
            arg: 0,
        })
    }

    /// A seeded random plan against a team of `team` pairs: between 1 and
    /// `max_events` faults with uniformly random kinds, victims, and
    /// small sequence numbers. Identical `(seed, team, max_events)`
    /// always produce the identical plan.
    ///
    /// No two events ever share a `(site, tid, seq)` hook slot: the
    /// engine fires the first unfired match at a hook, so duplicates
    /// would make which *kind* fires order-dependent and the oracle
    /// labels ambiguous. Each draw rejection-samples (bounded, and
    /// deterministic because the generator stream is) until it lands on a
    /// free slot; a draw that cannot find one after 16 attempts is
    /// dropped rather than duplicated.
    pub fn random(seed: u64, team: u64, max_events: usize) -> Self {
        assert!(team > 0 && max_events > 0);
        let mut g = SplitMix64::new(seed ^ 0xFA_17B0A7);
        let n = 1 + g.below(max_events as u64) as usize;
        let mut events: Vec<FaultEvent> = Vec::with_capacity(n);
        let mut seen: Vec<(FaultSite, u64, u64)> = Vec::with_capacity(n);
        for _ in 0..n {
            for _attempt in 0..16 {
                let kind = FaultKind::ALL[g.below(FaultKind::ALL.len() as u64) as usize];
                let tid = g.below(team);
                let seq = g.below(6);
                let slot = (kind.site(), tid, seq);
                if seen.contains(&slot) {
                    continue;
                }
                seen.push(slot);
                events.push(FaultEvent {
                    kind,
                    tid,
                    seq,
                    arg: if kind == FaultKind::StallBurst {
                        1_000 + g.below(200_000)
                    } else {
                        0
                    },
                });
                break;
            }
        }
        FaultPlan { events }
    }
}

/// Per-pair resilience record, assembled into
/// [`crate::exec::RunResult::pair_ledgers`] after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairLedger {
    /// Team thread id of the pair.
    pub tid: u64,
    /// Final operating mode (demoted pairs end in
    /// [`PairMode::DegradedSingle`]).
    pub mode: PairMode,
    /// Final health-controller state of the pair.
    pub health: HealthState,
    /// Faults the plan actually fired against this pair.
    pub faults_injected: u64,
    /// Divergence recoveries performed (all causes).
    pub recoveries: u64,
    /// Subset of `recoveries` forced by the barrier watchdog.
    pub watchdog_recoveries: u64,
    /// Subset of `recoveries` triggered by the token-wait timeout.
    pub timeout_recoveries: u64,
    /// Times the health controller re-promoted the pair from demoted to
    /// probation.
    pub repromotions: u64,
    /// Simulated cycle of the pair's most recent demotion, if any.
    pub demoted_at: Option<u64>,
}

impl PairLedger {
    /// True while the pair is demoted (its *final* state; a pair that was
    /// demoted and successfully re-promoted reports `false` here but a
    /// `Some` in [`PairLedger::demoted_at`]).
    pub fn demoted(&self) -> bool {
        self.mode.is_demoted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(42, 4, 6);
        let b = FaultPlan::random(42, 4, 6);
        let c = FaultPlan::random(43, 4, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        assert!(a.events.len() <= 6);
    }

    #[test]
    fn random_events_respect_bounds() {
        for seed in 0..64 {
            let p = FaultPlan::random(seed, 4, 6);
            for e in &p.events {
                assert!(e.tid < 4);
                assert!(e.seq < 6);
                if e.kind == FaultKind::StallBurst {
                    assert!(e.arg >= 1_000);
                } else {
                    assert_eq!(e.arg, 0);
                }
            }
        }
    }

    #[test]
    fn every_kind_eventually_generated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..256 {
            for e in FaultPlan::random(seed, 4, 6).events {
                seen.insert(e.kind);
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len());
    }

    #[test]
    fn sites_partition_kinds() {
        assert_eq!(FaultKind::Wander.site(), FaultSite::ABarrier);
        assert_eq!(FaultKind::TokenLoss.site(), FaultSite::TokenInsert);
        assert_eq!(FaultKind::SignalLoss.site(), FaultSite::Publish);
        assert_eq!(FaultKind::StalePrefetch.site(), FaultSite::AStore);
    }

    #[test]
    fn random_plans_never_share_a_hook_slot() {
        // Regression: duplicate (site, tid, seq) triples made which kind
        // fires at a hook order-dependent; plans must occupy each slot at
        // most once. Small team + seq space maximizes collision pressure.
        for seed in 0..512 {
            for (team, max_events) in [(1, 6), (2, 6), (4, 6), (4, 12)] {
                let p = FaultPlan::random(seed, team, max_events);
                let mut slots: Vec<_> = p
                    .events
                    .iter()
                    .map(|e| (e.kind.site(), e.tid, e.seq))
                    .collect();
                slots.sort();
                let before = slots.len();
                slots.dedup();
                assert_eq!(slots.len(), before, "seed {seed} has duplicate slots");
                assert!(!p.is_empty(), "dedup must not empty a plan");
                assert!(p.events.len() <= max_events);
            }
        }
    }

    #[test]
    fn wander_at_matches_legacy_injection() {
        let p = FaultPlan::wander_at(2, 5);
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].kind, FaultKind::Wander);
        assert_eq!((p.events[0].tid, p.events[0].seq), (2, 5));
    }
}
