//! The adaptive pair-health controller.
//!
//! PR 1's resilience story was one-way: a pair that exhausted its
//! divergence-recovery budget was demoted to single-stream mode for the
//! rest of the run, forfeiting the slipstream prefetch benefit even when
//! the underlying fault was transient (an OS preemption burst, a dropped
//! pair-register write). This module closes the loop. Each pair carries a
//! [`PairHealth`] state machine
//!
//! ```text
//!   Healthy <-> Suspect -> Demoted -> Probation -> Healthy
//!                  ^                      |
//!                  +---- (any recovery) --+--> Demoted (cool-down doubles)
//! ```
//!
//! advanced by the execution engine at region boundaries from two
//! signals: an **EWMA of the per-region recovery count** and (optionally)
//! the **prefetch-pollution fraction** from the shared-fill classifier —
//! the same A-Only category `dsm-sim::classify` computes for Figure 3. A
//! demoted pair re-enters slipstream *on probation* after a cool-down
//! measured in region completions; one recovery on probation re-demotes
//! it and doubles the next cool-down, and after
//! [`HealthPolicy::max_repromotions`] failed trials the demotion becomes
//! permanent. Region completions (not cycles) are the clock, so the
//! cool-down scales with the program's own granularity.
//!
//! The [`HealthPolicy::paper`] preset keeps every adaptive feature off —
//! byte-identical behaviour to the PR 1 runtime, which the golden
//! determinism tests pin. [`HealthPolicy::adaptive`] is the hardened
//! configuration used by the chaos-soak harness, the health tests, and
//! the `token_trace` example.

use omp_rt::mode::HealthState;
use omp_rt::team::BreakerConfig;

/// Tuning knobs of the pair-health controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// EWMA smoothing factor, in thousandths: the weight of the newest
    /// region's recovery count. 1000 means "no smoothing".
    pub ewma_alpha_milli: u32,
    /// Recovery-rate EWMA (recoveries/region, in thousandths) at or above
    /// which a healthy pair becomes [`HealthState::Suspect`]. 0 disables
    /// EWMA-based suspicion (the EWMA is still tracked for reporting).
    pub suspect_threshold_milli: u32,
    /// Consecutive recovery-free regions a suspect pair must serve (with
    /// the EWMA back under threshold) before clearing to healthy.
    pub suspect_clear_regions: u32,
    /// Base cool-down, in completed regions, a demoted pair serves before
    /// a probationary re-promotion. 0 disables re-promotion: demotion is
    /// final, exactly the PR 1 behaviour.
    pub cooldown_regions: u32,
    /// Cap on the left-shift applied to `cooldown_regions` after repeated
    /// probation failures (exponential cool-down growth).
    pub max_cooldown_shift: u32,
    /// Probation attempts before a pair is demoted permanently.
    pub max_repromotions: u32,
    /// Consecutive recovery-free regions on probation before the pair is
    /// restored to healthy (and its retry budget refreshed).
    pub probation_regions: u32,
    /// A-Only fraction of the pair's A-issued fills (in thousandths)
    /// above which the pair becomes suspect — the prefetch-pollution
    /// signal. 0 disables it (prefetch pollution is nonzero even in
    /// perfectly healthy runs, so this defaults off and is an opt-in for
    /// workloads with known-good timeliness).
    pub pollution_threshold_milli: u32,
    /// Minimum A-issued fills in a boundary-to-boundary window before the
    /// pollution signal is consulted (small windows are noise).
    pub pollution_min_fills: u64,
    /// Team-level circuit breaker configuration.
    pub breaker: BreakerConfig,
}

impl HealthPolicy {
    /// The inert preset: controller observes (EWMA, residency) but never
    /// changes behaviour — no suspicion, no re-promotion, no breaker.
    /// This reproduces the PR 1 one-way-demotion runtime exactly.
    pub fn paper() -> Self {
        HealthPolicy {
            ewma_alpha_milli: 300,
            suspect_threshold_milli: 0,
            suspect_clear_regions: 2,
            cooldown_regions: 0,
            max_cooldown_shift: 4,
            max_repromotions: 3,
            probation_regions: 2,
            pollution_threshold_milli: 0,
            pollution_min_fills: 32,
            breaker: BreakerConfig::disabled(),
        }
    }

    /// The hardened preset: suspicion at half a recovery per region
    /// (EWMA), two-region cool-down with exponential growth, three
    /// probation attempts, and the default team breaker.
    pub fn adaptive() -> Self {
        HealthPolicy {
            suspect_threshold_milli: 500,
            cooldown_regions: 2,
            breaker: BreakerConfig::default(),
            ..Self::paper()
        }
    }

    /// Builder: override the demotion cool-down (0 disables
    /// re-promotion).
    pub fn with_cooldown(mut self, regions: u32) -> Self {
        self.cooldown_regions = regions;
        self
    }

    /// Builder: override the probation attempt budget.
    pub fn with_max_repromotions(mut self, n: u32) -> Self {
        self.max_repromotions = n;
        self
    }

    /// Builder: override the clean-region requirement of probation.
    pub fn with_probation_regions(mut self, regions: u32) -> Self {
        self.probation_regions = regions;
        self
    }

    /// Builder: override the EWMA suspicion threshold (0 disables).
    pub fn with_suspect_threshold(mut self, milli: u32) -> Self {
        self.suspect_threshold_milli = milli;
        self
    }

    /// Builder: enable the prefetch-pollution signal at the given A-Only
    /// fraction threshold (in thousandths).
    pub fn with_pollution_threshold(mut self, milli: u32) -> Self {
        self.pollution_threshold_milli = milli;
        self
    }

    /// Builder: override the team breaker configuration.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// True when re-promotion can ever happen.
    pub fn repromotion_enabled(&self) -> bool {
        self.cooldown_regions > 0
    }

    /// Cool-down a pair serves after its `failures`-th failed probation
    /// (0 = the initial demotion): exponential growth, capped.
    pub fn cooldown_after(&self, failures: u32) -> u32 {
        let shift = failures.min(self.max_cooldown_shift);
        self.cooldown_regions.saturating_mul(1u32 << shift.min(31))
    }
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// Window of classifier tallies used for the pollution signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillWindow {
    /// A-issued fills classified A-Only (pollution) so far, cumulative.
    pub polluted: u64,
    /// All A-issued fills so far, cumulative.
    pub total: u64,
}

/// What the engine must do after a boundary tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundaryOutcome {
    /// The transition this tick performed, for tracing.
    pub transition: Option<(HealthState, HealthState)>,
    /// True when the pair must be re-promoted from degraded-single back
    /// into slipstream (probation) before the upcoming region dispatches.
    pub repromote: bool,
}

/// Per-pair health-controller state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairHealth {
    /// Current state.
    pub state: HealthState,
    /// EWMA of recoveries per region, in thousandths.
    pub ewma_milli: u64,
    /// Probationary re-promotions granted so far.
    pub repromotions: u64,
    /// True once probation attempts are exhausted: the pair stays
    /// demoted for good.
    pub permanent: bool,
    /// Completed regions spent in each state (indexed by
    /// [`HealthState::ordinal`]).
    pub residency: [u64; 4],
    /// Cumulative recovery count at the last boundary tick.
    last_recoveries: u64,
    /// Consecutive recovery-free regions in the current state.
    clean_regions: u32,
    /// Regions left before a demoted pair goes on probation.
    cooldown_left: u32,
    /// Classifier tallies at the last boundary tick.
    last_fills: FillWindow,
}

impl Default for PairHealth {
    fn default() -> Self {
        PairHealth {
            state: HealthState::Healthy,
            ewma_milli: 0,
            repromotions: 0,
            permanent: false,
            residency: [0; 4],
            last_recoveries: 0,
            clean_regions: 0,
            cooldown_left: 0,
            last_fills: FillWindow::default(),
        }
    }
}

impl PairHealth {
    /// Fresh healthy state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The engine demoted the pair mid-region (retry budget exhausted, or
    /// any recovery while on probation). Returns the state the pair left,
    /// for tracing.
    pub fn on_demote(&mut self, pol: &HealthPolicy) -> HealthState {
        let from = self.state;
        if from == HealthState::Probation {
            // A failed trial: the *next* cool-down doubles.
            self.permanent = self.repromotions >= u64::from(pol.max_repromotions);
        }
        self.state = HealthState::Demoted;
        self.cooldown_left = pol.cooldown_after(self.repromotions.min(u64::from(u32::MAX)) as u32);
        self.clean_regions = 0;
        from
    }

    /// Advance the state machine at a region boundary. `recoveries` is
    /// the pair's cumulative recovery count and `fills` the cumulative
    /// classifier tallies; the tick works on the deltas since the last
    /// boundary (one completed region).
    pub fn on_region_boundary(
        &mut self,
        pol: &HealthPolicy,
        recoveries: u64,
        fills: FillWindow,
    ) -> BoundaryOutcome {
        let delta = recoveries.saturating_sub(self.last_recoveries);
        self.last_recoveries = recoveries;
        let window = FillWindow {
            polluted: fills.polluted.saturating_sub(self.last_fills.polluted),
            total: fills.total.saturating_sub(self.last_fills.total),
        };
        self.last_fills = fills;
        self.residency[self.state.ordinal() as usize] += 1;

        // EWMA over every region, whatever the state: reports want the
        // full history and probation decisions want fresh input.
        let alpha = u64::from(pol.ewma_alpha_milli.min(1000));
        self.ewma_milli = (alpha * delta * 1000 + (1000 - alpha) * self.ewma_milli) / 1000;

        let mut out = BoundaryOutcome::default();
        let from = self.state;
        match self.state {
            HealthState::Healthy => {
                if self.suspicious(pol, &window) {
                    self.state = HealthState::Suspect;
                    self.clean_regions = 0;
                }
            }
            HealthState::Suspect => {
                if delta == 0 {
                    self.clean_regions += 1;
                    if self.clean_regions >= pol.suspect_clear_regions
                        && !self.suspicious(pol, &window)
                    {
                        self.state = HealthState::Healthy;
                        self.clean_regions = 0;
                    }
                } else {
                    self.clean_regions = 0;
                }
            }
            HealthState::Demoted => {
                if pol.repromotion_enabled() && !self.permanent {
                    self.cooldown_left = self.cooldown_left.saturating_sub(1);
                    if self.cooldown_left == 0 {
                        self.state = HealthState::Probation;
                        self.repromotions += 1;
                        self.clean_regions = 0;
                        out.repromote = true;
                    }
                }
            }
            HealthState::Probation => {
                if delta == 0 {
                    self.clean_regions += 1;
                    if self.clean_regions >= pol.probation_regions {
                        self.state = HealthState::Healthy;
                        self.clean_regions = 0;
                    }
                }
                // A recovery on probation re-demotes immediately in the
                // engine (via on_demote), never here.
            }
        }
        if self.state != from {
            out.transition = Some((from, self.state));
        }
        out
    }

    fn suspicious(&self, pol: &HealthPolicy, window: &FillWindow) -> bool {
        let by_ewma = pol.suspect_threshold_milli > 0
            && self.ewma_milli >= u64::from(pol.suspect_threshold_milli);
        let by_pollution = pol.pollution_threshold_milli > 0
            && window.total >= pol.pollution_min_fills
            && window.polluted * 1000 >= u64::from(pol.pollution_threshold_milli) * window.total;
        by_ewma || by_pollution
    }

    /// True for states the team breaker counts against its threshold
    /// (probation is the recovery path and deliberately excluded, so
    /// healing pairs cannot hold the breaker open).
    pub fn counts_as_unhealthy(&self) -> bool {
        matches!(self.state, HealthState::Suspect | HealthState::Demoted)
    }

    /// Serialize the full controller state (the policy is part of the run
    /// options and rebuilt on restore).
    pub fn snapshot(&self, w: &mut snap::Writer) {
        w.u8(self.state.ordinal() as u8);
        w.u64(self.ewma_milli);
        w.u64(self.repromotions);
        w.bool(self.permanent);
        for &r in &self.residency {
            w.u64(r);
        }
        w.u64(self.last_recoveries);
        w.u32(self.clean_regions);
        w.u32(self.cooldown_left);
        w.u64(self.last_fills.polluted);
        w.u64(self.last_fills.total);
    }

    /// Restore controller state written by [`PairHealth::snapshot`].
    pub fn restore(r: &mut snap::Reader) -> Result<Self, snap::SnapError> {
        let state = match r.u8()? {
            0 => HealthState::Healthy,
            1 => HealthState::Suspect,
            2 => HealthState::Demoted,
            3 => HealthState::Probation,
            _ => {
                return Err(snap::SnapError::Corrupt {
                    what: "HealthState",
                })
            }
        };
        let ewma_milli = r.u64()?;
        let repromotions = r.u64()?;
        let permanent = r.bool()?;
        let mut residency = [0u64; 4];
        for slot in &mut residency {
            *slot = r.u64()?;
        }
        Ok(PairHealth {
            state,
            ewma_milli,
            repromotions,
            permanent,
            residency,
            last_recoveries: r.u64()?,
            clean_regions: r.u32()?,
            cooldown_left: r.u32()?,
            last_fills: FillWindow {
                polluted: r.u64()?,
                total: r.u64()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(h: &mut PairHealth, pol: &HealthPolicy, recoveries: u64) -> BoundaryOutcome {
        h.on_region_boundary(pol, recoveries, FillWindow::default())
    }

    #[test]
    fn paper_policy_is_inert() {
        let pol = HealthPolicy::paper();
        assert!(!pol.repromotion_enabled());
        assert!(!pol.breaker.enabled());
        let mut h = PairHealth::new();
        // Storm of recoveries: EWMA climbs but the state never moves.
        let mut total = 0;
        for _ in 0..20 {
            total += 5;
            let out = tick(&mut h, &pol, total);
            assert_eq!(out, BoundaryOutcome::default());
        }
        assert_eq!(h.state, HealthState::Healthy);
        assert!(h.ewma_milli > 0, "EWMA still observed for reporting");
        // Demotion sticks forever.
        assert_eq!(h.on_demote(&pol), HealthState::Healthy);
        for _ in 0..50 {
            let out = tick(&mut h, &pol, total);
            assert!(!out.repromote);
        }
        assert_eq!(h.state, HealthState::Demoted);
    }

    #[test]
    fn ewma_suspicion_and_clearance() {
        let pol = HealthPolicy::adaptive();
        let mut h = PairHealth::new();
        // alpha 0.3: one region with 2 recoveries -> EWMA 600 >= 500.
        let out = tick(&mut h, &pol, 2);
        assert_eq!(
            out.transition,
            Some((HealthState::Healthy, HealthState::Suspect))
        );
        // Clean regions decay the EWMA (600 -> 420 -> 294) and clear the
        // suspicion after suspect_clear_regions of quiet.
        assert_eq!(tick(&mut h, &pol, 2).transition, None);
        let out = tick(&mut h, &pol, 2);
        assert_eq!(
            out.transition,
            Some((HealthState::Suspect, HealthState::Healthy))
        );
        assert_eq!(h.residency[HealthState::Suspect.ordinal() as usize], 2);
    }

    #[test]
    fn recovery_during_suspicion_resets_the_clean_count() {
        let pol = HealthPolicy::adaptive();
        let mut h = PairHealth::new();
        tick(&mut h, &pol, 2); // -> Suspect
        tick(&mut h, &pol, 2); // clean 1
        tick(&mut h, &pol, 3); // dirty: clean count resets, EWMA re-climbs
        assert_eq!(h.state, HealthState::Suspect);
        tick(&mut h, &pol, 3); // clean 1
        tick(&mut h, &pol, 3); // clean 2, but EWMA may still be high
        while h.state == HealthState::Suspect {
            tick(&mut h, &pol, 3);
        }
        assert_eq!(h.state, HealthState::Healthy);
    }

    #[test]
    fn demote_probation_repromote_cycle() {
        let pol = HealthPolicy::adaptive(); // cooldown 2
        let mut h = PairHealth::new();
        assert_eq!(h.on_demote(&pol), HealthState::Healthy);
        assert_eq!(h.state, HealthState::Demoted);
        // Two regions of cool-down, then probation with a repromote cmd.
        assert!(!tick(&mut h, &pol, 0).repromote);
        let out = tick(&mut h, &pol, 0);
        assert!(out.repromote);
        assert_eq!(
            out.transition,
            Some((HealthState::Demoted, HealthState::Probation))
        );
        assert_eq!(h.repromotions, 1);
        // Two clean regions restore healthy.
        assert!(tick(&mut h, &pol, 0).transition.is_none());
        let out = tick(&mut h, &pol, 0);
        assert_eq!(
            out.transition,
            Some((HealthState::Probation, HealthState::Healthy))
        );
        assert!(!h.permanent);
    }

    #[test]
    fn failed_probation_doubles_cooldown_until_permanent() {
        let pol = HealthPolicy::adaptive().with_max_repromotions(2);
        let mut h = PairHealth::new();
        h.on_demote(&pol);
        let mut recs = 0;
        let serve_cooldown = |h: &mut PairHealth, recs: u64, expect: u32| {
            for i in 0..expect {
                let out = tick(h, &pol, recs);
                assert_eq!(
                    out.repromote,
                    i + 1 == expect,
                    "probation only after {expect} regions (at {i})"
                );
            }
        };
        // First demotion: base cool-down of 2 regions.
        serve_cooldown(&mut h, recs, 2);
        // Fail probation: a recovery mid-region -> engine re-demotes.
        recs += 1;
        assert_eq!(h.on_demote(&pol), HealthState::Probation);
        assert!(!h.permanent);
        // Second cool-down doubles to 4.
        serve_cooldown(&mut h, recs, 4);
        assert_eq!(h.repromotions, 2);
        // Fail again: attempts (2) == max_repromotions -> permanent.
        recs += 1;
        h.on_demote(&pol);
        assert!(h.permanent);
        for _ in 0..100 {
            assert!(!tick(&mut h, &pol, recs).repromote);
        }
        assert_eq!(h.state, HealthState::Demoted);
    }

    #[test]
    fn cooldown_growth_caps_at_the_shift_limit() {
        let pol = HealthPolicy::adaptive().with_cooldown(3);
        assert_eq!(pol.cooldown_after(0), 3);
        assert_eq!(pol.cooldown_after(1), 6);
        assert_eq!(pol.cooldown_after(4), 48);
        assert_eq!(pol.cooldown_after(5), 48, "capped at max_cooldown_shift");
        assert_eq!(pol.cooldown_after(u32::MAX), 48);
    }

    #[test]
    fn pollution_signal_trips_suspicion_when_enabled() {
        let pol = HealthPolicy::adaptive()
            .with_suspect_threshold(0)
            .with_pollution_threshold(800);
        let mut h = PairHealth::new();
        // Window below min fills: ignored.
        let out = h.on_region_boundary(
            &pol,
            0,
            FillWindow {
                polluted: 10,
                total: 10,
            },
        );
        assert_eq!(out.transition, None);
        // Big polluted window: 90% A-Only >= 80% threshold.
        let out = h.on_region_boundary(
            &pol,
            0,
            FillWindow {
                polluted: 100,
                total: 110,
            },
        );
        assert_eq!(
            out.transition,
            Some((HealthState::Healthy, HealthState::Suspect))
        );
        // Timely windows clear it again.
        let mut fills = FillWindow {
            polluted: 100,
            total: 110,
        };
        loop {
            fills.total += 100;
            let out = h.on_region_boundary(&pol, 0, fills);
            if out.transition == Some((HealthState::Suspect, HealthState::Healthy)) {
                break;
            }
        }
    }

    #[test]
    fn unhealthy_counting_excludes_probation() {
        let pol = HealthPolicy::adaptive();
        let mut h = PairHealth::new();
        assert!(!h.counts_as_unhealthy());
        h.on_demote(&pol);
        assert!(h.counts_as_unhealthy());
        tick(&mut h, &pol, 0);
        tick(&mut h, &pol, 0);
        assert_eq!(h.state, HealthState::Probation);
        assert!(!h.counts_as_unhealthy(), "probation is the healing path");
    }

    #[test]
    fn residency_accounts_every_completed_region() {
        let pol = HealthPolicy::adaptive();
        let mut h = PairHealth::new();
        for _ in 0..3 {
            tick(&mut h, &pol, 0);
        }
        h.on_demote(&pol);
        for _ in 0..2 {
            tick(&mut h, &pol, 0);
        }
        let total: u64 = h.residency.iter().sum();
        assert_eq!(total, 5);
        assert_eq!(h.residency[HealthState::Healthy.ordinal() as usize], 3);
        assert_eq!(h.residency[HealthState::Demoted.ordinal() as usize], 2);
    }
}
