//! "Back half" of the compiler: lower a validated [`omp_ir::Program`] into
//! the flat, address-resolved form the execution engine interprets.
//!
//! Lowering performs what the paper's modified Omni compiler does before
//! emitting runtime calls:
//!
//! * lay out **shared arrays** in the contiguous shared segment and
//!   **private arrays** at per-thread offsets in each processor's private
//!   segment (Section 3.1's "shared space is not interleaved with private
//!   space" requirement);
//! * resolve `critical` names to runtime lock ids;
//! * flatten the node tree into an arena so interpreter frames are plain
//!   indices.

use dsm_sim::{Addr, AddressMap, ArraySpan};
use omp_ir::expr::{Expr, VarId};
use omp_ir::node::{ArrayId, Node, Program, Reduction, ScheduleSpec, SlipstreamClause};
use omp_ir::validate::{validate, ValidationError};
use std::collections::HashMap;

/// Index of a flattened node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// Resolved placement of an array: its diagnostic name plus the
/// [`ArraySpan`] placement shared with the static analyzer (`Deref`
/// exposes the span fields directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Diagnostic name.
    pub name: String,
    /// Placement in the simulated address space.
    pub span: ArraySpan,
}

impl std::ops::Deref for ArrayLayout {
    type Target = ArraySpan;

    fn deref(&self) -> &ArraySpan {
        &self.span
    }
}

/// Flattened IR node (children are [`NodeId`]s).
#[derive(Debug, Clone, PartialEq)]
pub enum FNode {
    /// Ordered children.
    Seq(Vec<NodeId>),
    /// Busy cycles.
    Compute(Expr),
    /// Demand load.
    Load {
        /// Source array.
        array: ArrayId,
        /// Index expression.
        index: Expr,
    },
    /// Demand store.
    Store {
        /// Target array.
        array: ArrayId,
        /// Index expression.
        index: Expr,
    },
    /// Sequential loop.
    For {
        /// Induction variable.
        var: VarId,
        /// Start expression.
        begin: Expr,
        /// End expression.
        end: Expr,
        /// Positive step.
        step: u64,
        /// Body node.
        body: NodeId,
    },
    /// Parallel region.
    Parallel {
        /// Body node.
        body: NodeId,
        /// Region-scoped slipstream clause.
        slipstream: Option<SlipstreamClause>,
    },
    /// Serial-part global slipstream setting.
    SlipstreamSet(SlipstreamClause),
    /// Worksharing loop.
    ParFor {
        /// Schedule clause.
        sched: Option<ScheduleSpec>,
        /// Induction variable.
        var: VarId,
        /// Start expression.
        begin: Expr,
        /// End expression.
        end: Expr,
        /// Body node.
        body: NodeId,
        /// Reduction clause.
        reduction: Option<Reduction>,
        /// Suppress the implicit end barrier.
        nowait: bool,
    },
    /// Explicit barrier.
    Barrier,
    /// `single` construct.
    Single(NodeId),
    /// `master` construct.
    Master(NodeId),
    /// Critical section with its resolved lock id.
    Critical {
        /// Runtime lock index.
        lock: usize,
        /// Protected body.
        body: NodeId,
    },
    /// Atomic update.
    Atomic {
        /// Target array.
        array: ArrayId,
        /// Index expression.
        index: Expr,
    },
    /// `sections` construct.
    Sections(Vec<NodeId>),
    /// `flush` directive.
    Flush,
    /// I/O operation.
    Io {
        /// Input (true) or output.
        input: bool,
        /// Transfer size in bytes.
        bytes: u64,
    },
}

/// Dense per-node interpreter dispatch data — the flat instruction form
/// of the program. One entry per [`FNode`] (same index space), with leaf
/// operands resolved at compile time: constant expressions are folded
/// (including host-table lookups with constant indices) and constant
/// array indices become fixed byte addresses, so the interpreter's hot
/// loop never walks an `FNode` or an expression tree for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Ordered children are `CompiledProgram::kids[first..first + len]`.
    Seq {
        /// First child index into `kids`.
        first: u32,
        /// Child count.
        len: u32,
    },
    /// Busy cycles, folded and already clamped to be non-negative.
    ComputeConst(u64),
    /// Busy cycles from `CompiledProgram::exprs[idx]`.
    ComputeDyn(u32),
    /// Load from a shared array at a fixed absolute address.
    LoadShared(Addr),
    /// Load from a private array at a fixed offset from the accessing
    /// CPU's private base.
    LoadPrivate(Addr),
    /// Load with a runtime index expression.
    LoadDyn {
        /// Source array.
        array: ArrayId,
        /// Index into `CompiledProgram::exprs`.
        index: u32,
    },
    /// Store to a shared array at a fixed absolute address.
    StoreShared(Addr),
    /// Store to a private array at a fixed offset from the accessing
    /// CPU's private base.
    StorePrivate(Addr),
    /// Store with a runtime index expression.
    StoreDyn {
        /// Target array.
        array: ArrayId,
        /// Index into `CompiledProgram::exprs`.
        index: u32,
    },
    /// Control constructs and rare leaves: dispatch on the `FNode`.
    Slow,
}

/// A lowered, address-resolved program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Program name.
    pub name: String,
    /// Node arena.
    pub nodes: Vec<FNode>,
    /// Entry node (the serial body).
    pub root: NodeId,
    /// Array placements, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayLayout>,
    /// Host-side index tables.
    pub tables: Vec<Vec<i64>>,
    /// Private variable slots per thread.
    pub num_vars: u32,
    /// Number of distinct critical locks.
    pub num_critical_locks: usize,
    /// First shared address free for runtime objects (after user arrays).
    pub runtime_base: Addr,
    /// Flat dispatch table parallel to `nodes`.
    pub ops: Vec<Op>,
    /// Flattened `Seq` child lists referenced by [`Op::Seq`].
    pub kids: Vec<NodeId>,
    /// Interned runtime expressions referenced by the `*Dyn` ops.
    pub exprs: Vec<Expr>,
}

impl CompiledProgram {
    /// The flattened node at `id`.
    pub fn node(&self, id: NodeId) -> &FNode {
        &self.nodes[id.0 as usize]
    }

    /// Byte address of `array[index]` for the thread on `cpu` (private
    /// arrays replicate per processor).
    pub fn element_addr(
        &self,
        map: &AddressMap,
        cpu: dsm_sim::CpuId,
        array: ArrayId,
        index: i64,
    ) -> Addr {
        self.arrays[array.0 as usize]
            .span
            .element_addr(map, cpu, index)
    }
}

/// Fold an expression to a constant when it references no runtime state
/// (variables, thread id, team size). Mirrors `Expr::eval`'s total
/// semantics exactly: wrapping arithmetic, division/mod by zero yield 0,
/// table lookups clamp and empty tables yield 0.
fn fold_expr(e: &Expr, tables: &[Vec<i64>]) -> Option<i64> {
    use omp_ir::expr::BinOp;
    match e {
        Expr::Const(v) => Some(*v),
        Expr::Var(_) | Expr::ThreadId | Expr::NumThreads => None,
        Expr::Bin(op, a, b) => {
            let x = fold_expr(a, tables)?;
            let y = fold_expr(b, tables)?;
            Some(match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Mod => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            })
        }
        Expr::Table(t, idx) => {
            let i = fold_expr(idx, tables)?;
            let tab = tables.get(t.0 as usize)?;
            if tab.is_empty() {
                return Some(0);
            }
            Some(tab[i.clamp(0, tab.len() as i64 - 1) as usize])
        }
    }
}

/// Byte offset of `array[index]` with the engine's clamping semantics
/// (absolute for shared arrays, private-base-relative otherwise).
fn const_element_offset(arrays: &[ArrayLayout], array: ArrayId, index: i64) -> Addr {
    arrays[array.0 as usize].span.element_offset(index)
}

/// Build the flat dispatch table: one [`Op`] per node, with constant
/// operands folded and interned dynamic expressions for the rest.
fn build_ops(
    nodes: &[FNode],
    arrays: &[ArrayLayout],
    tables: &[Vec<i64>],
) -> (Vec<Op>, Vec<NodeId>, Vec<Expr>) {
    let mut ops = Vec::with_capacity(nodes.len());
    let mut kids: Vec<NodeId> = Vec::new();
    let mut exprs: Vec<Expr> = Vec::new();
    let intern = |e: &Expr, exprs: &mut Vec<Expr>| -> u32 {
        exprs.push(e.clone());
        (exprs.len() - 1) as u32
    };
    for n in nodes {
        let op = match n {
            FNode::Seq(v) => {
                let first = kids.len() as u32;
                kids.extend_from_slice(v);
                Op::Seq {
                    first,
                    len: v.len() as u32,
                }
            }
            FNode::Compute(e) => match fold_expr(e, tables) {
                Some(c) => Op::ComputeConst(c.max(0) as u64),
                None => Op::ComputeDyn(intern(e, &mut exprs)),
            },
            FNode::Load { array, index } => match fold_expr(index, tables) {
                // Zero-length arrays cannot be clamped at compile time;
                // leave them on the runtime path (which panics the same
                // way it always did if such a node ever executes).
                Some(i) if arrays[array.0 as usize].len > 0 => {
                    let off = const_element_offset(arrays, *array, i);
                    if arrays[array.0 as usize].shared {
                        Op::LoadShared(off)
                    } else {
                        Op::LoadPrivate(off)
                    }
                }
                _ => Op::LoadDyn {
                    array: *array,
                    index: intern(index, &mut exprs),
                },
            },
            FNode::Store { array, index } => match fold_expr(index, tables) {
                Some(i) if arrays[array.0 as usize].len > 0 => {
                    let off = const_element_offset(arrays, *array, i);
                    if arrays[array.0 as usize].shared {
                        Op::StoreShared(off)
                    } else {
                        Op::StorePrivate(off)
                    }
                }
                _ => Op::StoreDyn {
                    array: *array,
                    index: intern(index, &mut exprs),
                },
            },
            _ => Op::Slow,
        };
        ops.push(op);
    }
    (ops, kids, exprs)
}

struct Lowerer {
    nodes: Vec<FNode>,
    locks: HashMap<String, usize>,
}

impl Lowerer {
    fn push(&mut self, n: FNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(n);
        id
    }

    fn lower(&mut self, n: &Node) -> NodeId {
        match n {
            Node::Seq(v) => {
                let kids: Vec<NodeId> = v.iter().map(|c| self.lower(c)).collect();
                self.push(FNode::Seq(kids))
            }
            Node::Compute(e) => self.push(FNode::Compute(e.clone())),
            Node::Load { array, index } => self.push(FNode::Load {
                array: *array,
                index: index.clone(),
            }),
            Node::Store { array, index } => self.push(FNode::Store {
                array: *array,
                index: index.clone(),
            }),
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                let b = self.lower(body);
                self.push(FNode::For {
                    var: *var,
                    begin: begin.clone(),
                    end: end.clone(),
                    step: *step,
                    body: b,
                })
            }
            Node::Parallel { body, slipstream } => {
                let b = self.lower(body);
                self.push(FNode::Parallel {
                    body: b,
                    slipstream: *slipstream,
                })
            }
            Node::SlipstreamSet(c) => self.push(FNode::SlipstreamSet(*c)),
            Node::ParFor {
                sched,
                var,
                begin,
                end,
                body,
                reduction,
                nowait,
            } => {
                let b = self.lower(body);
                self.push(FNode::ParFor {
                    sched: *sched,
                    var: *var,
                    begin: begin.clone(),
                    end: end.clone(),
                    body: b,
                    reduction: reduction.clone(),
                    nowait: *nowait,
                })
            }
            Node::Barrier => self.push(FNode::Barrier),
            Node::Single(body) => {
                let b = self.lower(body);
                self.push(FNode::Single(b))
            }
            Node::Master(body) => {
                let b = self.lower(body);
                self.push(FNode::Master(b))
            }
            Node::Critical { name, body } => {
                let next = self.locks.len();
                let lock = *self.locks.entry(name.clone()).or_insert(next);
                let b = self.lower(body);
                self.push(FNode::Critical { lock, body: b })
            }
            Node::Atomic { array, index } => self.push(FNode::Atomic {
                array: *array,
                index: index.clone(),
            }),
            Node::Sections(secs) => {
                let kids: Vec<NodeId> = secs.iter().map(|c| self.lower(c)).collect();
                self.push(FNode::Sections(kids))
            }
            Node::Flush => self.push(FNode::Flush),
            Node::Io { input, bytes } => self.push(FNode::Io {
                input: *input,
                bytes: *bytes,
            }),
        }
    }
}

/// Lower a program for a machine. Fails if the program is invalid.
pub fn compile(program: &Program, map: &AddressMap) -> Result<CompiledProgram, ValidationError> {
    validate(program)?;

    // Shared arrays after a small guard page; private arrays at per-thread
    // offsets starting past a guard page of each private segment. The
    // placement policy lives in `dsm_sim::address::layout_spans` so the
    // static analyzer computes identical line footprints.
    let (spans, runtime_base) = map.layout_spans(
        program
            .arrays
            .iter()
            .map(|d| (d.shared, d.len, d.elem_bytes)),
    );
    let arrays: Vec<ArrayLayout> = program
        .arrays
        .iter()
        .zip(spans)
        .map(|(d, span)| ArrayLayout {
            name: d.name.clone(),
            span,
        })
        .collect();

    let mut lw = Lowerer {
        nodes: Vec::with_capacity(program.node_count()),
        locks: HashMap::new(),
    };
    let root = lw.lower(&program.body);
    let (ops, kids, exprs) = build_ops(&lw.nodes, &arrays, &program.tables);
    Ok(CompiledProgram {
        name: program.name.clone(),
        nodes: lw.nodes,
        root,
        arrays,
        tables: program.tables.clone(),
        num_vars: program.num_vars,
        num_critical_locks: lw.locks.len(),
        runtime_base,
        ops,
        kids,
        exprs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::{CpuId, MachineConfig};
    use omp_ir::builder::ProgramBuilder;
    use omp_ir::expr::Expr;

    fn map() -> AddressMap {
        AddressMap::new(&MachineConfig::paper())
    }

    #[test]
    fn arrays_are_line_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new("layout");
        let a = b.shared_array("a", 100, 8); // 800B -> 832 aligned
        let c = b.shared_array("c", 7, 4);
        let p = b.private_array("p", 33, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 10, |body| {
                body.load(a, Expr::v(i));
                body.load(c, Expr::v(i));
                body.store(p, Expr::v(i));
            });
        });
        let cp = compile(&b.build(), &map()).unwrap();
        let la = &cp.arrays[0];
        let lc = &cp.arrays[1];
        assert_eq!(la.base % 64, 0);
        assert!(
            lc.base >= la.base + 100 * 8 + 64,
            "guard line between arrays"
        );
        assert!(cp.runtime_base > lc.base + 7 * 4);
        assert!(!cp.arrays[2].shared);
    }

    #[test]
    fn private_arrays_replicate_per_cpu() {
        let mut b = ProgramBuilder::new("priv");
        let p = b.private_array("p", 16, 8);
        b.parallel(|r| r.store(p, 3));
        let cp = compile(&b.build(), &map()).unwrap();
        let m = map();
        let a0 = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 3);
        let a1 = cp.element_addr(&m, CpuId(1), omp_ir::node::ArrayId(0), 3);
        assert_ne!(a0, a1);
        assert_eq!(m.space_of(a0), dsm_sim::Space::Private);
        assert_eq!(m.private_owner(a0), CpuId(0));
        assert_eq!(m.private_owner(a1), CpuId(1));
    }

    #[test]
    fn shared_element_addresses_are_common() {
        let mut b = ProgramBuilder::new("shared");
        let s = b.shared_array("s", 16, 8);
        b.parallel(|r| r.store(s, 5));
        let cp = compile(&b.build(), &map()).unwrap();
        let m = map();
        let a0 = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 5);
        let a9 = cp.element_addr(&m, CpuId(9), omp_ir::node::ArrayId(0), 5);
        assert_eq!(a0, a9);
        assert_eq!(m.space_of(a0), dsm_sim::Space::Shared);
    }

    #[test]
    fn out_of_range_indices_clamp() {
        let mut b = ProgramBuilder::new("clamp");
        let s = b.shared_array("s", 4, 8);
        b.parallel(|r| r.load(s, 0));
        let cp = compile(&b.build(), &map()).unwrap();
        let m = map();
        let hi = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 99);
        let last = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 3);
        assert_eq!(hi, last);
        let lo = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), -5);
        let first = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 0);
        assert_eq!(lo, first);
    }

    #[test]
    fn critical_names_share_locks() {
        let mut b = ProgramBuilder::new("locks");
        let s = b.shared_array("s", 1, 8);
        b.parallel(|r| {
            r.critical("a", |c| c.store(s, 0));
            r.critical("b", |c| c.store(s, 0));
            r.critical("a", |c| c.store(s, 0));
        });
        let cp = compile(&b.build(), &map()).unwrap();
        assert_eq!(cp.num_critical_locks, 2);
        let locks: Vec<usize> = cp
            .nodes
            .iter()
            .filter_map(|n| match n {
                FNode::Critical { lock, .. } => Some(*lock),
                _ => None,
            })
            .collect();
        assert_eq!(locks.len(), 3);
        assert_eq!(locks[0], locks[2]);
        assert_ne!(locks[0], locks[1]);
    }

    #[test]
    fn invalid_programs_fail_compilation() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.serial(|s| s.par_for(None, i, 0, 10, |body| body.compute(1)));
        assert!(compile(&b.build(), &map()).is_err());
    }

    #[test]
    fn op_table_folds_constant_leaves() {
        let mut b = ProgramBuilder::new("fold");
        let s = b.shared_array("s", 8, 8);
        let p = b.private_array("p", 8, 8);
        let t = b.table(vec![5, 7, 9]);
        b.parallel(|r| {
            r.compute(Expr::c(3) * 4);
            r.compute(Expr::c(-5)); // negative cycles clamp to zero
            r.compute(Expr::c(1).index_into(t));
            r.load(s, 2);
            r.store(p, 1);
        });
        let cp = compile(&b.build(), &map()).unwrap();
        let sb = cp.arrays[0].base;
        let pb = cp.arrays[1].base;
        assert!(cp.ops.contains(&Op::ComputeConst(12)));
        assert!(cp.ops.contains(&Op::ComputeConst(0)));
        assert!(cp.ops.contains(&Op::ComputeConst(7)), "table lookup folded");
        assert!(cp.ops.contains(&Op::LoadShared(sb + 2 * 8)));
        assert!(cp.ops.contains(&Op::StorePrivate(pb + 8)));
        assert!(cp.exprs.is_empty(), "everything folded, nothing interned");
    }

    #[test]
    fn op_table_fold_is_total_like_eval() {
        use omp_ir::expr::BinOp;
        let mut b = ProgramBuilder::new("total");
        let s = b.shared_array("s", 8, 8);
        b.parallel(|r| {
            // Division by zero folds to 0, exactly as Expr::eval does.
            r.compute(Expr::Bin(
                BinOp::Div,
                Box::new(Expr::c(5)),
                Box::new(Expr::c(0)),
            ));
            // Out-of-range const table index clamps, like eval.
            r.load(s, 99);
        });
        let cp = compile(&b.build(), &map()).unwrap();
        let sb = cp.arrays[0].base;
        assert!(cp.ops.contains(&Op::ComputeConst(0)));
        assert!(
            cp.ops.contains(&Op::LoadShared(sb + 7 * 8)),
            "index clamps to last element"
        );
    }

    #[test]
    fn op_table_keeps_runtime_operands_dynamic() {
        let mut b = ProgramBuilder::new("dyn");
        let s = b.shared_array("s", 8, 8);
        let i = b.var();
        b.parallel(|r| {
            r.compute(Expr::ThreadId);
            r.par_for(None, i, 0, 8, |body| {
                body.load(s, Expr::v(i));
            });
        });
        let cp = compile(&b.build(), &map()).unwrap();
        let dyn_loads: Vec<&Op> = cp
            .ops
            .iter()
            .filter(|o| matches!(o, Op::LoadDyn { .. }))
            .collect();
        assert_eq!(dyn_loads.len(), 1);
        if let Op::LoadDyn { array, index } = dyn_loads[0] {
            assert_eq!(array.0, 0);
            assert_eq!(cp.exprs[*index as usize], Expr::v(i));
        }
        assert!(
            cp.ops.iter().any(|o| matches!(o, Op::ComputeDyn(_))),
            "thread-id compute stays dynamic"
        );
        // Control constructs dispatch through the slow path.
        assert!(cp.ops.iter().any(|o| matches!(o, Op::Slow)));
    }

    #[test]
    fn seq_ops_reference_flattened_children() {
        let mut b = ProgramBuilder::new("seq");
        b.serial(|s| {
            s.compute(1);
            s.compute(2);
            s.compute(3);
        });
        let cp = compile(&b.build(), &map()).unwrap();
        // The serial block lowers to a Seq node; its op must span the
        // same children the FNode lists, in order.
        let (node_kids, op) = cp
            .nodes
            .iter()
            .zip(&cp.ops)
            .find_map(|(n, o)| match (n, o) {
                (FNode::Seq(v), Op::Seq { .. }) if v.len() == 3 => Some((v.clone(), *o)),
                _ => None,
            })
            .expect("three-child Seq present");
        if let Op::Seq { first, len } = op {
            assert_eq!(len, 3);
            let span = &cp.kids[first as usize..(first + len) as usize];
            assert_eq!(span, &node_kids[..]);
            for (kid, cycles) in span.iter().zip([1u64, 2, 3]) {
                assert_eq!(cp.ops[kid.0 as usize], Op::ComputeConst(cycles));
            }
        }
    }

    #[test]
    fn zero_length_arrays_stay_on_the_runtime_path() {
        // ProgramBuilder rejects empty arrays outright, but build_ops
        // guards anyway: clamping into a zero-length array has no
        // compile-time answer, so such a load must stay dynamic.
        let arrays = vec![ArrayLayout {
            name: "e".into(),
            span: ArraySpan {
                shared: true,
                base: 64,
                elem_bytes: 8,
                len: 0,
            },
        }];
        let nodes = vec![FNode::Load {
            array: omp_ir::node::ArrayId(0),
            index: Expr::c(0),
        }];
        let (ops, _, exprs) = build_ops(&nodes, &arrays, &[]);
        assert!(matches!(ops[0], Op::LoadDyn { .. }));
        assert_eq!(exprs, vec![Expr::c(0)]);
    }
}
