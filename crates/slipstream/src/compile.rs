//! "Back half" of the compiler: lower a validated [`omp_ir::Program`] into
//! the flat, address-resolved form the execution engine interprets.
//!
//! Lowering performs what the paper's modified Omni compiler does before
//! emitting runtime calls:
//!
//! * lay out **shared arrays** in the contiguous shared segment and
//!   **private arrays** at per-thread offsets in each processor's private
//!   segment (Section 3.1's "shared space is not interleaved with private
//!   space" requirement);
//! * resolve `critical` names to runtime lock ids;
//! * flatten the node tree into an arena so interpreter frames are plain
//!   indices.

use dsm_sim::{Addr, AddressMap};
use omp_ir::expr::{Expr, VarId};
use omp_ir::node::{
    ArrayId, Node, Program, Reduction, ScheduleSpec, SlipstreamClause,
};
use omp_ir::validate::{validate, ValidationError};
use std::collections::HashMap;

/// Index of a flattened node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// Resolved placement of an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Diagnostic name.
    pub name: String,
    /// Shared (one copy in the global segment) or private (one copy per
    /// thread at this offset within each private segment).
    pub shared: bool,
    /// Absolute base address for shared arrays; offset from each CPU's
    /// private base for private arrays.
    pub base: Addr,
    /// Bytes per element.
    pub elem_bytes: u64,
    /// Element count.
    pub len: u64,
}

/// Flattened IR node (children are [`NodeId`]s).
#[derive(Debug, Clone, PartialEq)]
pub enum FNode {
    /// Ordered children.
    Seq(Vec<NodeId>),
    /// Busy cycles.
    Compute(Expr),
    /// Demand load.
    Load {
        /// Source array.
        array: ArrayId,
        /// Index expression.
        index: Expr,
    },
    /// Demand store.
    Store {
        /// Target array.
        array: ArrayId,
        /// Index expression.
        index: Expr,
    },
    /// Sequential loop.
    For {
        /// Induction variable.
        var: VarId,
        /// Start expression.
        begin: Expr,
        /// End expression.
        end: Expr,
        /// Positive step.
        step: u64,
        /// Body node.
        body: NodeId,
    },
    /// Parallel region.
    Parallel {
        /// Body node.
        body: NodeId,
        /// Region-scoped slipstream clause.
        slipstream: Option<SlipstreamClause>,
    },
    /// Serial-part global slipstream setting.
    SlipstreamSet(SlipstreamClause),
    /// Worksharing loop.
    ParFor {
        /// Schedule clause.
        sched: Option<ScheduleSpec>,
        /// Induction variable.
        var: VarId,
        /// Start expression.
        begin: Expr,
        /// End expression.
        end: Expr,
        /// Body node.
        body: NodeId,
        /// Reduction clause.
        reduction: Option<Reduction>,
        /// Suppress the implicit end barrier.
        nowait: bool,
    },
    /// Explicit barrier.
    Barrier,
    /// `single` construct.
    Single(NodeId),
    /// `master` construct.
    Master(NodeId),
    /// Critical section with its resolved lock id.
    Critical {
        /// Runtime lock index.
        lock: usize,
        /// Protected body.
        body: NodeId,
    },
    /// Atomic update.
    Atomic {
        /// Target array.
        array: ArrayId,
        /// Index expression.
        index: Expr,
    },
    /// `sections` construct.
    Sections(Vec<NodeId>),
    /// `flush` directive.
    Flush,
    /// I/O operation.
    Io {
        /// Input (true) or output.
        input: bool,
        /// Transfer size in bytes.
        bytes: u64,
    },
}

/// A lowered, address-resolved program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Program name.
    pub name: String,
    /// Node arena.
    pub nodes: Vec<FNode>,
    /// Entry node (the serial body).
    pub root: NodeId,
    /// Array placements, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayLayout>,
    /// Host-side index tables.
    pub tables: Vec<Vec<i64>>,
    /// Private variable slots per thread.
    pub num_vars: u32,
    /// Number of distinct critical locks.
    pub num_critical_locks: usize,
    /// First shared address free for runtime objects (after user arrays).
    pub runtime_base: Addr,
}

impl CompiledProgram {
    /// The flattened node at `id`.
    pub fn node(&self, id: NodeId) -> &FNode {
        &self.nodes[id.0 as usize]
    }

    /// Byte address of `array[index]` for the thread on `cpu` (private
    /// arrays replicate per processor).
    pub fn element_addr(&self, map: &AddressMap, cpu: dsm_sim::CpuId, array: ArrayId, index: i64) -> Addr {
        let a = &self.arrays[array.0 as usize];
        // Clamp out-of-range indices into the array rather than wandering
        // into a neighbouring array's lines: timing kernels may probe edges.
        let idx = index.clamp(0, a.len as i64 - 1) as u64;
        let off = a.base + idx * a.elem_bytes;
        if a.shared {
            off
        } else {
            map.private_base(cpu) + off
        }
    }
}

struct Lowerer {
    nodes: Vec<FNode>,
    locks: HashMap<String, usize>,
}

impl Lowerer {
    fn push(&mut self, n: FNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(n);
        id
    }

    fn lower(&mut self, n: &Node) -> NodeId {
        match n {
            Node::Seq(v) => {
                let kids: Vec<NodeId> = v.iter().map(|c| self.lower(c)).collect();
                self.push(FNode::Seq(kids))
            }
            Node::Compute(e) => self.push(FNode::Compute(e.clone())),
            Node::Load { array, index } => self.push(FNode::Load {
                array: *array,
                index: index.clone(),
            }),
            Node::Store { array, index } => self.push(FNode::Store {
                array: *array,
                index: index.clone(),
            }),
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                let b = self.lower(body);
                self.push(FNode::For {
                    var: *var,
                    begin: begin.clone(),
                    end: end.clone(),
                    step: *step,
                    body: b,
                })
            }
            Node::Parallel { body, slipstream } => {
                let b = self.lower(body);
                self.push(FNode::Parallel {
                    body: b,
                    slipstream: *slipstream,
                })
            }
            Node::SlipstreamSet(c) => self.push(FNode::SlipstreamSet(*c)),
            Node::ParFor {
                sched,
                var,
                begin,
                end,
                body,
                reduction,
                nowait,
            } => {
                let b = self.lower(body);
                self.push(FNode::ParFor {
                    sched: *sched,
                    var: *var,
                    begin: begin.clone(),
                    end: end.clone(),
                    body: b,
                    reduction: reduction.clone(),
                    nowait: *nowait,
                })
            }
            Node::Barrier => self.push(FNode::Barrier),
            Node::Single(body) => {
                let b = self.lower(body);
                self.push(FNode::Single(b))
            }
            Node::Master(body) => {
                let b = self.lower(body);
                self.push(FNode::Master(b))
            }
            Node::Critical { name, body } => {
                let next = self.locks.len();
                let lock = *self.locks.entry(name.clone()).or_insert(next);
                let b = self.lower(body);
                self.push(FNode::Critical { lock, body: b })
            }
            Node::Atomic { array, index } => self.push(FNode::Atomic {
                array: *array,
                index: index.clone(),
            }),
            Node::Sections(secs) => {
                let kids: Vec<NodeId> = secs.iter().map(|c| self.lower(c)).collect();
                self.push(FNode::Sections(kids))
            }
            Node::Flush => self.push(FNode::Flush),
            Node::Io { input, bytes } => self.push(FNode::Io {
                input: *input,
                bytes: *bytes,
            }),
        }
    }
}

/// Align up to a cache-line boundary.
fn line_align(a: Addr, line: u64) -> Addr {
    a.div_ceil(line) * line
}

/// Lower a program for a machine. Fails if the program is invalid.
pub fn compile(program: &Program, map: &AddressMap) -> Result<CompiledProgram, ValidationError> {
    validate(program)?;
    let line = map.line_bytes();

    // Shared arrays after a small guard page; private arrays at per-thread
    // offsets starting past a guard page of each private segment.
    let mut shared_cursor: Addr = map.shared_base() + line;
    let mut private_cursor: Addr = line;
    let mut arrays = Vec::with_capacity(program.arrays.len());
    for decl in &program.arrays {
        let bytes = line_align(decl.len * decl.elem_bytes, line);
        let base = if decl.shared {
            let b = shared_cursor;
            shared_cursor += bytes + line; // one guard line between arrays
            b
        } else {
            let b = private_cursor;
            private_cursor += bytes + line;
            b
        };
        arrays.push(ArrayLayout {
            name: decl.name.clone(),
            shared: decl.shared,
            base,
            elem_bytes: decl.elem_bytes,
            len: decl.len,
        });
    }

    let mut lw = Lowerer {
        nodes: Vec::with_capacity(program.node_count()),
        locks: HashMap::new(),
    };
    let root = lw.lower(&program.body);
    Ok(CompiledProgram {
        name: program.name.clone(),
        nodes: lw.nodes,
        root,
        arrays,
        tables: program.tables.clone(),
        num_vars: program.num_vars,
        num_critical_locks: lw.locks.len(),
        runtime_base: line_align(shared_cursor + line, line),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::{CpuId, MachineConfig};
    use omp_ir::builder::ProgramBuilder;
    use omp_ir::expr::Expr;

    fn map() -> AddressMap {
        AddressMap::new(&MachineConfig::paper())
    }

    #[test]
    fn arrays_are_line_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new("layout");
        let a = b.shared_array("a", 100, 8); // 800B -> 832 aligned
        let c = b.shared_array("c", 7, 4);
        let p = b.private_array("p", 33, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 10, |body| {
                body.load(a, Expr::v(i));
                body.load(c, Expr::v(i));
                body.store(p, Expr::v(i));
            });
        });
        let cp = compile(&b.build(), &map()).unwrap();
        let la = &cp.arrays[0];
        let lc = &cp.arrays[1];
        assert_eq!(la.base % 64, 0);
        assert!(lc.base >= la.base + 100 * 8 + 64, "guard line between arrays");
        assert!(cp.runtime_base > lc.base + 7 * 4);
        assert!(!cp.arrays[2].shared);
    }

    #[test]
    fn private_arrays_replicate_per_cpu() {
        let mut b = ProgramBuilder::new("priv");
        let p = b.private_array("p", 16, 8);
        b.parallel(|r| r.store(p, 3));
        let cp = compile(&b.build(), &map()).unwrap();
        let m = map();
        let a0 = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 3);
        let a1 = cp.element_addr(&m, CpuId(1), omp_ir::node::ArrayId(0), 3);
        assert_ne!(a0, a1);
        assert_eq!(m.space_of(a0), dsm_sim::Space::Private);
        assert_eq!(m.private_owner(a0), CpuId(0));
        assert_eq!(m.private_owner(a1), CpuId(1));
    }

    #[test]
    fn shared_element_addresses_are_common() {
        let mut b = ProgramBuilder::new("shared");
        let s = b.shared_array("s", 16, 8);
        b.parallel(|r| r.store(s, 5));
        let cp = compile(&b.build(), &map()).unwrap();
        let m = map();
        let a0 = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 5);
        let a9 = cp.element_addr(&m, CpuId(9), omp_ir::node::ArrayId(0), 5);
        assert_eq!(a0, a9);
        assert_eq!(m.space_of(a0), dsm_sim::Space::Shared);
    }

    #[test]
    fn out_of_range_indices_clamp() {
        let mut b = ProgramBuilder::new("clamp");
        let s = b.shared_array("s", 4, 8);
        b.parallel(|r| r.load(s, 0));
        let cp = compile(&b.build(), &map()).unwrap();
        let m = map();
        let hi = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 99);
        let last = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 3);
        assert_eq!(hi, last);
        let lo = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), -5);
        let first = cp.element_addr(&m, CpuId(0), omp_ir::node::ArrayId(0), 0);
        assert_eq!(lo, first);
    }

    #[test]
    fn critical_names_share_locks() {
        let mut b = ProgramBuilder::new("locks");
        let s = b.shared_array("s", 1, 8);
        b.parallel(|r| {
            r.critical("a", |c| c.store(s, 0));
            r.critical("b", |c| c.store(s, 0));
            r.critical("a", |c| c.store(s, 0));
        });
        let cp = compile(&b.build(), &map()).unwrap();
        assert_eq!(cp.num_critical_locks, 2);
        let locks: Vec<usize> = cp
            .nodes
            .iter()
            .filter_map(|n| match n {
                FNode::Critical { lock, .. } => Some(*lock),
                _ => None,
            })
            .collect();
        assert_eq!(locks.len(), 3);
        assert_eq!(locks[0], locks[2]);
        assert_ne!(locks[0], locks[1]);
    }

    #[test]
    fn invalid_programs_fail_compilation() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.serial(|s| s.par_for(None, i, 0, 10, |body| body.compute(1)));
        assert!(compile(&b.build(), &map()).is_err());
    }
}
