//! High-level entry point: compile once, run under any mode.
//!
//! A [`RunSummary`] contains everything the paper's figures plot: the
//! execution time, the per-bucket time breakdown (Figures 2 and 4), and
//! the shared-request classification (Figures 3 and 5).

use crate::compile::{compile, CompiledProgram};
use crate::exec::{Engine, EngineConfig, EngineMutation, RunResult};
use crate::faults::FaultPlan;
use crate::gate::{analyze_config, gate_program};
use crate::health::HealthPolicy;
use crate::policy::{AStreamPolicy, RecoveryPolicy};
use dsm_sim::{AddressMap, Cycle, FillCounts, MachineConfig, TimeBreakdown, TimeClass};
use omp_analyze::{AnalysisReport, GateMode};
use omp_ir::directive::EnvSlipstream;
use omp_ir::node::{Program, SlipSyncType};
use omp_rt::mode::{ExecMode, SlipSync};
use omp_rt::RuntimeEnv;
use sim_trace::TraceConfig;

/// Options for one run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The machine to simulate (defaults to Table 1).
    pub machine: MachineConfig,
    /// Processor usage mode.
    pub mode: ExecMode,
    /// A–R synchronization override. When `Some`, it is injected through
    /// the `OMP_SLIPSTREAM` environment variable — the same runtime path a
    /// user of the paper's system would use to switch synchronization
    /// without recompiling.
    pub sync: Option<SlipSync>,
    /// Base runtime environment (schedule default, thread cap, ...).
    pub env: RuntimeEnv,
    /// A-stream construct policy (ablations flip rows).
    pub policy: AStreamPolicy,
    /// Divergence fault injection: `(tid, epoch)` points. Legacy shorthand
    /// for a [`FaultPlan`] of wander events; both are honoured.
    pub inject_divergence: Vec<(u64, u64)>,
    /// General fault-injection plan (see [`crate::faults`]).
    pub faults: FaultPlan,
    /// Divergence detection / recovery knobs (watchdog, retry budget).
    pub recovery: RecoveryPolicy,
    /// Adaptive pair-health controller and team circuit breaker
    /// ([`HealthPolicy::paper`] keeps both inert).
    pub health: HealthPolicy,
    /// Optional OS-interference model (timer ticks / daemons).
    pub os_noise: Option<crate::exec::OsNoise>,
    /// Structured event tracing (observation-only; off by default).
    pub trace: TraceConfig,
    /// Slipstream-safety gate. The default, [`GateMode::Warn`], runs the
    /// `omp-analyze` static analyzer before the simulation and attaches
    /// the report to the summary without affecting the run (stats stay
    /// bit-identical to an ungated run). [`GateMode::Deny`] refuses to
    /// run programs with deny-severity findings; [`GateMode::Allow`]
    /// skips analysis entirely.
    pub gate: GateMode,
    /// Simulated-cycle budget override. `None` keeps the engine's default
    /// (effectively unbounded for kernels of sane size); `Some(n)` makes
    /// the run fail with a `max_cycles` error once `n` cycles pass —
    /// the hang watchdog budgeted differential runs rely on.
    pub max_cycles: Option<Cycle>,
    /// Seeded engine-mutation class (fuzzer self-check only). The
    /// default, [`EngineMutation::None`], is the production engine.
    pub mutation: EngineMutation,
    /// PDES worker threads for the simulation engine. `1` (the default)
    /// is the serial fast path; `> 1` enables the per-CMP time-domain
    /// scheduler. Results are bit-identical at every worker count. See
    /// [`workers_from_env`] for the `SIM_WORKERS` resolution used by
    /// harnesses.
    pub workers: usize,
    /// Override the PDES lookahead horizon in cycles (`None` derives it
    /// from the machine's minimum remote-hop latency; `Some(0)` forces
    /// lockstep window admission). Only meaningful with `workers > 1`.
    pub lookahead: Option<Cycle>,
    /// Memoized phase replay (default off). When on, replay-loop licenses
    /// from the `omp-analyze` certification pass are compiled into a
    /// [`crate::MemoPlan`] and the engine bulk-jumps converged iterations
    /// of certified loops. Results are bit-identical to a memo-off run;
    /// the engine arms the plan only for deterministic single/double runs
    /// (no faults, mutation, noise, or tracing) and falls back to full
    /// execution whenever the runtime guard contradicts a certificate.
    pub memo: bool,
}

impl RunOptions {
    /// Paper-default options for a mode.
    pub fn new(mode: ExecMode) -> Self {
        RunOptions {
            machine: MachineConfig::paper(),
            mode,
            sync: None,
            env: RuntimeEnv::default(),
            policy: AStreamPolicy::paper(),
            inject_divergence: Vec::new(),
            faults: FaultPlan::none(),
            recovery: RecoveryPolicy::paper(),
            health: HealthPolicy::paper(),
            os_noise: None,
            trace: TraceConfig::OFF,
            gate: GateMode::Warn,
            max_cycles: None,
            mutation: EngineMutation::None,
            workers: 1,
            lookahead: None,
            memo: false,
        }
    }

    /// Set the PDES worker count (`1` = serial fast path; floored at 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Cap the run at `cycles` simulated cycles (hang watchdog for
    /// budgeted differential runs).
    pub fn with_cycle_budget(mut self, cycles: Cycle) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Select a seeded engine mutation (fuzzer self-check).
    pub fn with_mutation(mut self, mutation: EngineMutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Set the safety-gate mode.
    pub fn with_gate(mut self, gate: GateMode) -> Self {
        self.gate = gate;
        self
    }

    /// Replace the pair-health / breaker policy.
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Enable structured event tracing for the run.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Install a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Set the A–R synchronization (slipstream mode).
    pub fn with_sync(mut self, sync: SlipSync) -> Self {
        self.sync = Some(sync);
        self
    }

    /// Replace the machine model.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Replace the runtime environment.
    pub fn with_env(mut self, env: RuntimeEnv) -> Self {
        self.env = env;
        self
    }

    /// Replace the A-stream policy.
    pub fn with_policy(mut self, policy: AStreamPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable the OS-interference model.
    pub fn with_os_noise(mut self, noise: crate::exec::OsNoise) -> Self {
        self.os_noise = Some(noise);
        self
    }

    /// Enable memoized phase replay (certified-loop bulk jumps).
    pub fn with_memo(mut self, on: bool) -> Self {
        self.memo = on;
        self
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Program name.
    pub name: String,
    /// Mode label (`single`, `double`, `slip-G0`, ...).
    pub label: String,
    /// Execution time in cycles (master completion).
    pub exec_cycles: Cycle,
    /// Time breakdown over R/solo streams.
    pub r_breakdown: TimeBreakdown,
    /// Time breakdown over A-streams (empty outside slipstream mode).
    pub a_breakdown: TimeBreakdown,
    /// Shared-fill classification.
    pub fills: FillCounts,
    /// Raw result for deeper inspection.
    pub raw: RunResult,
    /// Static-analysis report from the pre-run safety gate (`None` when
    /// the gate is [`GateMode::Allow`] or the program was run through
    /// [`run_compiled`] directly).
    pub analysis: Option<AnalysisReport>,
}

impl RunSummary {
    /// Speedup of this run relative to a baseline execution time.
    pub fn speedup_vs(&self, baseline_cycles: Cycle) -> f64 {
        baseline_cycles as f64 / self.exec_cycles as f64
    }

    /// Fraction of R/solo time in a bucket.
    pub fn r_fraction(&self, class: TimeClass) -> f64 {
        self.r_breakdown.fraction(class)
    }
}

/// Resolve the `SIM_WORKERS` environment variable into an engine worker
/// count for a harness already running `pool_workers` simulations
/// concurrently. Unset or unparsable means `1` (the serial fast path);
/// `0` means "use all available parallelism". The result is clamped so
/// `pool_workers × engine workers` never oversubscribes the host
/// ([`dsm_sim::clamp_workers`]); the clamp respects `BENCH_WORKERS`
/// when the caller passes a bound derived from it.
pub fn workers_from_env(pool_workers: usize) -> usize {
    let requested: usize = std::env::var("SIM_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1);
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    dsm_sim::clamp_workers(
        dsm_sim::resolve_workers(requested, available),
        pool_workers,
        available,
    )
}

fn mode_label(mode: ExecMode, sync: Option<SlipSync>) -> String {
    match (mode, sync) {
        (ExecMode::Slipstream, Some(s)) => format!("slip-{}", s.label()),
        (ExecMode::Slipstream, None) => "slip-G0".to_string(),
        (m, _) => m.label().to_string(),
    }
}

/// Compile and run `program` under `opts`.
///
/// ```
/// use slipstream::runner::{run_program, RunOptions};
/// use slipstream::{ExecMode, MachineConfig, SlipSync};
/// use omp_ir::{Expr, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new("doc");
/// let a = b.shared_array("a", 256, 8);
/// let i = b.var();
/// b.parallel(move |r| {
///     r.par_for(None, i, 0, 256, move |body| {
///         body.load(a, Expr::v(i));
///     });
/// });
/// let program = b.build();
///
/// let mut machine = MachineConfig::paper();
/// machine.num_cmps = 4;
/// let opts = RunOptions::new(ExecMode::Slipstream)
///     .with_machine(machine)
///     .with_sync(SlipSync::L1);
/// let summary = run_program(&program, &opts).unwrap();
/// assert_eq!(summary.raw.user_r.loads, 256);
/// assert_eq!(summary.raw.user_a.loads, 256); // the A-streams prefetched it
/// ```
pub fn run_program(program: &Program, opts: &RunOptions) -> Result<RunSummary, String> {
    let acfg = analyze_config(&opts.machine, &opts.policy, opts.sync);
    let analysis = gate_program(program, opts.gate, &acfg)?;
    let map = AddressMap::new(&opts.machine);
    let cp = compile(program, &map).map_err(|e| e.to_string())?;
    // Memoized replay needs the certification pass's replay-loop licenses;
    // when the gate skipped analysis ([`GateMode::Allow`]), run it here
    // just for the plan.
    let memo = if opts.memo {
        match &analysis {
            Some(report) => crate::memo::build_plan(report, &cp),
            None => crate::memo::build_plan(&omp_analyze::analyze(program, &acfg), &cp),
        }
    } else {
        crate::MemoPlan::default()
    };
    let label = mode_label(opts.mode, opts.sync);
    let mut cfg = engine_config(opts);
    cfg.memo = memo;
    let raw = Engine::new(&cp, cfg).run()?;
    let mut summary = summarize(program.name.clone(), label, raw);
    summary.analysis = analysis;
    Ok(summary)
}

/// Build the engine configuration `run_compiled` and the checkpoint
/// entry points share for a set of run options.
fn engine_config(opts: &RunOptions) -> EngineConfig {
    let mut cfg = EngineConfig::new(opts.machine.clone(), opts.mode);
    cfg.env = opts.env.clone();
    cfg.policy = opts.policy;
    cfg.inject_divergence = opts.inject_divergence.clone();
    cfg.faults = opts.faults.clone();
    cfg.recovery = opts.recovery;
    cfg.health = opts.health;
    cfg.os_noise = opts.os_noise;
    cfg.trace = opts.trace;
    if let Some(mc) = opts.max_cycles {
        cfg.max_cycles = mc;
    }
    cfg.mutation = opts.mutation;
    cfg.workers = opts.workers.max(1);
    cfg.lookahead = opts.lookahead;
    if let Some(sync) = opts.sync {
        // Route the synchronization choice through OMP_SLIPSTREAM, as the
        // paper's runtime does ("we changed the synchronization method as
        // well as activating/deactivating slipstream at runtime while
        // using the same binary").
        cfg.env.slipstream = Some(EnvSlipstream::Enabled {
            sync: if sync.global {
                SlipSyncType::GlobalSync
            } else {
                SlipSyncType::LocalSync
            },
            tokens: sync.tokens,
        });
    }
    cfg
}

fn summarize(name: String, label: String, raw: RunResult) -> RunSummary {
    RunSummary {
        name,
        label,
        exec_cycles: raw.exec_cycles,
        r_breakdown: raw.r_breakdown,
        a_breakdown: raw.a_breakdown,
        fills: raw.fill_counts,
        raw,
        analysis: None,
    }
}

/// Run an already-compiled program (reuse across modes).
pub fn run_compiled(
    cp: &CompiledProgram,
    name: String,
    opts: &RunOptions,
) -> Result<RunSummary, String> {
    let label = mode_label(opts.mode, opts.sync);
    let engine = Engine::new(cp, engine_config(opts));
    let raw = engine.run()?;
    Ok(summarize(name, label, raw))
}

/// A serialized engine checkpoint (see [`checkpoint_compiled`]).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The versioned, checksummed snapshot payload.
    pub bytes: Vec<u8>,
    /// True when the program finished before the checkpoint cycle — the
    /// snapshot then captures the completed run and resuming returns its
    /// results immediately.
    pub finished: bool,
}

/// Run `cp` until the next pending event would land at or after
/// `at_cycle`, then capture an engine snapshot at that boundary. A sweep
/// of configurations sharing a warmup prefix can fork each member from
/// the snapshot via [`resume_compiled`] instead of re-simulating the
/// prefix; the continuation is bit-identical to an uninterrupted run.
pub fn checkpoint_compiled(
    cp: &CompiledProgram,
    opts: &RunOptions,
    at_cycle: Cycle,
) -> Result<Checkpoint, String> {
    let mut engine = Engine::new(cp, engine_config(opts));
    let finished = engine.run_until(at_cycle)?;
    Ok(Checkpoint {
        bytes: engine.snapshot(),
        finished,
    })
}

/// Restore an engine from `snapshot` under `opts` and run it to
/// completion. The options must describe the same simulation the
/// snapshot was taken from, except for the PDES worker count/lookahead,
/// the cycle/event budgets, and the fault plan — the latter only while
/// no fault of the snapshotting plan had fired before the checkpoint
/// (so a fault-free warmup forks into differently-faulted
/// continuations).
pub fn resume_compiled(
    cp: &CompiledProgram,
    name: String,
    opts: &RunOptions,
    snapshot: &[u8],
) -> Result<RunSummary, String> {
    let label = mode_label(opts.mode, opts.sync);
    let mut engine = Engine::restore(cp, engine_config(opts), snapshot)?;
    engine.run_until(Cycle::MAX)?;
    let raw = engine.finish_run()?;
    Ok(summarize(name, label, raw))
}

/// [`checkpoint_compiled`] for an uncompiled program: gate, compile,
/// run to the checkpoint boundary, snapshot.
pub fn checkpoint_program(
    program: &Program,
    opts: &RunOptions,
    at_cycle: Cycle,
) -> Result<Checkpoint, String> {
    let acfg = analyze_config(&opts.machine, &opts.policy, opts.sync);
    gate_program(program, opts.gate, &acfg)?;
    let map = AddressMap::new(&opts.machine);
    let cp = compile(program, &map).map_err(|e| e.to_string())?;
    checkpoint_compiled(&cp, opts, at_cycle)
}

/// [`resume_compiled`] for an uncompiled program. The program must be
/// the one the snapshot was taken from (the snapshot's identity check
/// enforces this).
pub fn resume_program(
    program: &Program,
    opts: &RunOptions,
    snapshot: &[u8],
) -> Result<RunSummary, String> {
    let map = AddressMap::new(&opts.machine);
    let cp = compile(program, &map).map_err(|e| e.to_string())?;
    resume_compiled(&cp, program.name.clone(), opts, snapshot)
}

/// Run the three-way comparison of the paper's Figure 2 for one program:
/// single, double, slipstream-L1, slipstream-G0. Returns the summaries in
/// that order.
pub fn run_figure2_modes(
    program: &Program,
    machine: &MachineConfig,
    env: &RuntimeEnv,
) -> Result<Vec<RunSummary>, String> {
    let map = AddressMap::new(machine);
    let cp = compile(program, &map).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (mode, sync) in [
        (ExecMode::Single, None),
        (ExecMode::Double, None),
        (ExecMode::Slipstream, Some(SlipSync::L1)),
        (ExecMode::Slipstream, Some(SlipSync::G0)),
    ] {
        let mut o = RunOptions::new(mode)
            .with_machine(machine.clone())
            .with_env(env.clone());
        o.sync = sync;
        out.push(run_compiled(&cp, program.name.clone(), &o)?);
    }
    Ok(out)
}
