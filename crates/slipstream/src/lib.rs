//! # slipstream — slipstream execution mode for OpenMP-style programs
//!
//! The primary contribution of *Extending OpenMP to Support Slipstream
//! Execution Mode* (Ibrahim & Byrd, IPPS 2003), rebuilt in Rust on a
//! simulated CMP-based DSM multiprocessor:
//!
//! * each CMP node runs one OpenMP task redundantly as an **R-stream**
//!   (real) and an **A-stream** (advanced, reduced) sharing the node's L2;
//! * the A-stream skips synchronization and shared-memory stores
//!   (converting eligible stores into read-exclusive prefetches), runs
//!   ahead, and warms the shared L2 for its R-stream;
//! * a **token semaphore** bounds the A-stream's lead (local vs global
//!   insertion, configurable initial tokens — Figure 1 of the paper) and
//!   doubles as the divergence detector;
//! * **dynamic scheduling** adds a pair handshake: the R-stream publishes
//!   each chunk grab, the A-stream mirrors it (Section 3.2.2);
//! * the `SLIPSTREAM` directive and `OMP_SLIPSTREAM` environment variable
//!   select behaviour per region at run time, with one binary serving
//!   single, double, and slipstream modes.
//!
//! The [`runner`] module is the public entry point: compile a program once
//! and run it under any mode/synchronization combination.

#![warn(missing_docs)]

pub mod compile;
pub mod exec;
pub mod faults;
pub mod gate;
pub mod health;
pub mod memo;
pub mod pairing;
pub mod policy;
pub mod report;
pub mod runner;

pub use compile::{compile, CompiledProgram};
pub use exec::{
    Engine, EngineConfig, EngineMutation, OsNoise, PdesDiag, RunResult, SNAPSHOT_VERSION,
};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite, PairLedger};
pub use health::{BoundaryOutcome, FillWindow, HealthPolicy, PairHealth};
pub use memo::{build_plan, MemoDiag, MemoLoop, MemoPlan};
pub use pairing::{Decision, PairState};
pub use policy::{AAction, AStreamPolicy, RecoveryPolicy};
pub use report::stats_fingerprint;
pub use runner::{
    checkpoint_compiled, checkpoint_program, resume_compiled, resume_program, run_program,
    workers_from_env, Checkpoint, RunOptions, RunSummary,
};

// Safety-gate vocabulary (the analyzer entry point itself stays at
// `omp_analyze::analyze` to avoid clashing with the trace analytics
// `analyze` re-exported below).
pub use omp_analyze::{AnalysisReport, Finding, GateMode, Hazard, Severity};

// Re-export the pieces users need to drive a simulation end-to-end.
pub use dsm_sim::{FillClass, FillCounts, MachineConfig, ReqKind, StreamRole, TimeClass};
pub use omp_ir::{Program, ProgramBuilder};
pub use omp_rt::{
    BreakerConfig, BreakerState, ExecMode, HealthState, PairMode, RuntimeEnv, SlipSync, TeamBreaker,
};
pub use sim_trace::{
    analyze, chrome_trace_json, validate_chrome_trace, TraceAnalytics, TraceConfig, TraceData,
    TraceEvent,
};
