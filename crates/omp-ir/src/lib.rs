//! # omp-ir — OpenMP-flavoured kernel IR
//!
//! The "compiler front half" of the slipstream-OpenMP reproduction: an IR
//! with a node for every OpenMP construct the paper's Section 3 discusses
//! (parallel, for with static/dynamic/guided schedules, barrier, single,
//! master, critical, atomic, sections, flush, reductions, I/O), a builder
//! API, a parser for textual directives including the paper's new
//! `SLIPSTREAM([type][, tokens])` extension and the `OMP_SLIPSTREAM`
//! environment variable, a validator, and a reference tracer used as a
//! semantic oracle by the execution-engine tests.
//!
//! Programs in this IR are *timing kernels*: loads and stores carry
//! array+index address expressions over private state only, which is
//! exactly the property slipstream execution relies on (paper Section 2.1).

#![warn(missing_docs)]

pub mod builder;
pub mod directive;
pub mod expr;
pub mod lower;
pub mod node;
pub mod path;
pub mod serialize;
pub mod trace;
pub mod validate;
pub mod wsloop;

pub use builder::{BlockBuilder, ProgramBuilder};
pub use directive::{
    parse_directive, parse_omp_slipstream_env, Directive, DirectiveError, EnvSlipstream,
};
pub use expr::{BinOp, Expr, SimpleCtx, TableId, VarId};
pub use lower::{Pragma, PragmaBlock};
pub use node::{
    ArrayDecl, ArrayId, Node, Program, Reduction, ReductionOp, ScheduleKind, ScheduleSpec,
    SlipSyncType, SlipstreamClause,
};
pub use path::{node_kind, NodePath, PathSeg};
pub use serialize::{parse_json, program_from_json, program_to_json, JsonValue, SerializeError};
pub use trace::{trace, OpCounts, TraceSummary};
pub use validate::{validate, Diagnostic, ValidationError};
pub use wsloop::Chunk;
