//! The kernel IR tree.
//!
//! A [`Program`] is what the "compiler" produces from directive-annotated
//! source: serial code executed by the master thread, containing
//! [`Node::Parallel`] regions that the runtime dispatches to the team.
//! Every OpenMP construct the paper discusses in Section 3.1 has a node;
//! the slipstream execution engine applies the per-construct A-stream
//! policy when interpreting them.
//!
//! The IR is a *timing* representation: loads and stores carry addresses
//! (array + index expression), compute nodes carry cycle counts, and no
//! data values flow — consistent with simulating on a timing model where
//! only the reference stream and control flow matter.

use crate::expr::{Expr, TableId, VarId};

/// A declared array (a contiguous region of simulated memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Diagnostic name.
    pub name: String,
    /// Shared arrays live in the global segment; private arrays are
    /// replicated per thread in each CPU's private segment.
    pub shared: bool,
    /// Number of elements.
    pub len: u64,
    /// Bytes per element.
    pub elem_bytes: u64,
}

/// Handle to a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub u32);

/// OpenMP worksharing schedule kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Blocked static assignment computed independently by each thread.
    Static,
    /// First-come-first-served chunks grabbed under a lock.
    Dynamic,
    /// Dynamic with geometrically decreasing chunk sizes.
    Guided,
    /// Affinity scheduling (the extension the paper cites as [16]):
    /// each thread first drains its own static block in chunks, then
    /// steals from the most-loaded thread. Recovers dynamic scheduling's
    /// load balancing without losing cache affinity on reused data.
    Affinity,
    /// Defer to the runtime (OMP_SCHEDULE-style environment control).
    Runtime,
}

/// A schedule clause: kind plus optional chunk size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// The schedule kind.
    pub kind: ScheduleKind,
    /// Chunk size; `None` uses the runtime default for the kind.
    pub chunk: Option<u64>,
}

impl ScheduleSpec {
    /// `schedule(static)`.
    pub fn static_default() -> Self {
        ScheduleSpec {
            kind: ScheduleKind::Static,
            chunk: None,
        }
    }

    /// `schedule(dynamic, chunk)`.
    pub fn dynamic(chunk: u64) -> Self {
        ScheduleSpec {
            kind: ScheduleKind::Dynamic,
            chunk: Some(chunk),
        }
    }

    /// `schedule(guided)`.
    pub fn guided() -> Self {
        ScheduleSpec {
            kind: ScheduleKind::Guided,
            chunk: None,
        }
    }

    /// `schedule(affinity, chunk)` — the extension of paper Section 3.2.2.
    pub fn affinity(chunk: u64) -> Self {
        ScheduleSpec {
            kind: ScheduleKind::Affinity,
            chunk: Some(chunk),
        }
    }
}

/// Reduction operators (only the access pattern matters to the simulator,
/// but the operator is kept for fidelity and reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionOp {
    /// `reduction(+: x)`
    Sum,
    /// `reduction(max: x)`
    Max,
    /// `reduction(min: x)`
    Min,
}

/// A reduction clause on a worksharing loop: each thread accumulates
/// privately during the loop, then combines into the shared target cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// The operator.
    pub op: ReductionOp,
    /// Shared array holding the reduction result.
    pub target: ArrayId,
    /// Element index of the result cell.
    pub index: Expr,
}

/// Synchronization type of the `SLIPSTREAM` directive (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlipSyncType {
    /// Token inserted when the R-stream *exits* a barrier (globally
    /// synchronized A-stream).
    GlobalSync,
    /// Token inserted when the R-stream *enters* a barrier (locally
    /// synchronized A-stream).
    LocalSync,
    /// Defer the choice to the OMP_SLIPSTREAM environment variable.
    RuntimeSync,
    /// Disable slipstream execution (environment-variable only).
    None,
}

/// A `!$OMP SLIPSTREAM([type][, tokens])` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlipstreamClause {
    /// Synchronization type; the paper's implementation defaults to global.
    pub sync: SlipSyncType,
    /// Initial token count (default 0).
    pub tokens: u64,
}

impl Default for SlipstreamClause {
    fn default() -> Self {
        SlipstreamClause {
            sync: SlipSyncType::GlobalSync,
            tokens: 0,
        }
    }
}

/// One node of the kernel IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Execute children in order.
    Seq(Vec<Node>),
    /// Busy-execute for the expression's value in cycles (clamped at 0).
    Compute(Expr),
    /// Demand load of `array[index]`.
    Load {
        /// Source array.
        array: ArrayId,
        /// Element index expression.
        index: Expr,
    },
    /// Demand store to `array[index]`.
    Store {
        /// Destination array.
        array: ArrayId,
        /// Element index expression.
        index: Expr,
    },
    /// Sequential counted loop: `for var in (begin..end).step_by(step)`.
    For {
        /// Induction variable.
        var: VarId,
        /// Inclusive start.
        begin: Expr,
        /// Exclusive end.
        end: Expr,
        /// Positive step.
        step: u64,
        /// Loop body.
        body: Box<Node>,
    },
    /// A parallel region dispatched to the team (serial context only).
    Parallel {
        /// Region body, executed by every team member.
        body: Box<Node>,
        /// Region-scoped `SLIPSTREAM` directive, overriding the global
        /// setting for this region only.
        slipstream: Option<SlipstreamClause>,
    },
    /// `SLIPSTREAM` directive in the serial part: sets the program-global
    /// default until overridden (paper Section 3.3).
    SlipstreamSet(SlipstreamClause),
    /// OpenMP `for` worksharing loop (parallel context only).
    ParFor {
        /// Schedule clause; `None` means the compiler default (static).
        sched: Option<ScheduleSpec>,
        /// Induction variable.
        var: VarId,
        /// Inclusive start.
        begin: Expr,
        /// Exclusive end.
        end: Expr,
        /// Loop body.
        body: Box<Node>,
        /// Reduction clause.
        reduction: Option<Reduction>,
        /// `nowait`: suppress the implicit barrier at loop end.
        nowait: bool,
    },
    /// Explicit barrier.
    Barrier,
    /// `single` construct: executed by the first thread to arrive.
    Single(Box<Node>),
    /// `master` construct: executed by thread 0 only.
    Master(Box<Node>),
    /// Named critical section.
    Critical {
        /// Lock name (sections with the same name share a lock).
        name: String,
        /// Protected body.
        body: Box<Node>,
    },
    /// `atomic` update of `array[index]`.
    Atomic {
        /// Target array.
        array: ArrayId,
        /// Element index expression.
        index: Expr,
    },
    /// `sections` construct: each child section runs once, assigned to
    /// threads.
    Sections(Vec<Node>),
    /// `flush` directive (void on hardware-coherent machines; the A-stream
    /// skips it).
    Flush,
    /// I/O operation; never executed by the A-stream. Inputs synchronize
    /// the pair through the syscall semaphore.
    Io {
        /// True for input (read) operations.
        input: bool,
        /// Transfer size in bytes (scales the charged latency).
        bytes: u64,
    },
}

impl Node {
    /// An empty sequence (no-op).
    pub fn nop() -> Node {
        Node::Seq(Vec::new())
    }

    /// True if any expression under this node (indices, bounds, compute
    /// amounts, reduction cells) reads private variable `v`. Induction
    /// variables of nested loops may shadow `v` at runtime, but the IR
    /// uses flat variable slots, so a nested writer of `v` makes the
    /// answer conservatively `true` as well — certification only asks
    /// "does the body's behavior depend on the enclosing loop counter".
    pub fn reads_var(&self, v: VarId) -> bool {
        match self {
            Node::Seq(items) | Node::Sections(items) => items.iter().any(|n| n.reads_var(v)),
            Node::Compute(e) => e.references_var(v),
            Node::Load { index, .. } | Node::Store { index, .. } | Node::Atomic { index, .. } => {
                index.references_var(v)
            }
            Node::For {
                var,
                begin,
                end,
                body,
                ..
            } => begin.references_var(v) || end.references_var(v) || *var == v || body.reads_var(v),
            Node::Parallel { body, .. } => body.reads_var(v),
            Node::ParFor {
                var,
                begin,
                end,
                body,
                reduction,
                ..
            } => {
                begin.references_var(v)
                    || end.references_var(v)
                    || *var == v
                    || reduction
                        .as_ref()
                        .is_some_and(|r| r.index.references_var(v))
                    || body.reads_var(v)
            }
            Node::Single(body) | Node::Master(body) | Node::Critical { body, .. } => {
                body.reads_var(v)
            }
            Node::SlipstreamSet(_) | Node::Barrier | Node::Flush | Node::Io { .. } => false,
        }
    }

    /// True if any I/O operation occurs under this node.
    pub fn contains_io(&self) -> bool {
        match self {
            Node::Io { .. } => true,
            Node::Seq(items) | Node::Sections(items) => items.iter().any(Node::contains_io),
            Node::For { body, .. }
            | Node::Parallel { body, .. }
            | Node::ParFor { body, .. }
            | Node::Single(body)
            | Node::Master(body)
            | Node::Critical { body, .. } => body.contains_io(),
            _ => false,
        }
    }

    /// Count of barrier-ending construct boundaries a single thread passes
    /// through when executing this node once at the top level of a parallel
    /// region: explicit barriers, non-`nowait` worksharing loops, and the
    /// exit barriers of `single`/`sections`. Nested serial loops multiply
    /// only when their trip count is statically known, so the result is a
    /// conservative lower bound.
    pub fn min_barrier_boundaries(&self) -> u64 {
        match self {
            Node::Barrier => 1,
            Node::ParFor { nowait, .. } => u64::from(!*nowait),
            Node::Single(_) | Node::Sections(_) => 1,
            Node::Seq(items) => items.iter().map(Node::min_barrier_boundaries).sum(),
            // A serial loop may execute zero times; callers that know the
            // trip count multiply the body's bound themselves.
            Node::For { .. } => 0,
            _ => 0,
        }
    }
}

/// A complete program: declarations plus the serial body.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Diagnostic name (benchmark name).
    pub name: String,
    /// Array declarations; `ArrayId(i)` indexes this list.
    pub arrays: Vec<ArrayDecl>,
    /// Host-side index tables; `TableId(i)` indexes this list.
    pub tables: Vec<Vec<i64>>,
    /// Number of private variable slots per thread.
    pub num_vars: u32,
    /// Serial body executed by the master, containing `Parallel` regions.
    pub body: Node,
}

impl Program {
    /// Look up an array declaration.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// Host table contents.
    pub fn table(&self, id: TableId) -> &[i64] {
        &self.tables[id.0 as usize]
    }

    /// Count nodes of the whole program (diagnostic).
    pub fn node_count(&self) -> usize {
        fn walk(n: &Node) -> usize {
            1 + match n {
                Node::Seq(v) | Node::Sections(v) => v.iter().map(walk).sum(),
                Node::For { body, .. }
                | Node::Parallel { body, .. }
                | Node::ParFor { body, .. }
                | Node::Single(body)
                | Node::Master(body)
                | Node::Critical { body, .. } => walk(body),
                _ => 0,
            }
        }
        walk(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_constructors() {
        assert_eq!(
            ScheduleSpec::dynamic(4),
            ScheduleSpec {
                kind: ScheduleKind::Dynamic,
                chunk: Some(4)
            }
        );
        assert_eq!(ScheduleSpec::static_default().kind, ScheduleKind::Static);
        assert_eq!(ScheduleSpec::guided().chunk, None);
    }

    #[test]
    fn slipstream_clause_default_is_global_zero() {
        let c = SlipstreamClause::default();
        assert_eq!(c.sync, SlipSyncType::GlobalSync);
        assert_eq!(c.tokens, 0);
    }

    #[test]
    fn node_count_walks_nesting() {
        let p = Program {
            name: "t".into(),
            arrays: vec![],
            tables: vec![],
            num_vars: 1,
            body: Node::Seq(vec![
                Node::Compute(Expr::c(1)),
                Node::Parallel {
                    body: Box::new(Node::ParFor {
                        sched: None,
                        var: VarId(0),
                        begin: Expr::c(0),
                        end: Expr::c(10),
                        body: Box::new(Node::Compute(Expr::c(1))),
                        reduction: None,
                        nowait: false,
                    }),
                    slipstream: None,
                },
            ]),
        };
        // Seq + Compute + Parallel + ParFor + Compute = 5
        assert_eq!(p.node_count(), 5);
    }
}
