//! Structured node paths into a [`Program`](crate::node::Program) tree.
//!
//! A [`NodePath`] names one syntactic occurrence of a construct, e.g.
//! `parallel[0]/for[2]/store[1]`: the parallel region that is statement 0
//! of the serial part, the sequential loop that is statement 2 of the
//! region body, the store that is statement 1 of the loop body. `Seq`
//! nodes are transparent — a segment's index is the statement position
//! within the enclosing block (or section list), so paths are stable
//! under the builder's block flattening and contain no iteration indices.
//!
//! Paths are shared currency between [`validate`](crate::validate)
//! diagnostics and the `omp-analyze` crate's findings, so a finding can
//! point at the exact construct that produced it.

use crate::node::Node;
use std::fmt;

/// One step of a [`NodePath`]: the construct kind plus its statement
/// position within the enclosing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathSeg {
    /// Construct kind (`"parallel"`, `"parfor"`, `"store"`, ...).
    pub kind: &'static str,
    /// Statement position within the enclosing block/section list.
    pub index: u32,
}

impl fmt::Display for PathSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

/// A path from the program root to one node occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NodePath(pub Vec<PathSeg>);

impl NodePath {
    /// The empty path (the program itself).
    pub fn root() -> Self {
        NodePath(Vec::new())
    }

    /// Build from a segment stack snapshot.
    pub fn from_segs(segs: &[PathSeg]) -> Self {
        NodePath(segs.to_vec())
    }

    /// True for the program-level path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "<program>");
        }
        for (i, seg) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

/// The path-segment kind of a node. `Seq` nodes are transparent to paths
/// but still have a name for completeness.
pub fn node_kind(n: &Node) -> &'static str {
    match n {
        Node::Seq(_) => "seq",
        Node::Compute(_) => "compute",
        Node::Load { .. } => "load",
        Node::Store { .. } => "store",
        Node::For { .. } => "for",
        Node::Parallel { .. } => "parallel",
        Node::SlipstreamSet(_) => "slipstream_set",
        Node::ParFor { .. } => "parfor",
        Node::Barrier => "barrier",
        Node::Single(_) => "single",
        Node::Master(_) => "master",
        Node::Critical { .. } => "critical",
        Node::Atomic { .. } => "atomic",
        Node::Sections(_) => "sections",
        Node::Flush => "flush",
        Node::Io { .. } => "io",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_segments() {
        let p = NodePath(vec![
            PathSeg {
                kind: "parallel",
                index: 0,
            },
            PathSeg {
                kind: "for",
                index: 2,
            },
            PathSeg {
                kind: "store",
                index: 1,
            },
        ]);
        assert_eq!(p.to_string(), "parallel[0]/for[2]/store[1]");
        assert_eq!(NodePath::root().to_string(), "<program>");
        assert!(NodePath::root().is_root());
        assert!(!p.is_root());
    }

    #[test]
    fn node_kinds_cover_leaves() {
        assert_eq!(node_kind(&Node::Barrier), "barrier");
        assert_eq!(node_kind(&Node::Flush), "flush");
        assert_eq!(node_kind(&Node::nop()), "seq");
    }
}
