//! Program serialization: a stable JSON encoding of [`Program`] trees.
//!
//! The fuzzing harness needs to persist minimized failure repros as
//! artifacts that replay from disk alone, so the IR gets a first-class
//! round-trippable encoding here. The workspace is dependency-free by
//! design, so both the emitter and the recursive-descent parser are
//! hand-rolled; [`JsonValue`]/[`parse_json`] are public so downstream
//! crates (the fuzz artifact format) can wrap program documents in their
//! own envelopes without writing another parser.
//!
//! The encoding is versioned (`"v": 1`) and intentionally explicit: every
//! node and expression is a tagged object (`{"k": "parfor", ...}`), and
//! decode errors carry a human-readable description of what was expected.

use crate::expr::{BinOp, Expr, TableId, VarId};
use crate::node::{
    ArrayDecl, ArrayId, Node, Program, Reduction, ReductionOp, ScheduleKind, ScheduleSpec,
    SlipSyncType, SlipstreamClause,
};

/// Version tag written into every serialized program document.
pub const FORMAT_VERSION: i64 = 1;

// ---------------------------------------------------------------------------
// Generic JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are restricted to `i64` — the encoding
/// never emits floats, and keeping integers exact is what round-tripping
/// trip counts and table contents requires.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (the encoding never uses floats).
    Int(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (parse errors only).
    pub offset: usize,
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serialize error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SerializeError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, SerializeError> {
    Err(SerializeError {
        message: message.into(),
        offset,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SerializeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}'", b as char), self.pos)
        }
    }

    fn value(&mut self) -> Result<JsonValue, SerializeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => err(format!("unexpected character '{}'", c as char), self.pos),
            None => err("unexpected end of input", self.pos),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, SerializeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            err(format!("expected '{lit}'"), self.pos)
        }
    }

    fn number(&mut self) -> Result<JsonValue, SerializeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return err("floating-point numbers are not supported", self.pos);
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<i64>() {
            Ok(v) => Ok(JsonValue::Int(v)),
            Err(_) => err(format!("invalid integer '{text}'"), start),
        }
    }

    fn string(&mut self) -> Result<String, SerializeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string", self.pos),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(SerializeError {
                        message: "unterminated escape".into(),
                        offset: self.pos,
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape", self.pos);
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| SerializeError {
                                    message: "invalid \\u escape".into(),
                                    offset: self.pos,
                                })?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| SerializeError {
                                    message: "invalid \\u escape".into(),
                                    offset: self.pos,
                                })?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the encoder;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return err(format!("invalid escape '\\{}'", c as char), self.pos),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        SerializeError {
                            message: "invalid UTF-8".into(),
                            offset: self.pos,
                        }
                    })?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, SerializeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return err("expected ',' or ']'", self.pos),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, SerializeError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return err("expected ',' or '}'", self.pos),
            }
        }
    }
}

/// Parse a JSON document into a [`JsonValue`]. Trailing non-whitespace is
/// an error.
pub fn parse_json(text: &str) -> Result<JsonValue, SerializeError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err("trailing characters after document", p.pos);
    }
    Ok(v)
}

/// Escape a string for embedding in JSON output (quotes not included).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn emit_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(v) => out.push_str(&format!("{{\"k\":\"const\",\"v\":{v}}}")),
        Expr::Var(v) => out.push_str(&format!("{{\"k\":\"var\",\"v\":{}}}", v.0)),
        Expr::ThreadId => out.push_str("{\"k\":\"tid\"}"),
        Expr::NumThreads => out.push_str("{\"k\":\"nth\"}"),
        Expr::Bin(op, l, r) => {
            let name = match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::Div => "div",
                BinOp::Mod => "mod",
                BinOp::Min => "min",
                BinOp::Max => "max",
            };
            out.push_str(&format!("{{\"k\":\"bin\",\"op\":\"{name}\",\"l\":"));
            emit_expr(l, out);
            out.push_str(",\"r\":");
            emit_expr(r, out);
            out.push('}');
        }
        Expr::Table(t, idx) => {
            out.push_str(&format!("{{\"k\":\"table\",\"t\":{},\"i\":", t.0));
            emit_expr(idx, out);
            out.push('}');
        }
    }
}

fn sync_name(s: SlipSyncType) -> &'static str {
    match s {
        SlipSyncType::GlobalSync => "global",
        SlipSyncType::LocalSync => "local",
        SlipSyncType::RuntimeSync => "runtime",
        SlipSyncType::None => "none",
    }
}

fn emit_clause(c: &SlipstreamClause, out: &mut String) {
    out.push_str(&format!(
        "{{\"sync\":\"{}\",\"tokens\":{}}}",
        sync_name(c.sync),
        c.tokens
    ));
}

fn emit_node(n: &Node, out: &mut String) {
    match n {
        Node::Seq(v) => {
            out.push_str("{\"k\":\"seq\",\"body\":[");
            for (i, c) in v.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_node(c, out);
            }
            out.push_str("]}");
        }
        Node::Compute(e) => {
            out.push_str("{\"k\":\"compute\",\"e\":");
            emit_expr(e, out);
            out.push('}');
        }
        Node::Load { array, index } | Node::Store { array, index } => {
            let k = if matches!(n, Node::Load { .. }) {
                "load"
            } else {
                "store"
            };
            out.push_str(&format!("{{\"k\":\"{k}\",\"a\":{},\"i\":", array.0));
            emit_expr(index, out);
            out.push('}');
        }
        Node::For {
            var,
            begin,
            end,
            step,
            body,
        } => {
            out.push_str(&format!("{{\"k\":\"for\",\"var\":{},\"begin\":", var.0));
            emit_expr(begin, out);
            out.push_str(",\"end\":");
            emit_expr(end, out);
            out.push_str(&format!(",\"step\":{step},\"body\":"));
            emit_node(body, out);
            out.push('}');
        }
        Node::Parallel { body, slipstream } => {
            out.push_str("{\"k\":\"parallel\",\"slip\":");
            match slipstream {
                Some(c) => emit_clause(c, out),
                None => out.push_str("null"),
            }
            out.push_str(",\"body\":");
            emit_node(body, out);
            out.push('}');
        }
        Node::SlipstreamSet(c) => {
            out.push_str("{\"k\":\"slipset\",\"slip\":");
            emit_clause(c, out);
            out.push('}');
        }
        Node::ParFor {
            sched,
            var,
            begin,
            end,
            body,
            reduction,
            nowait,
        } => {
            out.push_str("{\"k\":\"parfor\",\"sched\":");
            match sched {
                Some(s) => {
                    let kind = match s.kind {
                        ScheduleKind::Static => "static",
                        ScheduleKind::Dynamic => "dynamic",
                        ScheduleKind::Guided => "guided",
                        ScheduleKind::Affinity => "affinity",
                        ScheduleKind::Runtime => "runtime",
                    };
                    out.push_str(&format!("{{\"kind\":\"{kind}\",\"chunk\":"));
                    match s.chunk {
                        Some(c) => out.push_str(&c.to_string()),
                        None => out.push_str("null"),
                    }
                    out.push('}');
                }
                None => out.push_str("null"),
            }
            out.push_str(&format!(",\"var\":{},\"begin\":", var.0));
            emit_expr(begin, out);
            out.push_str(",\"end\":");
            emit_expr(end, out);
            out.push_str(",\"reduction\":");
            match reduction {
                Some(r) => {
                    let op = match r.op {
                        ReductionOp::Sum => "sum",
                        ReductionOp::Max => "max",
                        ReductionOp::Min => "min",
                    };
                    out.push_str(&format!(
                        "{{\"op\":\"{op}\",\"target\":{},\"index\":",
                        r.target.0
                    ));
                    emit_expr(&r.index, out);
                    out.push('}');
                }
                None => out.push_str("null"),
            }
            out.push_str(&format!(",\"nowait\":{nowait},\"body\":"));
            emit_node(body, out);
            out.push('}');
        }
        Node::Barrier => out.push_str("{\"k\":\"barrier\"}"),
        Node::Single(body) | Node::Master(body) => {
            let k = if matches!(n, Node::Single(_)) {
                "single"
            } else {
                "master"
            };
            out.push_str(&format!("{{\"k\":\"{k}\",\"body\":"));
            emit_node(body, out);
            out.push('}');
        }
        Node::Critical { name, body } => {
            out.push_str(&format!(
                "{{\"k\":\"critical\",\"name\":\"{}\",\"body\":",
                escape_json(name)
            ));
            emit_node(body, out);
            out.push('}');
        }
        Node::Atomic { array, index } => {
            out.push_str(&format!("{{\"k\":\"atomic\",\"a\":{},\"i\":", array.0));
            emit_expr(index, out);
            out.push('}');
        }
        Node::Sections(secs) => {
            out.push_str("{\"k\":\"sections\",\"secs\":[");
            for (i, s) in secs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_node(s, out);
            }
            out.push_str("]}");
        }
        Node::Flush => out.push_str("{\"k\":\"flush\"}"),
        Node::Io { input, bytes } => {
            out.push_str(&format!(
                "{{\"k\":\"io\",\"input\":{input},\"bytes\":{bytes}}}"
            ));
        }
    }
}

/// Serialize a program to its canonical JSON document.
pub fn program_to_json(p: &Program) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\"v\":{FORMAT_VERSION},\"name\":\"{}\",\"arrays\":[",
        escape_json(&p.name)
    ));
    for (i, a) in p.arrays.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"shared\":{},\"len\":{},\"elem_bytes\":{}}}",
            escape_json(&a.name),
            a.shared,
            a.len,
            a.elem_bytes
        ));
    }
    out.push_str("],\"tables\":[");
    for (i, t) in p.tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in t.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push_str(&format!("],\"num_vars\":{},\"body\":", p.num_vars));
    emit_node(&p.body, &mut out);
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn derr<T>(message: impl Into<String>) -> Result<T, SerializeError> {
    Err(SerializeError {
        message: message.into(),
        offset: 0,
    })
}

fn field<'v>(v: &'v JsonValue, key: &str, what: &str) -> Result<&'v JsonValue, SerializeError> {
    match v.get(key) {
        Some(f) => Ok(f),
        None => derr(format!("{what}: missing field '{key}'")),
    }
}

fn decode_expr(v: &JsonValue) -> Result<Expr, SerializeError> {
    let kind = field(v, "k", "expr")?
        .as_str()
        .ok_or_else(|| SerializeError {
            message: "expr: 'k' must be a string".into(),
            offset: 0,
        })?;
    match kind {
        "const" => {
            let val = field(v, "v", "const")?
                .as_i64()
                .ok_or_else(|| SerializeError {
                    message: "const: 'v' must be an integer".into(),
                    offset: 0,
                })?;
            Ok(Expr::Const(val))
        }
        "var" => {
            let id = field(v, "v", "var")?
                .as_u64()
                .ok_or_else(|| SerializeError {
                    message: "var: 'v' must be a non-negative integer".into(),
                    offset: 0,
                })?;
            Ok(Expr::Var(VarId(id as u32)))
        }
        "tid" => Ok(Expr::ThreadId),
        "nth" => Ok(Expr::NumThreads),
        "bin" => {
            let op = match field(v, "op", "bin")?.as_str() {
                Some("add") => BinOp::Add,
                Some("sub") => BinOp::Sub,
                Some("mul") => BinOp::Mul,
                Some("div") => BinOp::Div,
                Some("mod") => BinOp::Mod,
                Some("min") => BinOp::Min,
                Some("max") => BinOp::Max,
                other => return derr(format!("bin: unknown op {other:?}")),
            };
            let l = decode_expr(field(v, "l", "bin")?)?;
            let r = decode_expr(field(v, "r", "bin")?)?;
            Ok(Expr::Bin(op, Box::new(l), Box::new(r)))
        }
        "table" => {
            let t = field(v, "t", "table")?
                .as_u64()
                .ok_or_else(|| SerializeError {
                    message: "table: 't' must be a non-negative integer".into(),
                    offset: 0,
                })?;
            let idx = decode_expr(field(v, "i", "table")?)?;
            Ok(Expr::Table(TableId(t as u32), Box::new(idx)))
        }
        other => derr(format!("expr: unknown kind '{other}'")),
    }
}

fn decode_clause(v: &JsonValue) -> Result<SlipstreamClause, SerializeError> {
    let sync = match field(v, "sync", "slipstream clause")?.as_str() {
        Some("global") => SlipSyncType::GlobalSync,
        Some("local") => SlipSyncType::LocalSync,
        Some("runtime") => SlipSyncType::RuntimeSync,
        Some("none") => SlipSyncType::None,
        other => return derr(format!("slipstream clause: unknown sync {other:?}")),
    };
    let tokens = field(v, "tokens", "slipstream clause")?
        .as_u64()
        .ok_or_else(|| SerializeError {
            message: "slipstream clause: 'tokens' must be a non-negative integer".into(),
            offset: 0,
        })?;
    Ok(SlipstreamClause { sync, tokens })
}

fn req_u32(v: &JsonValue, key: &str, what: &str) -> Result<u32, SerializeError> {
    field(v, key, what)?
        .as_u64()
        .filter(|n| *n <= u32::MAX as u64)
        .map(|n| n as u32)
        .ok_or_else(|| SerializeError {
            message: format!("{what}: '{key}' must be a u32"),
            offset: 0,
        })
}

fn req_u64(v: &JsonValue, key: &str, what: &str) -> Result<u64, SerializeError> {
    field(v, key, what)?.as_u64().ok_or_else(|| SerializeError {
        message: format!("{what}: '{key}' must be a non-negative integer"),
        offset: 0,
    })
}

fn decode_node(v: &JsonValue) -> Result<Node, SerializeError> {
    let kind = field(v, "k", "node")?
        .as_str()
        .ok_or_else(|| SerializeError {
            message: "node: 'k' must be a string".into(),
            offset: 0,
        })?;
    match kind {
        "seq" => {
            let body = field(v, "body", "seq")?
                .as_arr()
                .ok_or_else(|| SerializeError {
                    message: "seq: 'body' must be an array".into(),
                    offset: 0,
                })?;
            Ok(Node::Seq(
                body.iter().map(decode_node).collect::<Result<_, _>>()?,
            ))
        }
        "compute" => Ok(Node::Compute(decode_expr(field(v, "e", "compute")?)?)),
        "load" | "store" => {
            let array = ArrayId(req_u32(v, "a", kind)?);
            let index = decode_expr(field(v, "i", kind)?)?;
            if kind == "load" {
                Ok(Node::Load { array, index })
            } else {
                Ok(Node::Store { array, index })
            }
        }
        "for" => Ok(Node::For {
            var: VarId(req_u32(v, "var", "for")?),
            begin: decode_expr(field(v, "begin", "for")?)?,
            end: decode_expr(field(v, "end", "for")?)?,
            step: req_u64(v, "step", "for")?,
            body: Box::new(decode_node(field(v, "body", "for")?)?),
        }),
        "parallel" => {
            let slip = match field(v, "slip", "parallel")? {
                JsonValue::Null => None,
                c => Some(decode_clause(c)?),
            };
            Ok(Node::Parallel {
                body: Box::new(decode_node(field(v, "body", "parallel")?)?),
                slipstream: slip,
            })
        }
        "slipset" => Ok(Node::SlipstreamSet(decode_clause(field(
            v, "slip", "slipset",
        )?)?)),
        "parfor" => {
            let sched = match field(v, "sched", "parfor")? {
                JsonValue::Null => None,
                s => {
                    let k = match field(s, "kind", "schedule")?.as_str() {
                        Some("static") => ScheduleKind::Static,
                        Some("dynamic") => ScheduleKind::Dynamic,
                        Some("guided") => ScheduleKind::Guided,
                        Some("affinity") => ScheduleKind::Affinity,
                        Some("runtime") => ScheduleKind::Runtime,
                        other => return derr(format!("schedule: unknown kind {other:?}")),
                    };
                    let chunk = match field(s, "chunk", "schedule")? {
                        JsonValue::Null => None,
                        c => Some(c.as_u64().ok_or_else(|| SerializeError {
                            message: "schedule: 'chunk' must be a non-negative integer".into(),
                            offset: 0,
                        })?),
                    };
                    Some(ScheduleSpec { kind: k, chunk })
                }
            };
            let reduction = match field(v, "reduction", "parfor")? {
                JsonValue::Null => None,
                r => {
                    let op = match field(r, "op", "reduction")?.as_str() {
                        Some("sum") => ReductionOp::Sum,
                        Some("max") => ReductionOp::Max,
                        Some("min") => ReductionOp::Min,
                        other => return derr(format!("reduction: unknown op {other:?}")),
                    };
                    Some(Reduction {
                        op,
                        target: ArrayId(req_u32(r, "target", "reduction")?),
                        index: decode_expr(field(r, "index", "reduction")?)?,
                    })
                }
            };
            Ok(Node::ParFor {
                sched,
                var: VarId(req_u32(v, "var", "parfor")?),
                begin: decode_expr(field(v, "begin", "parfor")?)?,
                end: decode_expr(field(v, "end", "parfor")?)?,
                body: Box::new(decode_node(field(v, "body", "parfor")?)?),
                reduction,
                nowait: field(v, "nowait", "parfor")?
                    .as_bool()
                    .ok_or_else(|| SerializeError {
                        message: "parfor: 'nowait' must be a bool".into(),
                        offset: 0,
                    })?,
            })
        }
        "barrier" => Ok(Node::Barrier),
        "single" => Ok(Node::Single(Box::new(decode_node(field(
            v, "body", "single",
        )?)?))),
        "master" => Ok(Node::Master(Box::new(decode_node(field(
            v, "body", "master",
        )?)?))),
        "critical" => Ok(Node::Critical {
            name: field(v, "name", "critical")?
                .as_str()
                .ok_or_else(|| SerializeError {
                    message: "critical: 'name' must be a string".into(),
                    offset: 0,
                })?
                .to_string(),
            body: Box::new(decode_node(field(v, "body", "critical")?)?),
        }),
        "atomic" => Ok(Node::Atomic {
            array: ArrayId(req_u32(v, "a", "atomic")?),
            index: decode_expr(field(v, "i", "atomic")?)?,
        }),
        "sections" => {
            let secs = field(v, "secs", "sections")?
                .as_arr()
                .ok_or_else(|| SerializeError {
                    message: "sections: 'secs' must be an array".into(),
                    offset: 0,
                })?;
            Ok(Node::Sections(
                secs.iter().map(decode_node).collect::<Result<_, _>>()?,
            ))
        }
        "flush" => Ok(Node::Flush),
        "io" => Ok(Node::Io {
            input: field(v, "input", "io")?
                .as_bool()
                .ok_or_else(|| SerializeError {
                    message: "io: 'input' must be a bool".into(),
                    offset: 0,
                })?,
            bytes: req_u64(v, "bytes", "io")?,
        }),
        other => derr(format!("node: unknown kind '{other}'")),
    }
}

/// Decode a program from an already-parsed JSON document (useful when the
/// program is embedded inside a larger envelope, as fuzz repro artifacts
/// do).
pub fn program_from_value(v: &JsonValue) -> Result<Program, SerializeError> {
    let version = req_u64(v, "v", "program")? as i64;
    if version != FORMAT_VERSION {
        return derr(format!(
            "program: unsupported format version {version} (expected {FORMAT_VERSION})"
        ));
    }
    let name = field(v, "name", "program")?
        .as_str()
        .ok_or_else(|| SerializeError {
            message: "program: 'name' must be a string".into(),
            offset: 0,
        })?
        .to_string();
    let mut arrays = Vec::new();
    for a in field(v, "arrays", "program")?
        .as_arr()
        .ok_or_else(|| SerializeError {
            message: "program: 'arrays' must be an array".into(),
            offset: 0,
        })?
    {
        arrays.push(ArrayDecl {
            name: field(a, "name", "array")?
                .as_str()
                .ok_or_else(|| SerializeError {
                    message: "array: 'name' must be a string".into(),
                    offset: 0,
                })?
                .to_string(),
            shared: field(a, "shared", "array")?
                .as_bool()
                .ok_or_else(|| SerializeError {
                    message: "array: 'shared' must be a bool".into(),
                    offset: 0,
                })?,
            len: req_u64(a, "len", "array")?,
            elem_bytes: req_u64(a, "elem_bytes", "array")?,
        });
    }
    let mut tables = Vec::new();
    for t in field(v, "tables", "program")?
        .as_arr()
        .ok_or_else(|| SerializeError {
            message: "program: 'tables' must be an array".into(),
            offset: 0,
        })?
    {
        let cells = t.as_arr().ok_or_else(|| SerializeError {
            message: "table: must be an array of integers".into(),
            offset: 0,
        })?;
        let mut row = Vec::with_capacity(cells.len());
        for c in cells {
            row.push(c.as_i64().ok_or_else(|| SerializeError {
                message: "table: cells must be integers".into(),
                offset: 0,
            })?);
        }
        tables.push(row);
    }
    Ok(Program {
        name,
        arrays,
        tables,
        num_vars: req_u32(v, "num_vars", "program")?,
        body: decode_node(field(v, "body", "program")?)?,
    })
}

/// Parse and decode a serialized program document.
pub fn program_from_json(text: &str) -> Result<Program, SerializeError> {
    let v = parse_json(text)?;
    program_from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::node::ReductionOp;

    fn rich_program() -> Program {
        let mut b = ProgramBuilder::new("round\"trip");
        let a = b.shared_array("a", 64, 8);
        let p = b.private_array("p", 16, 4);
        let r = b.shared_array("r", 1, 8);
        let t = b.table(vec![3, 1, 4, 1, 5]);
        let i = b.var();
        let j = b.var();
        b.slipstream(SlipstreamClause {
            sync: SlipSyncType::LocalSync,
            tokens: 2,
        });
        b.serial(|s| {
            s.io(true, 4096);
            s.compute(10);
        });
        b.parallel_with(
            Some(SlipstreamClause {
                sync: SlipSyncType::RuntimeSync,
                tokens: 1,
            }),
            |reg| {
                reg.par_for_reduce(
                    Some(ScheduleSpec::dynamic(3)),
                    i,
                    0,
                    64,
                    ReductionOp::Max,
                    r,
                    0,
                    |body| {
                        body.load(a, Expr::v(i).index_into(t).rem(Expr::c(64)));
                        body.for_loop(j, 0, 4, |inner| {
                            inner.store(p, Expr::v(j));
                        });
                    },
                );
                reg.barrier();
                reg.single(|s| s.io(false, 128));
                reg.master(|m| m.compute(5));
                reg.critical("lock", |c| c.atomic(a, Expr::ThreadId));
                reg.sections(3, |k, s| s.compute(k as i64 + 1));
                reg.flush();
            },
        );
        b.build()
    }

    #[test]
    fn round_trip_preserves_program() {
        let p = rich_program();
        let json = program_to_json(&p);
        let q = program_from_json(&json).unwrap();
        assert_eq!(p, q);
        // And the re-serialization is byte-identical (canonical form).
        assert_eq!(json, program_to_json(&q));
    }

    #[test]
    fn round_trip_all_schedule_kinds_and_ops() {
        for (sched, op) in [
            (Some(ScheduleSpec::static_default()), ReductionOp::Sum),
            (
                Some(ScheduleSpec {
                    kind: ScheduleKind::Static,
                    chunk: Some(5),
                }),
                ReductionOp::Min,
            ),
            (Some(ScheduleSpec::guided()), ReductionOp::Max),
            (Some(ScheduleSpec::affinity(2)), ReductionOp::Sum),
            (
                Some(ScheduleSpec {
                    kind: ScheduleKind::Runtime,
                    chunk: None,
                }),
                ReductionOp::Sum,
            ),
            (None, ReductionOp::Sum),
        ] {
            let mut b = ProgramBuilder::new("k");
            let r = b.shared_array("r", 1, 8);
            let i = b.var();
            b.parallel(|reg| {
                reg.par_for_reduce(sched, i, 0, 10, op, r, 0, |body| body.compute(1));
            });
            let p = b.build();
            assert_eq!(p, program_from_json(&program_to_json(&p)).unwrap());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1.5").is_err());
        assert!(parse_json("{}x").is_err());
        assert!(program_from_json("{\"v\":99}").is_err());
        assert!(program_from_json("{\"v\":1,\"name\":\"x\"}").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json("\"a\\n\\\"b\\\\c\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\\cA"));
        assert_eq!(escape_json("a\n\"b\\c"), "a\\n\\\"b\\\\c");
    }

    #[test]
    fn expr_shapes_round_trip() {
        let exprs = [
            Expr::c(-7),
            Expr::ThreadId + Expr::NumThreads,
            (Expr::v(VarId(1)) * Expr::c(3)).rem(Expr::c(5)),
            Expr::v(VarId(0)).min(Expr::c(9)).max(Expr::c(0)),
            Expr::c(2).index_into(TableId(0)) / Expr::c(2) - Expr::c(1),
        ];
        for e in exprs {
            let mut s = String::new();
            emit_expr(&e, &mut s);
            let v = parse_json(&s).unwrap();
            assert_eq!(decode_expr(&v).unwrap(), e);
        }
    }
}
