//! Ergonomic construction of kernel IR programs.
//!
//! [`ProgramBuilder`] plays the role of the OpenMP compiler front half:
//! kernels declare arrays/tables/variables and emit statements; parallel
//! regions and worksharing constructs are expressed as nested closures.
//!
//! ```
//! use omp_ir::builder::ProgramBuilder;
//! use omp_ir::expr::Expr;
//! use omp_ir::node::ScheduleSpec;
//!
//! let mut b = ProgramBuilder::new("saxpy");
//! let x = b.shared_array("x", 1024, 8);
//! let y = b.shared_array("y", 1024, 8);
//! let i = b.var();
//! b.parallel(|r| {
//!     r.par_for(None, i, 0, 1024, |body| {
//!         body.load(x, Expr::v(i));
//!         body.load(y, Expr::v(i));
//!         body.compute(2);
//!         body.store(y, Expr::v(i));
//!     });
//! });
//! let program = b.build();
//! assert_eq!(program.arrays.len(), 2);
//! ```

use crate::expr::{Expr, TableId, VarId};
use crate::node::{
    ArrayDecl, ArrayId, Node, Program, Reduction, ReductionOp, ScheduleSpec, SlipstreamClause,
};

/// Builds statement lists for one lexical block.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    nodes: Vec<Node>,
}

impl BlockBuilder {
    fn new() -> Self {
        Self::default()
    }

    fn finish(self) -> Node {
        match self.nodes.len() {
            1 => self.nodes.into_iter().next().expect("len checked"),
            _ => Node::Seq(self.nodes),
        }
    }

    fn block(f: impl FnOnce(&mut BlockBuilder)) -> Node {
        let mut b = BlockBuilder::new();
        f(&mut b);
        b.finish()
    }

    /// Append an already-built node.
    pub fn push(&mut self, node: Node) {
        self.nodes.push(node);
    }

    /// Finish this block into a node (kernels that assemble loop bodies
    /// out-of-line use this to hand the block to `Node::For` etc.).
    pub fn into_node(self) -> Node {
        self.finish()
    }

    /// Busy-execute for `cycles`.
    pub fn compute(&mut self, cycles: impl Into<Expr>) {
        self.nodes.push(Node::Compute(cycles.into()));
    }

    /// Load `array[index]`.
    pub fn load(&mut self, array: ArrayId, index: impl Into<Expr>) {
        self.nodes.push(Node::Load {
            array,
            index: index.into(),
        });
    }

    /// Store to `array[index]`.
    pub fn store(&mut self, array: ArrayId, index: impl Into<Expr>) {
        self.nodes.push(Node::Store {
            array,
            index: index.into(),
        });
    }

    /// Atomic update of `array[index]`.
    pub fn atomic(&mut self, array: ArrayId, index: impl Into<Expr>) {
        self.nodes.push(Node::Atomic {
            array,
            index: index.into(),
        });
    }

    /// Explicit barrier.
    pub fn barrier(&mut self) {
        self.nodes.push(Node::Barrier);
    }

    /// Flush directive.
    pub fn flush(&mut self) {
        self.nodes.push(Node::Flush);
    }

    /// I/O operation.
    pub fn io(&mut self, input: bool, bytes: u64) {
        self.nodes.push(Node::Io { input, bytes });
    }

    /// Sequential loop `for var in begin..end`.
    pub fn for_loop(
        &mut self,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) {
        self.for_loop_step(var, begin, end, 1, f);
    }

    /// Sequential loop with an explicit step.
    pub fn for_loop_step(
        &mut self,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        step: u64,
        f: impl FnOnce(&mut BlockBuilder),
    ) {
        assert!(step > 0, "loop step must be positive");
        self.nodes.push(Node::For {
            var,
            begin: begin.into(),
            end: end.into(),
            step,
            body: Box::new(Self::block(f)),
        });
    }

    /// Worksharing `for` loop with an implicit end barrier.
    pub fn par_for(
        &mut self,
        sched: Option<ScheduleSpec>,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) {
        self.nodes.push(Node::ParFor {
            sched,
            var,
            begin: begin.into(),
            end: end.into(),
            body: Box::new(Self::block(f)),
            reduction: None,
            nowait: false,
        });
    }

    /// Worksharing loop without the implicit end barrier (`nowait`).
    pub fn par_for_nowait(
        &mut self,
        sched: Option<ScheduleSpec>,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) {
        self.nodes.push(Node::ParFor {
            sched,
            var,
            begin: begin.into(),
            end: end.into(),
            body: Box::new(Self::block(f)),
            reduction: None,
            nowait: true,
        });
    }

    /// Worksharing loop with a reduction clause.
    #[allow(clippy::too_many_arguments)]
    pub fn par_for_reduce(
        &mut self,
        sched: Option<ScheduleSpec>,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        op: ReductionOp,
        target: ArrayId,
        target_index: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) {
        self.nodes.push(Node::ParFor {
            sched,
            var,
            begin: begin.into(),
            end: end.into(),
            body: Box::new(Self::block(f)),
            reduction: Some(Reduction {
                op,
                target,
                index: target_index.into(),
            }),
            nowait: false,
        });
    }

    /// Worksharing loop with every clause under caller control: schedule,
    /// optional reduction, and `nowait` in one call. Program generators
    /// (the fuzz grammar) sample all clause combinations through this
    /// entry instead of dispatching over the three shorthand variants.
    #[allow(clippy::too_many_arguments)]
    pub fn par_for_full(
        &mut self,
        sched: Option<ScheduleSpec>,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        reduction: Option<Reduction>,
        nowait: bool,
        f: impl FnOnce(&mut BlockBuilder),
    ) {
        self.nodes.push(Node::ParFor {
            sched,
            var,
            begin: begin.into(),
            end: end.into(),
            body: Box::new(Self::block(f)),
            reduction,
            nowait,
        });
    }

    /// `single` construct.
    pub fn single(&mut self, f: impl FnOnce(&mut BlockBuilder)) {
        self.nodes.push(Node::Single(Box::new(Self::block(f))));
    }

    /// `master` construct.
    pub fn master(&mut self, f: impl FnOnce(&mut BlockBuilder)) {
        self.nodes.push(Node::Master(Box::new(Self::block(f))));
    }

    /// Named critical section.
    pub fn critical(&mut self, name: &str, f: impl FnOnce(&mut BlockBuilder)) {
        self.nodes.push(Node::Critical {
            name: name.to_string(),
            body: Box::new(Self::block(f)),
        });
    }

    /// `sections` construct with `n` sections built by `f(section_index)`.
    pub fn sections(&mut self, n: usize, mut f: impl FnMut(usize, &mut BlockBuilder)) {
        let secs = (0..n).map(|i| Self::block(|b| f(i, b))).collect();
        self.nodes.push(Node::Sections(secs));
    }
}

/// Top-level program builder (the serial part).
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    tables: Vec<Vec<i64>>,
    next_var: u32,
    body: BlockBuilder,
}

impl ProgramBuilder {
    /// Start a program named `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            arrays: Vec::new(),
            tables: Vec::new(),
            next_var: 0,
            body: BlockBuilder::new(),
        }
    }

    /// Declare a shared array.
    pub fn shared_array(&mut self, name: &str, len: u64, elem_bytes: u64) -> ArrayId {
        self.declare(name, true, len, elem_bytes)
    }

    /// Declare a per-thread private array.
    pub fn private_array(&mut self, name: &str, len: u64, elem_bytes: u64) -> ArrayId {
        self.declare(name, false, len, elem_bytes)
    }

    fn declare(&mut self, name: &str, shared: bool, len: u64, elem_bytes: u64) -> ArrayId {
        assert!(len > 0 && elem_bytes > 0, "empty array declaration");
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            shared,
            len,
            elem_bytes,
        });
        id
    }

    /// Register a host-side index table.
    pub fn table(&mut self, data: Vec<i64>) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(data);
        id
    }

    /// Allocate a fresh private variable slot.
    pub fn var(&mut self) -> VarId {
        let id = VarId(self.next_var);
        self.next_var += 1;
        id
    }

    /// Serial-part statements (executed by the master between regions).
    pub fn serial(&mut self, f: impl FnOnce(&mut BlockBuilder)) {
        f(&mut self.body);
    }

    /// Set the program-global slipstream directive from this point on.
    pub fn slipstream(&mut self, clause: SlipstreamClause) {
        self.body.push(Node::SlipstreamSet(clause));
    }

    /// A parallel region using the prevailing slipstream setting.
    pub fn parallel(&mut self, f: impl FnOnce(&mut BlockBuilder)) {
        self.parallel_with(None, f);
    }

    /// A parallel region with a region-scoped slipstream clause.
    pub fn parallel_with(
        &mut self,
        slipstream: Option<SlipstreamClause>,
        f: impl FnOnce(&mut BlockBuilder),
    ) {
        let body = BlockBuilder::block(f);
        self.body.push(Node::Parallel {
            body: Box::new(body),
            slipstream,
        });
    }

    /// Finalize into a [`Program`].
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            arrays: self.arrays,
            tables: self.tables,
            num_vars: self.next_var,
            body: self.body.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_minimal_parallel_program() {
        let mut b = ProgramBuilder::new("min");
        let a = b.shared_array("a", 100, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 100, |body| {
                body.load(a, Expr::v(i));
                body.compute(5);
                body.store(a, Expr::v(i));
            });
        });
        let p = b.build();
        assert_eq!(p.name, "min");
        assert_eq!(p.num_vars, 1);
        match &p.body {
            Node::Parallel { body, slipstream } => {
                assert!(slipstream.is_none());
                assert!(matches!(**body, Node::ParFor { .. }));
            }
            other => panic!("expected Parallel, got {other:?}"),
        }
    }

    #[test]
    fn single_statement_blocks_unwrap_seq() {
        let n = BlockBuilder::block(|b| b.compute(1));
        assert!(matches!(n, Node::Compute(_)));
        let n2 = BlockBuilder::block(|b| {
            b.compute(1);
            b.compute(2);
        });
        assert!(matches!(n2, Node::Seq(ref v) if v.len() == 2));
    }

    #[test]
    fn declarations_assign_dense_ids() {
        let mut b = ProgramBuilder::new("d");
        let a0 = b.shared_array("a", 1, 8);
        let a1 = b.private_array("b", 2, 4);
        let t0 = b.table(vec![1, 2]);
        assert_eq!(a0, ArrayId(0));
        assert_eq!(a1, ArrayId(1));
        assert_eq!(t0, TableId(0));
        let p = b.build();
        assert!(p.array(a0).shared);
        assert!(!p.array(a1).shared);
        assert_eq!(p.table(t0), &[1, 2]);
    }

    #[test]
    fn nested_constructs_compose() {
        let mut b = ProgramBuilder::new("n");
        let a = b.shared_array("a", 10, 8);
        let i = b.var();
        let j = b.var();
        b.parallel(|r| {
            r.master(|m| m.io(false, 64));
            r.par_for(Some(ScheduleSpec::dynamic(2)), i, 0, 10, |body| {
                body.for_loop(j, 0, Expr::v(i), |inner| {
                    inner.load(a, Expr::v(j));
                });
            });
            r.critical("upd", |c| c.store(a, 0));
            r.sections(3, |s, sec| sec.compute(s as i64 + 1));
        });
        let p = b.build();
        assert!(p.node_count() > 8);
    }

    #[test]
    #[should_panic(expected = "loop step must be positive")]
    fn zero_step_loops_are_rejected() {
        BlockBuilder::block(|b| b.for_loop_step(VarId(0), 0, 10, 0, |_| {}));
    }

    #[test]
    #[should_panic(expected = "empty array declaration")]
    fn empty_arrays_are_rejected() {
        let mut b = ProgramBuilder::new("e");
        b.shared_array("a", 0, 8);
    }
}
