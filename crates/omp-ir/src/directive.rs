//! Textual OpenMP directive parsing, including the paper's extension.
//!
//! The paper (Section 3.3) introduces:
//!
//! ```text
//! !$OMP SLIPSTREAM([type] [, tokens])
//! ```
//!
//! where `type` ∈ {GLOBAL_SYNC, LOCAL_SYNC, RUNTIME_SYNC} and `tokens` is
//! the initial token count for A–R synchronization, plus an environment
//! variable `OMP_SLIPSTREAM` taking the same arguments with the extra type
//! `NONE` to disable slipstream at runtime.
//!
//! This module parses both the C (`#pragma omp ...`) and Fortran
//! (`!$OMP ...`) spellings of the constructs the compiler extension
//! touches, case-insensitively, into structured [`Directive`] values.

use crate::node::{ReductionOp, ScheduleKind, ScheduleSpec, SlipSyncType, SlipstreamClause};
use std::fmt;

/// A parse failure, with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveError(pub String);

impl fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "directive error: {}", self.0)
    }
}

impl std::error::Error for DirectiveError {}

fn err<T>(msg: impl Into<String>) -> Result<T, DirectiveError> {
    Err(DirectiveError(msg.into()))
}

/// A parsed directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `parallel`, optionally carrying a region-scoped slipstream clause.
    Parallel {
        /// Region-scoped `slipstream(...)` clause.
        slipstream: Option<SlipstreamClause>,
    },
    /// Worksharing `for` / `do`.
    For {
        /// `schedule(kind[, chunk])` clause.
        schedule: Option<ScheduleSpec>,
        /// `reduction(op: var)` clause (operator and variable name).
        reduction: Option<(ReductionOp, String)>,
        /// `nowait` clause.
        nowait: bool,
    },
    /// `barrier`.
    Barrier,
    /// `single`.
    Single,
    /// `master`.
    Master,
    /// `critical [(name)]`.
    Critical {
        /// Optional section name.
        name: Option<String>,
    },
    /// `atomic`.
    Atomic,
    /// `sections`.
    Sections,
    /// `flush`.
    Flush,
    /// The new `slipstream([type][, tokens])` directive.
    Slipstream(SlipstreamClause),
}

/// Runtime slipstream setting parsed from `OMP_SLIPSTREAM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvSlipstream {
    /// `NONE`: slipstream disabled.
    Disabled,
    /// Enabled with a concrete sync type and token count.
    Enabled {
        /// Global or local token insertion.
        sync: SlipSyncType,
        /// Initial token count.
        tokens: u64,
    },
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    LParen,
    RParen,
    Comma,
    Colon,
    Plus,
}

fn lex(s: &str) -> Result<Vec<Tok>, DirectiveError> {
    let mut toks = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            ':' => {
                chars.next();
                toks.push(Tok::Colon);
            }
            '+' => {
                chars.next();
                toks.push(Tok::Plus);
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v as u64))
                            .ok_or_else(|| DirectiveError("numeric overflow".into()))?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' || c == '!' || c == '#' => {
                let mut id = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '$' || d == '!' || d == '#' {
                        id.push(d.to_ascii_lowercase());
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(id));
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), DirectiveError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => err(format!("expected {t:?}, got {got:?}")),
        }
    }

    fn ident(&mut self) -> Result<String, DirectiveError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => err(format!("expected identifier, got {got:?}")),
        }
    }

    fn num(&mut self) -> Result<u64, DirectiveError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            got => err(format!("expected number, got {got:?}")),
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.toks.len()
    }
}

fn parse_sync_type(name: &str) -> Result<SlipSyncType, DirectiveError> {
    match name {
        "global_sync" => Ok(SlipSyncType::GlobalSync),
        "local_sync" => Ok(SlipSyncType::LocalSync),
        "runtime_sync" => Ok(SlipSyncType::RuntimeSync),
        "none" => Ok(SlipSyncType::None),
        other => err(format!("unknown slipstream sync type {other:?}")),
    }
}

/// Parse a `slipstream(...)` argument list after the keyword. The clause
/// may be empty (defaults), `(type)`, `(tokens)`, or `(type, tokens)`.
fn parse_slipstream_args(p: &mut Parser) -> Result<SlipstreamClause, DirectiveError> {
    let mut clause = SlipstreamClause::default();
    if p.peek() != Some(&Tok::LParen) {
        return Ok(clause);
    }
    p.expect(Tok::LParen)?;
    match p.peek() {
        Some(Tok::RParen) => {}
        Some(Tok::Num(_)) => {
            clause.tokens = p.num()?;
        }
        Some(Tok::Ident(_)) => {
            let id = p.ident()?;
            clause.sync = parse_sync_type(&id)?;
            if p.peek() == Some(&Tok::Comma) {
                p.next();
                clause.tokens = p.num()?;
            }
        }
        got => return err(format!("bad slipstream argument {got:?}")),
    }
    p.expect(Tok::RParen)?;
    Ok(clause)
}

fn parse_schedule(p: &mut Parser) -> Result<ScheduleSpec, DirectiveError> {
    p.expect(Tok::LParen)?;
    let kind = match p.ident()?.as_str() {
        "static" => ScheduleKind::Static,
        "dynamic" => ScheduleKind::Dynamic,
        "guided" => ScheduleKind::Guided,
        "affinity" => ScheduleKind::Affinity,
        "runtime" => ScheduleKind::Runtime,
        other => return err(format!("unknown schedule kind {other:?}")),
    };
    let chunk = if p.peek() == Some(&Tok::Comma) {
        p.next();
        Some(p.num()?)
    } else {
        None
    };
    p.expect(Tok::RParen)?;
    if chunk == Some(0) {
        return err("schedule chunk must be positive");
    }
    Ok(ScheduleSpec { kind, chunk })
}

fn parse_reduction(p: &mut Parser) -> Result<(ReductionOp, String), DirectiveError> {
    p.expect(Tok::LParen)?;
    let op = match p.next() {
        Some(Tok::Plus) => ReductionOp::Sum,
        Some(Tok::Ident(id)) => match id.as_str() {
            "max" => ReductionOp::Max,
            "min" => ReductionOp::Min,
            other => return err(format!("unknown reduction op {other:?}")),
        },
        got => return err(format!("expected reduction operator, got {got:?}")),
    };
    p.expect(Tok::Colon)?;
    let var = p.ident()?;
    p.expect(Tok::RParen)?;
    Ok((op, var))
}

/// Parse one directive line. Accepts both `#pragma omp ...` and
/// `!$OMP ...` spellings, case-insensitively; the sentinel may also be
/// omitted entirely (`parallel slipstream(...)`).
pub fn parse_directive(line: &str) -> Result<Directive, DirectiveError> {
    let toks = lex(line)?;
    let mut p = Parser { toks, pos: 0 };

    // Strip the sentinel: `#pragma omp` or `!$omp`.
    if let Some(Tok::Ident(id)) = p.peek() {
        if id == "#pragma" {
            p.next();
            let omp = p.ident()?;
            if omp != "omp" {
                return err(format!("expected 'omp' after #pragma, got {omp:?}"));
            }
        } else if id == "!$omp" {
            p.next();
        }
    }

    let head = p.ident()?;
    let d = match head.as_str() {
        "parallel" => {
            let mut slip = None;
            while let Some(Tok::Ident(id)) = p.peek() {
                match id.as_str() {
                    "slipstream" => {
                        p.next();
                        slip = Some(parse_slipstream_args(&mut p)?);
                    }
                    other => return err(format!("unsupported parallel clause {other:?}")),
                }
            }
            Directive::Parallel { slipstream: slip }
        }
        "for" | "do" => {
            let mut schedule = None;
            let mut reduction = None;
            let mut nowait = false;
            while let Some(Tok::Ident(id)) = p.peek().cloned() {
                p.next();
                match id.as_str() {
                    "schedule" => schedule = Some(parse_schedule(&mut p)?),
                    "reduction" => reduction = Some(parse_reduction(&mut p)?),
                    "nowait" => nowait = true,
                    other => return err(format!("unsupported for clause {other:?}")),
                }
            }
            Directive::For {
                schedule,
                reduction,
                nowait,
            }
        }
        "barrier" => Directive::Barrier,
        "single" => Directive::Single,
        "master" => Directive::Master,
        "atomic" => Directive::Atomic,
        "sections" => Directive::Sections,
        "flush" => Directive::Flush,
        "critical" => {
            let name = if p.peek() == Some(&Tok::LParen) {
                p.next();
                let n = p.ident()?;
                p.expect(Tok::RParen)?;
                Some(n)
            } else {
                None
            };
            Directive::Critical { name }
        }
        "slipstream" => Directive::Slipstream(parse_slipstream_args(&mut p)?),
        other => return err(format!("unknown directive {other:?}")),
    };

    if !p.at_end() {
        return err(format!("trailing tokens after directive: {:?}", p.peek()));
    }
    Ok(d)
}

/// Parse the `OMP_SLIPSTREAM` environment variable. Takes the same
/// arguments as the directive, plus `NONE` to disable slipstream
/// (paper Section 3.3). `RUNTIME_SYNC` is rejected here — the environment
/// is where runtime resolution terminates.
pub fn parse_omp_slipstream_env(value: &str) -> Result<EnvSlipstream, DirectiveError> {
    let toks = lex(value)?;
    let mut p = Parser { toks, pos: 0 };
    let mut sync = SlipSyncType::GlobalSync;
    let mut tokens = 0u64;
    match p.peek() {
        None => return err("empty OMP_SLIPSTREAM value"),
        Some(Tok::Num(_)) => tokens = p.num()?,
        Some(Tok::Ident(_)) => {
            let id = p.ident()?;
            sync = parse_sync_type(&id)?;
            if p.peek() == Some(&Tok::Comma) {
                p.next();
                tokens = p.num()?;
            }
        }
        got => return err(format!("bad OMP_SLIPSTREAM value {got:?}")),
    }
    if !p.at_end() {
        return err("trailing tokens in OMP_SLIPSTREAM");
    }
    match sync {
        SlipSyncType::None => Ok(EnvSlipstream::Disabled),
        SlipSyncType::RuntimeSync => err("OMP_SLIPSTREAM cannot be RUNTIME_SYNC"),
        s => Ok(EnvSlipstream::Enabled { sync: s, tokens }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_spelling() {
        // The exact form from Section 3.3 of the paper.
        let d = parse_directive("!$OMP SLIPSTREAM(GLOBAL_SYNC, 1)").unwrap();
        assert_eq!(
            d,
            Directive::Slipstream(SlipstreamClause {
                sync: SlipSyncType::GlobalSync,
                tokens: 1
            })
        );
    }

    #[test]
    fn parses_pragma_spelling_and_defaults() {
        let d = parse_directive("#pragma omp slipstream").unwrap();
        assert_eq!(d, Directive::Slipstream(SlipstreamClause::default()));
        let d = parse_directive("#pragma omp slipstream(LOCAL_SYNC)").unwrap();
        assert_eq!(
            d,
            Directive::Slipstream(SlipstreamClause {
                sync: SlipSyncType::LocalSync,
                tokens: 0
            })
        );
        // Tokens-only form.
        let d = parse_directive("#pragma omp slipstream(3)").unwrap();
        assert_eq!(
            d,
            Directive::Slipstream(SlipstreamClause {
                sync: SlipSyncType::GlobalSync,
                tokens: 3
            })
        );
    }

    #[test]
    fn parallel_with_slipstream_clause() {
        let d = parse_directive("#pragma omp parallel slipstream(RUNTIME_SYNC, 2)").unwrap();
        assert_eq!(
            d,
            Directive::Parallel {
                slipstream: Some(SlipstreamClause {
                    sync: SlipSyncType::RuntimeSync,
                    tokens: 2
                })
            }
        );
    }

    #[test]
    fn for_with_all_clauses() {
        let d = parse_directive("#pragma omp for schedule(dynamic, 4) reduction(+: err) nowait")
            .unwrap();
        assert_eq!(
            d,
            Directive::For {
                schedule: Some(ScheduleSpec::dynamic(4)),
                reduction: Some((ReductionOp::Sum, "err".into())),
                nowait: true,
            }
        );
    }

    #[test]
    fn schedule_kinds() {
        for (txt, kind) in [
            ("static", ScheduleKind::Static),
            ("dynamic", ScheduleKind::Dynamic),
            ("guided", ScheduleKind::Guided),
            ("affinity", ScheduleKind::Affinity),
            ("runtime", ScheduleKind::Runtime),
        ] {
            let d = parse_directive(&format!("#pragma omp for schedule({txt})")).unwrap();
            assert_eq!(
                d,
                Directive::For {
                    schedule: Some(ScheduleSpec { kind, chunk: None }),
                    reduction: None,
                    nowait: false
                }
            );
        }
    }

    #[test]
    fn simple_directives() {
        assert_eq!(
            parse_directive("#pragma omp barrier").unwrap(),
            Directive::Barrier
        );
        assert_eq!(parse_directive("!$OMP SINGLE").unwrap(), Directive::Single);
        assert_eq!(parse_directive("master").unwrap(), Directive::Master);
        assert_eq!(
            parse_directive("#pragma omp atomic").unwrap(),
            Directive::Atomic
        );
        assert_eq!(
            parse_directive("#pragma omp flush").unwrap(),
            Directive::Flush
        );
        assert_eq!(
            parse_directive("#pragma omp sections").unwrap(),
            Directive::Sections
        );
        assert_eq!(
            parse_directive("#pragma omp critical (update)").unwrap(),
            Directive::Critical {
                name: Some("update".into())
            }
        );
        assert_eq!(
            parse_directive("#pragma omp critical").unwrap(),
            Directive::Critical { name: None }
        );
    }

    #[test]
    fn reduction_min_max() {
        for (txt, op) in [("max", ReductionOp::Max), ("min", ReductionOp::Min)] {
            let d = parse_directive(&format!("#pragma omp for reduction({txt}: v)")).unwrap();
            assert_eq!(
                d,
                Directive::For {
                    schedule: None,
                    reduction: Some((op, "v".into())),
                    nowait: false
                }
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_directive("#pragma omp warp_drive").is_err());
        assert!(parse_directive("#pragma omp slipstream(SIDEWAYS_SYNC)").is_err());
        assert!(parse_directive("#pragma omp for schedule(dynamic, 0)").is_err());
        assert!(parse_directive("#pragma omp barrier extra").is_err());
        assert!(parse_directive("#pragma acc parallel").is_err());
        assert!(parse_directive("").is_err());
    }

    #[test]
    fn env_variable_forms() {
        assert_eq!(
            parse_omp_slipstream_env("GLOBAL_SYNC,2").unwrap(),
            EnvSlipstream::Enabled {
                sync: SlipSyncType::GlobalSync,
                tokens: 2
            }
        );
        assert_eq!(
            parse_omp_slipstream_env("local_sync").unwrap(),
            EnvSlipstream::Enabled {
                sync: SlipSyncType::LocalSync,
                tokens: 0
            }
        );
        assert_eq!(
            parse_omp_slipstream_env("NONE").unwrap(),
            EnvSlipstream::Disabled
        );
        assert_eq!(
            parse_omp_slipstream_env("1").unwrap(),
            EnvSlipstream::Enabled {
                sync: SlipSyncType::GlobalSync,
                tokens: 1
            }
        );
        assert!(parse_omp_slipstream_env("RUNTIME_SYNC").is_err());
        assert!(parse_omp_slipstream_env("").is_err());
        assert!(parse_omp_slipstream_env("GLOBAL_SYNC,2,3").is_err());
    }

    #[test]
    fn case_insensitive() {
        assert!(parse_directive("#PRAGMA OMP PARALLEL").is_ok());
        assert!(parse_omp_slipstream_env("Global_Sync, 1").is_ok());
    }
}
