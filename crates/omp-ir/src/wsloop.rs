//! Pure worksharing iteration-space math.
//!
//! Splitting a loop's iteration space among threads is arithmetic shared
//! by the runtime's scheduler and by the reference tracer, so it lives
//! here with no machine state attached. Iteration spaces are normalized to
//! `begin..end` with a positive step.

/// A contiguous chunk of the iteration space: `lo..hi` stepping by `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration value (inclusive).
    pub lo: i64,
    /// End of the chunk (exclusive).
    pub hi: i64,
}

impl Chunk {
    /// Number of iterations in the chunk for a given step.
    pub fn trip_count(&self, step: u64) -> u64 {
        if self.hi <= self.lo {
            0
        } else {
            ((self.hi - self.lo) as u64).div_ceil(step)
        }
    }
}

/// Total trip count of `begin..end` with `step`.
pub fn trip_count(begin: i64, end: i64, step: u64) -> u64 {
    if end <= begin {
        0
    } else {
        ((end - begin) as u64).div_ceil(step)
    }
}

/// Static schedule without a chunk clause: one contiguous block per
/// thread, sized `ceil(n / nthreads)` (the Omni/most-compilers default).
/// Returns the single chunk for `tid`, possibly empty.
pub fn static_block(begin: i64, end: i64, step: u64, nthreads: u64, tid: u64) -> Chunk {
    debug_assert!(tid < nthreads);
    let n = trip_count(begin, end, step);
    if n == 0 {
        return Chunk {
            lo: begin,
            hi: begin,
        };
    }
    let per = n.div_ceil(nthreads);
    let first_iter = (tid * per).min(n);
    let last_iter = ((tid + 1) * per).min(n);
    Chunk {
        lo: begin + (first_iter as i64) * step as i64,
        hi: begin + (last_iter as i64) * step as i64,
    }
}

/// Static schedule with a chunk clause: chunks of `chunk` iterations dealt
/// round-robin. Returns all chunks owned by `tid`, in iteration order.
pub fn static_chunked(
    begin: i64,
    end: i64,
    step: u64,
    nthreads: u64,
    tid: u64,
    chunk: u64,
) -> Vec<Chunk> {
    debug_assert!(tid < nthreads && chunk > 0);
    let n = trip_count(begin, end, step);
    let mut out = Vec::new();
    let mut c = tid * chunk;
    while c < n {
        let lo_it = c;
        let hi_it = (c + chunk).min(n);
        out.push(Chunk {
            lo: begin + lo_it as i64 * step as i64,
            hi: begin + hi_it as i64 * step as i64,
        });
        c += nthreads * chunk;
    }
    out
}

/// The next chunk a dynamic scheduler hands out, given `remaining_start`
/// (the first unassigned iteration index) and the chunk size. Pure helper
/// used by the runtime's shared counter protocol.
pub fn dynamic_next(
    begin: i64,
    end: i64,
    step: u64,
    remaining_start: u64,
    chunk: u64,
) -> Option<(Chunk, u64)> {
    let n = trip_count(begin, end, step);
    if remaining_start >= n {
        return None;
    }
    let hi_it = (remaining_start + chunk).min(n);
    Some((
        Chunk {
            lo: begin + remaining_start as i64 * step as i64,
            hi: begin + hi_it as i64 * step as i64,
        },
        hi_it,
    ))
}

/// The next chunk a guided scheduler hands out: chunk size is
/// `max(remaining / nthreads, min_chunk)`, geometrically decreasing.
pub fn guided_next(
    begin: i64,
    end: i64,
    step: u64,
    remaining_start: u64,
    nthreads: u64,
    min_chunk: u64,
) -> Option<(Chunk, u64)> {
    let n = trip_count(begin, end, step);
    if remaining_start >= n {
        return None;
    }
    let remaining = n - remaining_start;
    let size = (remaining / nthreads).max(min_chunk).max(1);
    dynamic_next(begin, end, step, remaining_start, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_counts() {
        assert_eq!(trip_count(0, 10, 1), 10);
        assert_eq!(trip_count(0, 10, 3), 4);
        assert_eq!(trip_count(5, 5, 1), 0);
        assert_eq!(trip_count(10, 5, 1), 0);
        assert_eq!(trip_count(-4, 4, 2), 4);
    }

    #[test]
    fn static_block_covers_space_exactly_once() {
        for (n, t) in [(100i64, 8u64), (7, 8), (64, 4), (1, 3), (0, 2)] {
            let mut seen = vec![0u32; n.max(0) as usize];
            for tid in 0..t {
                let c = static_block(0, n, 1, t, tid);
                for i in c.lo..c.hi {
                    seen[i as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "n={n} t={t}: {seen:?}");
        }
    }

    #[test]
    fn static_block_respects_step() {
        // 0..10 step 3 -> iterations {0,3,6,9}, 2 threads -> 2 each.
        let c0 = static_block(0, 10, 3, 2, 0);
        let c1 = static_block(0, 10, 3, 2, 1);
        assert_eq!(c0, Chunk { lo: 0, hi: 6 });
        assert_eq!(c1, Chunk { lo: 6, hi: 12 });
        assert_eq!(c0.trip_count(3), 2);
        assert_eq!(c1.trip_count(3), 2);
    }

    #[test]
    fn static_chunked_is_round_robin_and_complete() {
        let n = 23i64;
        let t = 3u64;
        let mut seen = vec![0u32; n as usize];
        for tid in 0..t {
            for c in static_chunked(0, n, 1, t, tid, 4) {
                for i in c.lo..c.hi {
                    seen[i as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
        // Thread 0 owns chunks starting at iterations 0 and 12.
        let t0 = static_chunked(0, n, 1, t, 0, 4);
        assert_eq!(t0, vec![Chunk { lo: 0, hi: 4 }, Chunk { lo: 12, hi: 16 }]);
    }

    #[test]
    fn dynamic_next_walks_the_space() {
        let mut start = 0;
        let mut chunks = Vec::new();
        while let Some((c, next)) = dynamic_next(0, 10, 1, start, 4) {
            chunks.push(c);
            start = next;
        }
        assert_eq!(
            chunks,
            vec![
                Chunk { lo: 0, hi: 4 },
                Chunk { lo: 4, hi: 8 },
                Chunk { lo: 8, hi: 10 }
            ]
        );
    }

    #[test]
    fn guided_chunks_decrease() {
        let mut start = 0;
        let mut sizes = Vec::new();
        while let Some((c, next)) = guided_next(0, 100, 1, start, 4, 1) {
            sizes.push(c.trip_count(1));
            start = next;
        }
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "guided sizes must not grow: {sizes:?}");
        }
        assert_eq!(sizes[0], 25);
    }

    #[test]
    fn empty_spaces_yield_nothing() {
        assert_eq!(dynamic_next(0, 0, 1, 0, 4), None);
        assert_eq!(guided_next(5, 5, 1, 0, 2, 1), None);
        let c = static_block(3, 3, 1, 4, 2);
        assert_eq!(c.trip_count(1), 0);
    }
}
