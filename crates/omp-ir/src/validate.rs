//! Static validation of kernel IR programs.
//!
//! The checks mirror what the Omni-based compiler of the paper guarantees
//! before emitting runtime calls: shared/private discipline is explicit,
//! worksharing constructs appear only inside parallel regions, barriers
//! are not nested inside worksharing bodies, and every id is in range.
//!
//! Each problem is a [`Diagnostic`] carrying a structured [`NodePath`] to
//! the offending construct — the same path currency the `omp-analyze`
//! crate uses for its findings.

use crate::expr::Expr;
use crate::node::{Node, Program};
use crate::path::{node_kind, NodePath, PathSeg};

/// One validation problem, located by a structured node path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path to the offending construct.
    pub path: NodePath,
    /// What is wrong there.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// A validation failure with every problem found (never empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// All problems found (never empty).
    pub problems: Vec<Diagnostic>,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<String> = self.problems.iter().map(|p| p.to_string()).collect();
        write!(f, "invalid program: {}", rendered.join("; "))
    }
}

impl std::error::Error for ValidationError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Serial part: only the master executes.
    Serial,
    /// Directly inside a parallel region.
    Parallel,
    /// Inside a worksharing/synchronization body within a region.
    Worksharing,
}

struct Validator<'p> {
    program: &'p Program,
    path: Vec<PathSeg>,
    problems: Vec<Diagnostic>,
}

impl<'p> Validator<'p> {
    fn diag(&mut self, message: impl Into<String>) {
        self.problems.push(Diagnostic {
            path: NodePath::from_segs(&self.path),
            message: message.into(),
        });
    }

    fn expr(&mut self, e: &Expr, what: &str) {
        if let Some(v) = e.max_var() {
            if v >= self.program.num_vars {
                self.diag(format!(
                    "{what}: variable v{v} out of range (num_vars={})",
                    self.program.num_vars
                ));
            }
        }
        if let Some(t) = e.max_table() {
            if t as usize >= self.program.tables.len() {
                self.diag(format!("{what}: table t{t} out of range"));
            }
        }
    }

    fn array(
        &mut self,
        id: crate::node::ArrayId,
        what: &str,
    ) -> Option<&'p crate::node::ArrayDecl> {
        if id.0 as usize >= self.program.arrays.len() {
            self.diag(format!("{what}: array a{} undeclared", id.0));
            None
        } else {
            Some(&self.program.arrays[id.0 as usize])
        }
    }

    /// Visit `n` as statement `idx` of the enclosing block. `Seq` nodes
    /// are transparent: their children take positions in the parent block.
    fn node(&mut self, n: &Node, ctx: Ctx, idx: u32) {
        if let Node::Seq(v) = n {
            for (k, c) in v.iter().enumerate() {
                self.node(c, ctx, k as u32);
            }
            return;
        }
        self.path.push(PathSeg {
            kind: node_kind(n),
            index: idx,
        });
        match n {
            Node::Seq(_) => unreachable!("handled above"),
            Node::Compute(e) => self.expr(e, "compute"),
            Node::Load { array, index } => {
                self.array(*array, "load");
                self.expr(index, "load index");
            }
            Node::Store { array, index } => {
                self.array(*array, "store");
                self.expr(index, "store index");
            }
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                if var.0 >= self.program.num_vars {
                    self.diag(format!("for: variable v{} out of range", var.0));
                }
                if *step == 0 {
                    self.diag("for: step must be positive (step 0 never advances)");
                }
                self.expr(begin, "for begin");
                self.expr(end, "for end");
                self.node(body, ctx, 0);
            }
            Node::Parallel { body, .. } => {
                if ctx != Ctx::Serial {
                    self.diag("nested parallel regions are not supported");
                }
                self.node(body, Ctx::Parallel, 0);
            }
            Node::SlipstreamSet(_) => {
                if ctx != Ctx::Serial {
                    self.diag("SLIPSTREAM global setting is only valid in the serial part");
                }
            }
            Node::ParFor {
                var,
                begin,
                end,
                body,
                reduction,
                ..
            } => {
                if ctx != Ctx::Parallel {
                    self.diag(match ctx {
                        Ctx::Serial => "worksharing 'for' outside a parallel region",
                        _ => "worksharing 'for' may not nest inside another construct",
                    });
                }
                if var.0 >= self.program.num_vars {
                    self.diag(format!("parfor: variable v{} out of range", var.0));
                }
                self.expr(begin, "parfor begin");
                self.expr(end, "parfor end");
                // Worksharing loops have no explicit stride in the IR (the
                // runtime always steps by +1), so a statically reversed
                // bound pair is the footprint a negative-stride source loop
                // leaves behind — and a zero-trip loop is a barrier with
                // extra steps. Neither has a defined scheduling contract in
                // the engine, so both are rejected here with a structured
                // path rather than silently doing nothing (or worse,
                // disagreeing between modes).
                if let (Expr::Const(b0), Expr::Const(e0)) = (begin, end) {
                    if e0 < b0 {
                        self.diag(format!(
                            "parfor: reversed constant bounds {b0}..{e0} \
                             (negative-stride loops must be normalized to \
                             ascending form before IR construction)"
                        ));
                    } else if e0 == b0 {
                        self.diag(format!(
                            "parfor: zero-trip constant bounds {b0}..{e0} \
                             (drop the loop or widen the bounds; the engine \
                             has no contract for empty worksharing)"
                        ));
                    }
                }
                if let Some(r) = reduction {
                    if let Some(decl) = self.array(r.target, "reduction target") {
                        if !decl.shared {
                            let name = decl.name.clone();
                            self.diag(format!("reduction target '{name}' must be shared"));
                        }
                    }
                    let ridx = r.index.clone();
                    self.expr(&ridx, "reduction index");
                }
                self.node(body, Ctx::Worksharing, 0);
            }
            Node::Barrier => {
                if ctx != Ctx::Parallel {
                    self.diag(match ctx {
                        Ctx::Serial => "barrier outside a parallel region",
                        _ => "barrier inside a worksharing/synchronization body",
                    });
                }
            }
            Node::Single(body) | Node::Master(body) => {
                if ctx != Ctx::Parallel {
                    self.diag("single/master must appear directly inside a parallel region");
                }
                self.node(body, Ctx::Worksharing, 0);
            }
            Node::Critical { body, .. } => {
                if ctx == Ctx::Serial {
                    self.diag("critical outside a parallel region");
                }
                self.node(body, Ctx::Worksharing, 0);
            }
            Node::Atomic { array, index } => {
                if ctx == Ctx::Serial {
                    self.diag("atomic outside a parallel region");
                }
                if let Some(decl) = self.array(*array, "atomic") {
                    if !decl.shared {
                        let name = decl.name.clone();
                        self.diag(format!("atomic target '{name}' must be shared"));
                    }
                }
                self.expr(index, "atomic index");
            }
            Node::Sections(secs) => {
                if ctx != Ctx::Parallel {
                    self.diag("sections must appear directly inside a parallel region");
                }
                if secs.is_empty() {
                    self.diag("sections construct with no sections");
                }
                for (k, s) in secs.iter().enumerate() {
                    self.node(s, Ctx::Worksharing, k as u32);
                }
            }
            Node::Flush => {
                if ctx == Ctx::Serial {
                    self.diag("flush outside a parallel region");
                }
            }
            Node::Io { bytes, .. } => {
                if *bytes == 0 {
                    self.diag("zero-byte I/O operation");
                }
            }
        }
        self.path.pop();
    }
}

/// Validate a program. Returns every problem found.
pub fn validate(program: &Program) -> Result<(), ValidationError> {
    let mut v = Validator {
        program,
        path: Vec::new(),
        problems: Vec::new(),
    };
    v.node(&program.body, Ctx::Serial, 0);
    if v.problems.is_empty() {
        Ok(())
    } else {
        Err(ValidationError {
            problems: v.problems,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Expr;
    use crate::node::{ReductionOp, SlipstreamClause};

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let a = b.shared_array("a", 10, 8);
        let r = b.shared_array("r", 1, 8);
        let i = b.var();
        b.slipstream(SlipstreamClause::default());
        b.parallel(|reg| {
            reg.par_for_reduce(None, i, 0, 10, ReductionOp::Sum, r, 0, |body| {
                body.load(a, Expr::v(i));
            });
            reg.barrier();
            reg.single(|s| s.compute(1));
            reg.critical("c", |c| c.store(a, 0));
            reg.atomic(a, 0);
        });
        validate(&b.build()).unwrap();
    }

    #[test]
    fn worksharing_outside_region_fails() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.serial(|s| {
            s.par_for(None, i, 0, 10, |body| body.compute(1));
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems[0].message.contains("outside a parallel region"));
        assert_eq!(e.problems[0].path.to_string(), "parfor[0]");
    }

    #[test]
    fn nested_parallel_fails() {
        let mut b = ProgramBuilder::new("bad");
        b.parallel(|r| {
            r.push(Node::Parallel {
                body: Box::new(Node::nop()),
                slipstream: None,
            });
        });
        let e = validate(&b.build()).unwrap_err();
        let p = e
            .problems
            .iter()
            .find(|p| p.message.contains("nested parallel"))
            .unwrap();
        assert_eq!(p.path.to_string(), "parallel[0]/parallel[0]");
    }

    #[test]
    fn barrier_inside_worksharing_fails() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 4, |body| body.barrier());
        });
        let e = validate(&b.build()).unwrap_err();
        let p = e
            .problems
            .iter()
            .find(|p| p.message.contains("barrier inside a worksharing"))
            .unwrap();
        assert_eq!(p.path.to_string(), "parallel[0]/parfor[0]/barrier[0]");
    }

    #[test]
    fn out_of_range_ids_fail() {
        use crate::expr::VarId;
        use crate::node::{ArrayId, Node};
        let p = Program {
            name: "bad".into(),
            arrays: vec![],
            tables: vec![],
            num_vars: 0,
            body: Node::Parallel {
                body: Box::new(Node::Seq(vec![
                    Node::Load {
                        array: ArrayId(3),
                        index: Expr::v(VarId(9)),
                    },
                    Node::Compute(Expr::c(7).index_into(crate::expr::TableId(1))),
                ])),
                slipstream: None,
            },
        };
        let e = validate(&p).unwrap_err();
        assert!(e.problems.iter().any(|p| p.message.contains("array a3")));
        assert!(e.problems.iter().any(|p| p.message.contains("variable v9")));
        assert!(e.problems.iter().any(|p| p.message.contains("table t1")));
        // Statement positions survive Seq flattening: the bad compute is
        // statement 1 of the region body.
        let c = e
            .problems
            .iter()
            .find(|p| p.message.contains("table t1"))
            .unwrap();
        assert_eq!(c.path.to_string(), "parallel[0]/compute[1]");
    }

    #[test]
    fn reduction_target_must_be_shared() {
        let mut b = ProgramBuilder::new("bad");
        let p = b.private_array("priv", 1, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for_reduce(None, i, 0, 4, ReductionOp::Sum, p, 0, |body| {
                body.compute(1)
            });
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e
            .problems
            .iter()
            .any(|p| p.message.contains("must be shared")));
    }

    #[test]
    fn slipstream_set_inside_region_fails() {
        let mut b = ProgramBuilder::new("bad");
        b.parallel(|r| {
            r.push(Node::SlipstreamSet(SlipstreamClause::default()));
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems.iter().any(|p| p.message.contains("serial part")));
    }

    #[test]
    fn empty_sections_fail() {
        let mut b = ProgramBuilder::new("bad");
        b.parallel(|r| r.sections(0, |_, _| {}));
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems.iter().any(|p| p.message.contains("no sections")));
    }

    #[test]
    fn zero_trip_parfor_is_rejected_with_path() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.parallel(|r| {
            r.compute(1);
            r.par_for(None, i, 5, 5, |body| body.compute(1));
        });
        let e = validate(&b.build()).unwrap_err();
        let p = e
            .problems
            .iter()
            .find(|p| p.message.contains("zero-trip"))
            .unwrap();
        assert_eq!(p.path.to_string(), "parallel[0]/parfor[1]");
    }

    #[test]
    fn reversed_bounds_parfor_is_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 10, 0, |body| body.compute(1));
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e
            .problems
            .iter()
            .any(|p| p.message.contains("reversed constant bounds 10..0")));
    }

    #[test]
    fn dynamic_bounds_are_not_rejected_statically() {
        // Non-constant bounds can legitimately evaluate to zero trips at
        // runtime (triangular inner work); only constant emptiness is a
        // static error.
        let mut b = ProgramBuilder::new("ok");
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, Expr::NumThreads * Expr::c(2), |body| {
                body.compute(1)
            });
        });
        validate(&b.build()).unwrap();
    }

    #[test]
    fn zero_step_for_is_rejected() {
        use crate::expr::VarId;
        let p = Program {
            name: "bad".into(),
            arrays: vec![],
            tables: vec![],
            num_vars: 1,
            body: Node::For {
                var: VarId(0),
                begin: Expr::c(0),
                end: Expr::c(4),
                step: 0,
                body: Box::new(Node::Compute(Expr::c(1))),
            },
        };
        let e = validate(&p).unwrap_err();
        let d = e
            .problems
            .iter()
            .find(|p| p.message.contains("step must be positive"))
            .unwrap();
        assert_eq!(d.path.to_string(), "for[0]");
    }

    #[test]
    fn error_display_includes_paths() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.serial(|s| s.par_for(None, i, 0, 10, |body| body.compute(1)));
        let e = validate(&b.build()).unwrap_err();
        let s = e.to_string();
        assert!(s.starts_with("invalid program: "));
        assert!(s.contains("parfor[0]: "));
    }
}
