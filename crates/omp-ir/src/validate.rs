//! Static validation of kernel IR programs.
//!
//! The checks mirror what the Omni-based compiler of the paper guarantees
//! before emitting runtime calls: shared/private discipline is explicit,
//! worksharing constructs appear only inside parallel regions, barriers
//! are not nested inside worksharing bodies, and every id is in range.

use crate::expr::Expr;
use crate::node::{Node, Program};

/// A validation failure with a path-like location description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// All problems found (never empty).
    pub problems: Vec<String>,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid program: {}", self.problems.join("; "))
    }
}

impl std::error::Error for ValidationError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Serial part: only the master executes.
    Serial,
    /// Directly inside a parallel region.
    Parallel,
    /// Inside a worksharing/synchronization body within a region.
    Worksharing,
}

struct Validator<'p> {
    program: &'p Program,
    problems: Vec<String>,
}

impl<'p> Validator<'p> {
    fn expr(&mut self, e: &Expr, what: &str) {
        if let Some(v) = e.max_var() {
            if v >= self.program.num_vars {
                self.problems.push(format!(
                    "{what}: variable v{v} out of range (num_vars={})",
                    self.program.num_vars
                ));
            }
        }
        if let Some(t) = e.max_table() {
            if t as usize >= self.program.tables.len() {
                self.problems
                    .push(format!("{what}: table t{t} out of range"));
            }
        }
    }

    fn array(
        &mut self,
        id: crate::node::ArrayId,
        what: &str,
    ) -> Option<&'p crate::node::ArrayDecl> {
        if id.0 as usize >= self.program.arrays.len() {
            self.problems
                .push(format!("{what}: array a{} undeclared", id.0));
            None
        } else {
            Some(&self.program.arrays[id.0 as usize])
        }
    }

    fn node(&mut self, n: &Node, ctx: Ctx) {
        match n {
            Node::Seq(v) => {
                for c in v {
                    self.node(c, ctx);
                }
            }
            Node::Compute(e) => self.expr(e, "compute"),
            Node::Load { array, index } => {
                self.array(*array, "load");
                self.expr(index, "load index");
            }
            Node::Store { array, index } => {
                self.array(*array, "store");
                self.expr(index, "store index");
            }
            Node::For {
                var,
                begin,
                end,
                body,
                ..
            } => {
                if var.0 >= self.program.num_vars {
                    self.problems
                        .push(format!("for: variable v{} out of range", var.0));
                }
                self.expr(begin, "for begin");
                self.expr(end, "for end");
                self.node(body, ctx);
            }
            Node::Parallel { body, .. } => {
                if ctx != Ctx::Serial {
                    self.problems
                        .push("nested parallel regions are not supported".into());
                }
                self.node(body, Ctx::Parallel);
            }
            Node::SlipstreamSet(_) => {
                if ctx != Ctx::Serial {
                    self.problems
                        .push("SLIPSTREAM global setting is only valid in the serial part".into());
                }
            }
            Node::ParFor {
                var,
                begin,
                end,
                body,
                reduction,
                ..
            } => {
                if ctx != Ctx::Parallel {
                    self.problems.push(match ctx {
                        Ctx::Serial => "worksharing 'for' outside a parallel region".into(),
                        _ => "worksharing 'for' may not nest inside another construct".into(),
                    });
                }
                if var.0 >= self.program.num_vars {
                    self.problems
                        .push(format!("parfor: variable v{} out of range", var.0));
                }
                self.expr(begin, "parfor begin");
                self.expr(end, "parfor end");
                if let Some(r) = reduction {
                    if let Some(decl) = self.array(r.target, "reduction target") {
                        if !decl.shared {
                            self.problems
                                .push(format!("reduction target '{}' must be shared", decl.name));
                        }
                    }
                    self.expr(&r.index, "reduction index");
                }
                self.node(body, Ctx::Worksharing);
            }
            Node::Barrier => {
                if ctx != Ctx::Parallel {
                    self.problems.push(match ctx {
                        Ctx::Serial => "barrier outside a parallel region".into(),
                        _ => "barrier inside a worksharing/synchronization body".into(),
                    });
                }
            }
            Node::Single(body) | Node::Master(body) => {
                if ctx != Ctx::Parallel {
                    self.problems
                        .push("single/master must appear directly inside a parallel region".into());
                }
                self.node(body, Ctx::Worksharing);
            }
            Node::Critical { body, .. } => {
                if ctx == Ctx::Serial {
                    self.problems
                        .push("critical outside a parallel region".into());
                }
                self.node(body, Ctx::Worksharing);
            }
            Node::Atomic { array, index } => {
                if ctx == Ctx::Serial {
                    self.problems
                        .push("atomic outside a parallel region".into());
                }
                if let Some(decl) = self.array(*array, "atomic") {
                    if !decl.shared {
                        self.problems
                            .push(format!("atomic target '{}' must be shared", decl.name));
                    }
                }
                self.expr(index, "atomic index");
            }
            Node::Sections(secs) => {
                if ctx != Ctx::Parallel {
                    self.problems
                        .push("sections must appear directly inside a parallel region".into());
                }
                if secs.is_empty() {
                    self.problems
                        .push("sections construct with no sections".into());
                }
                for s in secs {
                    self.node(s, Ctx::Worksharing);
                }
            }
            Node::Flush => {
                if ctx == Ctx::Serial {
                    self.problems.push("flush outside a parallel region".into());
                }
            }
            Node::Io { bytes, .. } => {
                if *bytes == 0 {
                    self.problems.push("zero-byte I/O operation".into());
                }
            }
        }
    }
}

/// Validate a program. Returns every problem found.
pub fn validate(program: &Program) -> Result<(), ValidationError> {
    let mut v = Validator {
        program,
        problems: Vec::new(),
    };
    v.node(&program.body, Ctx::Serial);
    if v.problems.is_empty() {
        Ok(())
    } else {
        Err(ValidationError {
            problems: v.problems,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Expr;
    use crate::node::{ReductionOp, SlipstreamClause};

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let a = b.shared_array("a", 10, 8);
        let r = b.shared_array("r", 1, 8);
        let i = b.var();
        b.slipstream(SlipstreamClause::default());
        b.parallel(|reg| {
            reg.par_for_reduce(None, i, 0, 10, ReductionOp::Sum, r, 0, |body| {
                body.load(a, Expr::v(i));
            });
            reg.barrier();
            reg.single(|s| s.compute(1));
            reg.critical("c", |c| c.store(a, 0));
            reg.atomic(a, 0);
        });
        validate(&b.build()).unwrap();
    }

    #[test]
    fn worksharing_outside_region_fails() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.serial(|s| {
            s.par_for(None, i, 0, 10, |body| body.compute(1));
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems[0].contains("outside a parallel region"));
    }

    #[test]
    fn nested_parallel_fails() {
        let mut b = ProgramBuilder::new("bad");
        b.parallel(|r| {
            r.push(Node::Parallel {
                body: Box::new(Node::nop()),
                slipstream: None,
            });
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems.iter().any(|p| p.contains("nested parallel")));
    }

    #[test]
    fn barrier_inside_worksharing_fails() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 4, |body| body.barrier());
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e
            .problems
            .iter()
            .any(|p| p.contains("barrier inside a worksharing")));
    }

    #[test]
    fn out_of_range_ids_fail() {
        use crate::expr::VarId;
        use crate::node::{ArrayId, Node};
        let p = Program {
            name: "bad".into(),
            arrays: vec![],
            tables: vec![],
            num_vars: 0,
            body: Node::Parallel {
                body: Box::new(Node::Seq(vec![
                    Node::Load {
                        array: ArrayId(3),
                        index: Expr::v(VarId(9)),
                    },
                    Node::Compute(Expr::c(7).index_into(crate::expr::TableId(1))),
                ])),
                slipstream: None,
            },
        };
        let e = validate(&p).unwrap_err();
        assert!(e.problems.iter().any(|p| p.contains("array a3")));
        assert!(e.problems.iter().any(|p| p.contains("variable v9")));
        assert!(e.problems.iter().any(|p| p.contains("table t1")));
    }

    #[test]
    fn reduction_target_must_be_shared() {
        let mut b = ProgramBuilder::new("bad");
        let p = b.private_array("priv", 1, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for_reduce(None, i, 0, 4, ReductionOp::Sum, p, 0, |body| {
                body.compute(1)
            });
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems.iter().any(|p| p.contains("must be shared")));
    }

    #[test]
    fn slipstream_set_inside_region_fails() {
        let mut b = ProgramBuilder::new("bad");
        b.parallel(|r| {
            r.push(Node::SlipstreamSet(SlipstreamClause::default()));
        });
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems.iter().any(|p| p.contains("serial part")));
    }

    #[test]
    fn empty_sections_fail() {
        let mut b = ProgramBuilder::new("bad");
        b.parallel(|r| r.sections(0, |_, _| {}));
        let e = validate(&b.build()).unwrap_err();
        assert!(e.problems.iter().any(|p| p.contains("no sections")));
    }
}
