//! Lowering parsed directives onto the builder API.
//!
//! This is the bridge between the textual OpenMP surface (what a
//! programmer of the paper's system writes) and the kernel IR: pragma
//! strings parse into [`Directive`]s, and the helpers here apply them to
//! a [`ProgramBuilder`]/[`BlockBuilder`], so a kernel can be assembled the
//! way annotated source reads:
//!
//! ```
//! use omp_ir::lower::{Pragma, PragmaBlock};
//! use omp_ir::{Expr, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("annotated");
//! let a = b.shared_array("a", 128, 8);
//! let i = b.var();
//! b.pragma_parallel("#pragma omp parallel slipstream(LOCAL_SYNC, 1)", move |r| {
//!     r.pragma_for("#pragma omp for schedule(dynamic, 8)", i, 0, 128, move |body| {
//!         body.load(a, Expr::v(i));
//!     });
//! })
//! .unwrap();
//! let p = b.build();
//! assert_eq!(p.name, "annotated");
//! ```

use crate::builder::{BlockBuilder, ProgramBuilder};
use crate::directive::{parse_directive, Directive, DirectiveError};
use crate::expr::{Expr, VarId};

fn err<T>(msg: impl Into<String>) -> Result<T, DirectiveError> {
    Err(DirectiveError(msg.into()))
}

/// Pragma-driven construction, mirroring annotated source.
pub trait Pragma {
    /// `#pragma omp parallel [slipstream(...)]` introducing a region.
    fn pragma_parallel(
        &mut self,
        pragma: &str,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError>;

    /// A standalone `#pragma omp slipstream(...)` in the serial part
    /// (global setting).
    fn pragma_slipstream(&mut self, pragma: &str) -> Result<(), DirectiveError>;
}

impl Pragma for ProgramBuilder {
    fn pragma_parallel(
        &mut self,
        pragma: &str,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError> {
        match parse_directive(pragma)? {
            Directive::Parallel { slipstream } => {
                self.parallel_with(slipstream, f);
                Ok(())
            }
            other => err(format!("expected a parallel directive, got {other:?}")),
        }
    }

    fn pragma_slipstream(&mut self, pragma: &str) -> Result<(), DirectiveError> {
        match parse_directive(pragma)? {
            Directive::Slipstream(clause) => {
                self.slipstream(clause);
                Ok(())
            }
            other => err(format!("expected a slipstream directive, got {other:?}")),
        }
    }
}

/// Pragma-driven constructs inside a region.
pub trait PragmaBlock {
    /// `#pragma omp for [schedule(...)] [reduction(op: target)] [nowait]`
    /// over `var in begin..end`. A reduction clause requires the target to
    /// be resolvable: pass it through [`PragmaBlock::pragma_for_reduce`]
    /// instead (the textual variable name cannot name an IR array).
    fn pragma_for(
        &mut self,
        pragma: &str,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError>;

    /// `#pragma omp for reduction(op: x)` with the reduction target bound
    /// to an IR array cell (the lowering of the named variable).
    #[allow(clippy::too_many_arguments)]
    fn pragma_for_reduce(
        &mut self,
        pragma: &str,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        target: crate::node::ArrayId,
        target_index: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError>;

    /// A simple construct pragma: `barrier`, `single`, `master`,
    /// `critical [(name)]`, `flush`, or `sections` (with `f` building the
    /// body; ignored for `barrier`/`flush`).
    fn pragma_construct(
        &mut self,
        pragma: &str,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError>;
}

impl PragmaBlock for BlockBuilder {
    fn pragma_for(
        &mut self,
        pragma: &str,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError> {
        match parse_directive(pragma)? {
            Directive::For {
                schedule,
                reduction: None,
                nowait,
            } => {
                if nowait {
                    self.par_for_nowait(schedule, var, begin, end, f);
                } else {
                    self.par_for(schedule, var, begin, end, f);
                }
                Ok(())
            }
            Directive::For {
                reduction: Some(_), ..
            } => err("reduction clause needs pragma_for_reduce (to bind the target)"),
            other => err(format!("expected a for directive, got {other:?}")),
        }
    }

    fn pragma_for_reduce(
        &mut self,
        pragma: &str,
        var: VarId,
        begin: impl Into<Expr>,
        end: impl Into<Expr>,
        target: crate::node::ArrayId,
        target_index: impl Into<Expr>,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError> {
        match parse_directive(pragma)? {
            Directive::For {
                schedule,
                reduction: Some((op, _name)),
                nowait,
            } => {
                if nowait {
                    return err("reduction loops keep their implicit barrier");
                }
                self.par_for_reduce(schedule, var, begin, end, op, target, target_index, f);
                Ok(())
            }
            Directive::For {
                reduction: None, ..
            } => err("pragma_for_reduce requires a reduction clause"),
            other => err(format!("expected a for directive, got {other:?}")),
        }
    }

    fn pragma_construct(
        &mut self,
        pragma: &str,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> Result<(), DirectiveError> {
        match parse_directive(pragma)? {
            Directive::Barrier => {
                self.barrier();
                Ok(())
            }
            Directive::Flush => {
                self.flush();
                Ok(())
            }
            Directive::Single => {
                self.single(f);
                Ok(())
            }
            Directive::Master => {
                self.master(f);
                Ok(())
            }
            Directive::Critical { name } => {
                self.critical(name.as_deref().unwrap_or("<unnamed>"), f);
                Ok(())
            }
            Directive::Sections => {
                // A single textual `sections` pragma builds one section
                // body; multi-section forms use the builder API directly.
                let mut f = Some(f);
                self.sections(1, move |_, b| {
                    if let Some(f) = f.take() {
                        f(b);
                    }
                });
                Ok(())
            }
            other => err(format!("not a construct directive: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, ScheduleSpec, SlipSyncType};
    use crate::validate::validate;

    #[test]
    fn annotated_program_assembles_and_validates() {
        let mut b = ProgramBuilder::new("ann");
        let a = b.shared_array("a", 64, 8);
        let sum = b.shared_array("sum", 1, 8);
        let i = b.var();
        b.pragma_slipstream("!$OMP SLIPSTREAM(RUNTIME_SYNC)")
            .unwrap();
        b.pragma_parallel("#pragma omp parallel", move |r| {
            r.pragma_for(
                "#pragma omp for schedule(dynamic, 4)",
                i,
                0,
                64,
                move |body| {
                    body.load(a, Expr::v(i));
                },
            )
            .unwrap();
            r.pragma_construct("#pragma omp barrier", |_| {}).unwrap();
            r.pragma_for_reduce(
                "#pragma omp for reduction(+: total)",
                i,
                0,
                64,
                sum,
                0,
                move |body| {
                    body.load(a, Expr::v(i));
                },
            )
            .unwrap();
            r.pragma_construct("#pragma omp single", |s| s.compute(5))
                .unwrap();
            r.pragma_construct("#pragma omp critical (u)", |c| c.store(a, 0))
                .unwrap();
            r.pragma_construct("#pragma omp flush", |_| {}).unwrap();
        })
        .unwrap();
        let p = b.build();
        validate(&p).unwrap();
        // The global setting came through.
        let has_runtime_set = matches!(
            &p.body,
            Node::Seq(v) if v.iter().any(|n| matches!(
                n,
                Node::SlipstreamSet(c) if c.sync == SlipSyncType::RuntimeSync
            ))
        );
        assert!(has_runtime_set);
    }

    #[test]
    fn parallel_pragma_carries_slipstream_clause() {
        let mut b = ProgramBuilder::new("pc");
        b.pragma_parallel("#pragma omp parallel slipstream(LOCAL_SYNC, 2)", |_| {})
            .unwrap();
        let p = b.build();
        match &p.body {
            Node::Parallel { slipstream, .. } => {
                let c = slipstream.expect("clause attached");
                assert_eq!(c.sync, SlipSyncType::LocalSync);
                assert_eq!(c.tokens, 2);
            }
            other => panic!("expected Parallel, got {other:?}"),
        }
    }

    #[test]
    fn nowait_and_schedule_flow_through() {
        let mut b = ProgramBuilder::new("nw");
        let a = b.shared_array("a", 8, 8);
        let i = b.var();
        b.pragma_parallel("#pragma omp parallel", move |r| {
            r.pragma_for(
                "#pragma omp for schedule(guided, 2) nowait",
                i,
                0,
                8,
                move |x| {
                    x.load(a, Expr::v(i));
                },
            )
            .unwrap();
        })
        .unwrap();
        let p = b.build();
        fn find_parfor(n: &Node) -> Option<(Option<ScheduleSpec>, bool)> {
            match n {
                Node::ParFor { sched, nowait, .. } => Some((*sched, *nowait)),
                Node::Seq(v) => v.iter().find_map(find_parfor),
                Node::Parallel { body, .. } => find_parfor(body),
                _ => None,
            }
        }
        let (sched, nowait) = find_parfor(&p.body).unwrap();
        assert!(nowait);
        assert_eq!(
            sched,
            Some(ScheduleSpec {
                kind: crate::node::ScheduleKind::Guided,
                chunk: Some(2)
            })
        );
    }

    #[test]
    fn wrong_directive_kinds_are_rejected() {
        let mut b = ProgramBuilder::new("bad");
        assert!(b.pragma_parallel("#pragma omp barrier", |_| {}).is_err());
        assert!(b.pragma_slipstream("#pragma omp parallel").is_err());
        let mut blk = BlockBuilder::default();
        let i = VarId(0);
        assert!(blk
            .pragma_for("#pragma omp parallel", i, 0, 4, |_| {})
            .is_err());
        assert!(
            blk.pragma_for("#pragma omp for reduction(+: x)", i, 0, 4, |_| {})
                .is_err(),
            "reduction requires pragma_for_reduce"
        );
        assert!(blk.pragma_construct("#pragma omp for", |_| {}).is_err());
    }
}
