//! Reference tracer: machine-independent operation counts.
//!
//! Walks a program the way an idealized OpenMP runtime would and counts
//! user-level operations (loads, stores, atomics, compute cycles, I/O) and
//! synchronization episodes. The machine interpreter in the `slipstream`
//! crate must produce exactly these user-operation totals when running in
//! single mode — the integration tests use this as a semantic oracle.
//!
//! Totals are deterministic even for dynamic/guided schedules (every
//! iteration executes exactly once, somewhere); *per-thread* counts are
//! only meaningful for fully static programs, and
//! [`TraceSummary::per_thread_deterministic`] says whether they are.

use crate::expr::{SimpleCtx, VarId};
use crate::node::{Node, Program, ScheduleKind, ScheduleSpec};
use crate::wsloop;

/// Operation counts for one thread (or totals across the team).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// User loads.
    pub loads: u64,
    /// User stores.
    pub stores: u64,
    /// Atomic updates.
    pub atomics: u64,
    /// Busy cycles requested by `Compute` nodes.
    pub compute_cycles: u64,
    /// Input operations.
    pub io_in: u64,
    /// Output operations.
    pub io_out: u64,
}

impl OpCounts {
    fn merge(&mut self, o: &OpCounts) {
        self.loads += o.loads;
        self.stores += o.stores;
        self.atomics += o.atomics;
        self.compute_cycles += o.compute_cycles;
        self.io_in += o.io_in;
        self.io_out += o.io_out;
    }
}

/// Result of tracing a program at a given team size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Team size used.
    pub num_threads: u64,
    /// Per-thread user-operation counts (see
    /// [`Self::per_thread_deterministic`]).
    pub per_thread: Vec<OpCounts>,
    /// Team-wide totals (always deterministic).
    pub total: OpCounts,
    /// Barrier episodes (explicit + implicit), counted once per episode.
    pub barrier_episodes: u64,
    /// Critical-section entries across the team.
    pub critical_entries: u64,
    /// Reduction combines across the team.
    pub reduction_combines: u64,
    /// Parallel regions entered.
    pub parallel_regions: u64,
    /// False when the program uses dynamic/guided schedules, `single`, or
    /// `sections`, whose thread assignment is timing-dependent; totals
    /// remain exact but per-thread counts attribute such work to thread 0.
    pub per_thread_deterministic: bool,
}

struct Tracer<'p> {
    program: &'p Program,
    nthreads: u64,
    per_thread: Vec<OpCounts>,
    barrier_episodes: u64,
    critical_entries: u64,
    reduction_combines: u64,
    parallel_regions: u64,
    deterministic: bool,
}

impl<'p> Tracer<'p> {
    fn ctx(&self, tid: u64) -> SimpleCtx {
        let mut c = SimpleCtx::new(
            self.program.num_vars as usize,
            tid as i64,
            self.nthreads as i64,
        );
        c.tables = self.program.tables.clone();
        c
    }

    /// Execute the body for iteration range [lo, hi) of var `var`.
    #[allow(clippy::too_many_arguments)]
    fn run_chunk(
        &mut self,
        tid: u64,
        ctx: &mut SimpleCtx,
        var: VarId,
        lo: i64,
        hi: i64,
        step: u64,
        body: &Node,
    ) {
        let mut i = lo;
        while i < hi {
            ctx.vars[var.0 as usize] = i;
            self.serial_node(tid, ctx, body);
            i += step as i64;
        }
    }

    /// Statements legal inside a worksharing body or serial code (no team
    /// constructs).
    fn serial_node(&mut self, tid: u64, ctx: &mut SimpleCtx, n: &Node) {
        match n {
            Node::Seq(v) => {
                for c in v {
                    self.serial_node(tid, ctx, c);
                }
            }
            Node::Compute(e) => {
                self.per_thread[tid as usize].compute_cycles += e.eval(ctx).max(0) as u64;
            }
            Node::Load { index, .. } => {
                index.eval(ctx);
                self.per_thread[tid as usize].loads += 1;
            }
            Node::Store { index, .. } => {
                index.eval(ctx);
                self.per_thread[tid as usize].stores += 1;
            }
            Node::Atomic { index, .. } => {
                index.eval(ctx);
                self.per_thread[tid as usize].atomics += 1;
            }
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                let lo = begin.eval(ctx);
                let hi = end.eval(ctx);
                self.run_chunk(tid, ctx, *var, lo, hi, *step, body);
            }
            Node::Io { input, .. } => {
                if *input {
                    self.per_thread[tid as usize].io_in += 1;
                } else {
                    self.per_thread[tid as usize].io_out += 1;
                }
            }
            Node::Critical { body, .. } => {
                self.critical_entries += 1;
                self.serial_node(tid, ctx, body);
            }
            Node::Flush => {}
            other => panic!("construct not valid here in trace: {other:?}"),
        }
    }

    /// One thread's walk of a parallel-region body. Constructs whose
    /// executor is timing-dependent run on tid 0 and mark the trace
    /// non-deterministic per-thread.
    fn region_node(&mut self, tid: u64, ctx: &mut SimpleCtx, n: &Node) {
        match n {
            Node::Seq(v) => {
                for c in v {
                    self.region_node(tid, ctx, c);
                }
            }
            Node::ParFor {
                sched,
                var,
                begin,
                end,
                body,
                reduction,
                nowait,
            } => {
                let lo = begin.eval(ctx);
                let hi = end.eval(ctx);
                let spec = sched.unwrap_or(ScheduleSpec {
                    kind: ScheduleKind::Static,
                    chunk: None,
                });
                match spec.kind {
                    ScheduleKind::Static => match spec.chunk {
                        None => {
                            let c = wsloop::static_block(lo, hi, 1, self.nthreads, tid);
                            self.run_chunk(tid, ctx, *var, c.lo, c.hi, 1, body);
                        }
                        Some(ch) => {
                            for c in wsloop::static_chunked(lo, hi, 1, self.nthreads, tid, ch) {
                                self.run_chunk(tid, ctx, *var, c.lo, c.hi, 1, body);
                            }
                        }
                    },
                    ScheduleKind::Dynamic
                    | ScheduleKind::Guided
                    | ScheduleKind::Affinity
                    | ScheduleKind::Runtime => {
                        self.deterministic = false;
                        if tid == 0 {
                            self.run_chunk(tid, ctx, *var, lo, hi, 1, body);
                        }
                    }
                }
                if reduction.is_some() {
                    // One combine per team member (each thread walks this
                    // node once).
                    self.reduction_combines += 1;
                }
                if !nowait && tid == 0 {
                    self.barrier_episodes += 1;
                }
            }
            Node::Barrier => {
                if tid == 0 {
                    self.barrier_episodes += 1;
                }
            }
            Node::Single(body) => {
                self.deterministic = false;
                if tid == 0 {
                    self.serial_node(tid, ctx, body);
                    self.barrier_episodes += 1; // implicit end barrier
                }
            }
            Node::Master(body) => {
                if tid == 0 {
                    self.serial_node(tid, ctx, body);
                }
            }
            Node::Sections(secs) => {
                self.deterministic = false;
                if tid == 0 {
                    for s in secs {
                        self.serial_node(tid, ctx, s);
                    }
                    self.barrier_episodes += 1; // implicit end barrier
                }
            }
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                // A sequential loop in region context may contain
                // worksharing constructs (the common "iteration loop
                // inside one parallel region" idiom); walk its body at
                // region level.
                let lo = begin.eval(ctx);
                let hi = end.eval(ctx);
                let mut i = lo;
                while i < hi {
                    ctx.vars[var.0 as usize] = i;
                    self.region_node(tid, ctx, body);
                    i += *step as i64;
                }
            }
            other => self.serial_node(tid, ctx, other),
        }
    }

    fn top(&mut self, n: &Node) {
        match n {
            Node::Seq(v) => {
                for c in v {
                    self.top(c);
                }
            }
            Node::Parallel { body, .. } => {
                self.parallel_regions += 1;
                for tid in 0..self.nthreads {
                    let mut ctx = self.ctx(tid);
                    self.region_node(tid, &mut ctx, body);
                }
                self.barrier_episodes += 1; // implicit region-end barrier
            }
            Node::SlipstreamSet(_) => {}
            other => {
                // Serial code runs on the master (thread 0).
                let mut ctx = self.ctx(0);
                self.serial_node(0, &mut ctx, other);
            }
        }
    }
}

/// Trace `program` with a team of `num_threads`.
pub fn trace(program: &Program, num_threads: u64) -> TraceSummary {
    assert!(num_threads > 0);
    let mut t = Tracer {
        program,
        nthreads: num_threads,
        per_thread: vec![OpCounts::default(); num_threads as usize],
        barrier_episodes: 0,
        critical_entries: 0,
        reduction_combines: 0,
        parallel_regions: 0,
        deterministic: true,
    };
    t.top(&program.body);
    let mut total = OpCounts::default();
    for pt in &t.per_thread {
        total.merge(pt);
    }
    TraceSummary {
        num_threads,
        per_thread: t.per_thread,
        total,
        barrier_episodes: t.barrier_episodes,
        critical_entries: t.critical_entries,
        reduction_combines: t.reduction_combines,
        parallel_regions: t.parallel_regions,
        per_thread_deterministic: t.deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Expr;
    use crate::node::ReductionOp;

    fn saxpy(n: i64) -> Program {
        let mut b = ProgramBuilder::new("saxpy");
        let x = b.shared_array("x", n as u64, 8);
        let y = b.shared_array("y", n as u64, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, n, |body| {
                body.load(x, Expr::v(i));
                body.load(y, Expr::v(i));
                body.compute(2);
                body.store(y, Expr::v(i));
            });
        });
        b.build()
    }

    #[test]
    fn static_loop_totals_are_exact() {
        let p = saxpy(100);
        let t = trace(&p, 4);
        assert_eq!(t.total.loads, 200);
        assert_eq!(t.total.stores, 100);
        assert_eq!(t.total.compute_cycles, 200);
        assert!(t.per_thread_deterministic);
        // Blocked static: each thread gets 25 iterations.
        for pt in &t.per_thread {
            assert_eq!(pt.loads, 50);
            assert_eq!(pt.stores, 25);
        }
        // Implicit loop barrier + region-end barrier.
        assert_eq!(t.barrier_episodes, 2);
        assert_eq!(t.parallel_regions, 1);
    }

    #[test]
    fn totals_independent_of_team_size() {
        let p = saxpy(97);
        let t2 = trace(&p, 2);
        let t8 = trace(&p, 8);
        assert_eq!(t2.total, t8.total);
    }

    #[test]
    fn dynamic_totals_match_static_totals() {
        let n = 60i64;
        let build = |sched| {
            let mut b = ProgramBuilder::new("d");
            let a = b.shared_array("a", n as u64, 8);
            let i = b.var();
            b.parallel(move |r| {
                r.par_for(sched, i, 0, n, |body| {
                    body.load(a, Expr::v(i));
                });
            });
            b.build()
        };
        let st = trace(&build(None), 4);
        let dy = trace(&build(Some(crate::node::ScheduleSpec::dynamic(4))), 4);
        assert_eq!(st.total, dy.total);
        assert!(st.per_thread_deterministic);
        assert!(!dy.per_thread_deterministic);
    }

    #[test]
    fn nested_sequential_loops_multiply() {
        let mut b = ProgramBuilder::new("n2");
        let a = b.shared_array("a", 64, 8);
        let i = b.var();
        let j = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 8, |body| {
                body.for_loop(j, 0, 8, |inner| {
                    inner.load(a, Expr::v(i) * 8 + Expr::v(j));
                });
            });
        });
        let t = trace(&b.build(), 2);
        assert_eq!(t.total.loads, 64);
    }

    #[test]
    fn loop_bound_depending_on_induction_var() {
        // Triangular loop: sum_{i=0}^{9} i = 45 loads.
        let mut b = ProgramBuilder::new("tri");
        let a = b.shared_array("a", 10, 8);
        let i = b.var();
        let j = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 10, |body| {
                body.for_loop(j, 0, Expr::v(i), |inner| {
                    inner.load(a, Expr::v(j));
                });
            });
        });
        let t = trace(&b.build(), 3);
        assert_eq!(t.total.loads, 45);
    }

    #[test]
    fn master_single_sections_counts() {
        let mut b = ProgramBuilder::new("ms");
        let a = b.shared_array("a", 8, 8);
        b.parallel(|r| {
            r.master(|m| m.store(a, 0));
            r.single(|s| s.store(a, 1));
            r.sections(3, |idx, sec| sec.store(a, idx as i64));
            r.critical("c", |c| c.load(a, 0));
        });
        let t = trace(&b.build(), 4);
        // master once + single once + 3 sections = 5 stores total.
        assert_eq!(t.total.stores, 5);
        // critical entered by all 4 threads.
        assert_eq!(t.total.loads, 4);
        assert_eq!(t.critical_entries, 4);
        // single end + sections end + region end = 3 episodes.
        assert_eq!(t.barrier_episodes, 3);
        assert!(!t.per_thread_deterministic);
    }

    #[test]
    fn reduction_combines_counted_per_thread() {
        let mut b = ProgramBuilder::new("red");
        let a = b.shared_array("a", 100, 8);
        let r0 = b.shared_array("sum", 1, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for_reduce(None, i, 0, 100, ReductionOp::Sum, r0, 0, |body| {
                body.load(a, Expr::v(i));
            });
        });
        let t = trace(&b.build(), 8);
        assert_eq!(t.reduction_combines, 8);
    }

    #[test]
    fn serial_code_runs_once_on_master() {
        let mut b = ProgramBuilder::new("s");
        let a = b.shared_array("a", 4, 8);
        b.serial(|s| {
            s.io(true, 1024);
            s.store(a, 0);
        });
        b.parallel(|r| r.flush());
        let t = trace(&b.build(), 4);
        assert_eq!(t.total.io_in, 1);
        assert_eq!(t.total.stores, 1);
        assert_eq!(t.per_thread[0].stores, 1);
        assert_eq!(t.per_thread[1].stores, 0);
    }
}
