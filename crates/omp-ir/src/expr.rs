//! Integer expressions over private thread state.
//!
//! Slipstream relies on the property that "control flow and address
//! generation rely mostly on private variables" (paper Section 2.1). The
//! IR enforces it: every expression is a function of loop variables, the
//! thread id/count, constants, and read-only host-side index tables (used
//! to model irregular accesses such as CG's sparse gathers). Expressions
//! never read simulated shared memory, so the A-stream computes the same
//! addresses and trip counts as its R-stream by construction.

use std::ops;

/// A private integer variable slot (loop counters, temporaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub u32);

/// A read-only host-side integer table (e.g., sparse row pointers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (divide-by-zero evaluates to 0, keeping kernels total).
    Div,
    /// Remainder (mod-by-zero evaluates to 0).
    Mod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// An integer expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal constant.
    Const(i64),
    /// Read a private variable.
    Var(VarId),
    /// The OpenMP thread id within the current team.
    ThreadId,
    /// The OpenMP team size.
    NumThreads,
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Host-table lookup: `table[index]` (out-of-range indices clamp).
    Table(TableId, Box<Expr>),
}

impl Expr {
    /// Literal constant shorthand.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Variable shorthand.
    pub fn v(var: VarId) -> Expr {
        Expr::Var(var)
    }

    /// `min(self, other)`.
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(other.into()))
    }

    /// `max(self, other)`.
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(other.into()))
    }

    /// Remainder (named like the operator; total: mod-by-zero yields 0,
    /// unlike `std::ops::Rem`, which is why the trait is not implemented).
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Mod, Box::new(self), Box::new(other.into()))
    }

    /// Table lookup `table[self]`.
    pub fn index_into(self, table: TableId) -> Expr {
        Expr::Table(table, Box::new(self))
    }

    /// Largest `VarId` referenced, if any (for validation).
    pub fn max_var(&self) -> Option<u32> {
        match self {
            Expr::Const(_) | Expr::ThreadId | Expr::NumThreads => None,
            Expr::Var(v) => Some(v.0),
            Expr::Bin(_, a, b) => match (a.max_var(), b.max_var()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
            Expr::Table(_, e) => e.max_var(),
        }
    }

    /// True if the expression reads private variable `v` anywhere.
    pub fn references_var(&self, v: VarId) -> bool {
        match self {
            Expr::Const(_) | Expr::ThreadId | Expr::NumThreads => false,
            Expr::Var(w) => *w == v,
            Expr::Bin(_, a, b) => a.references_var(v) || b.references_var(v),
            Expr::Table(_, e) => e.references_var(v),
        }
    }

    /// True if the expression depends on the thread id anywhere.
    pub fn uses_thread_id(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::NumThreads => false,
            Expr::ThreadId => true,
            Expr::Bin(_, a, b) => a.uses_thread_id() || b.uses_thread_id(),
            Expr::Table(_, e) => e.uses_thread_id(),
        }
    }

    /// True if the expression performs any host-table lookup.
    pub fn uses_table(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::ThreadId | Expr::NumThreads => false,
            Expr::Bin(_, a, b) => a.uses_table() || b.uses_table(),
            Expr::Table(..) => true,
        }
    }

    /// Fold to a constant when the expression depends on nothing but
    /// literals and (if `nthreads` is supplied) the team size. Variables,
    /// the thread id, and table lookups make the result `None`. Evaluation
    /// follows the total [`Expr::eval`] semantics exactly (wrapping
    /// arithmetic, division by zero yields 0).
    pub fn const_fold(&self, nthreads: Option<i64>) -> Option<i64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Var(_) | Expr::ThreadId | Expr::Table(..) => None,
            Expr::NumThreads => nthreads,
            Expr::Bin(op, a, b) => {
                let x = a.const_fold(nthreads)?;
                let y = b.const_fold(nthreads)?;
                Some(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                })
            }
        }
    }

    /// Largest `TableId` referenced, if any (for validation).
    pub fn max_table(&self) -> Option<u32> {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::ThreadId | Expr::NumThreads => None,
            Expr::Bin(_, a, b) => match (a.max_table(), b.max_table()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
            Expr::Table(t, e) => Some(e.max_table().map_or(t.0, |m| m.max(t.0))),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Const(v)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Expr {
        Expr::Var(v)
    }
}

macro_rules! impl_bin_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<T: Into<Expr>> ops::$trait<T> for Expr {
            type Output = Expr;
            fn $method(self, rhs: T) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

impl_bin_op!(Add, add, BinOp::Add);
impl_bin_op!(Sub, sub, BinOp::Sub);
impl_bin_op!(Mul, mul, BinOp::Mul);
impl_bin_op!(Div, div, BinOp::Div);

/// Evaluation context: supplies variable values, team info, and tables.
pub trait EvalCtx {
    /// Value of a private variable.
    fn var(&self, v: VarId) -> i64;
    /// OpenMP thread id.
    fn thread_id(&self) -> i64;
    /// OpenMP team size.
    fn num_threads(&self) -> i64;
    /// Table cell `table[idx]`, with out-of-range clamping.
    fn table(&self, t: TableId, idx: i64) -> i64;
}

impl Expr {
    /// Evaluate in a context. Total: division by zero yields 0, table
    /// indices clamp.
    pub fn eval<C: EvalCtx>(&self, ctx: &C) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(v) => ctx.var(*v),
            Expr::ThreadId => ctx.thread_id(),
            Expr::NumThreads => ctx.num_threads(),
            Expr::Bin(op, a, b) => {
                let x = a.eval(ctx);
                let y = b.eval(ctx);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                }
            }
            Expr::Table(t, e) => ctx.table(*t, e.eval(ctx)),
        }
    }
}

/// Simple evaluation context for tests and the reference tracer.
#[derive(Debug, Clone)]
pub struct SimpleCtx {
    /// Private variable slots.
    pub vars: Vec<i64>,
    /// Thread id.
    pub tid: i64,
    /// Team size.
    pub nthreads: i64,
    /// Host tables.
    pub tables: Vec<Vec<i64>>,
}

impl SimpleCtx {
    /// A context with `nvars` zeroed variables.
    pub fn new(nvars: usize, tid: i64, nthreads: i64) -> Self {
        SimpleCtx {
            vars: vec![0; nvars],
            tid,
            nthreads,
            tables: Vec::new(),
        }
    }
}

impl EvalCtx for SimpleCtx {
    fn var(&self, v: VarId) -> i64 {
        self.vars[v.0 as usize]
    }
    fn thread_id(&self) -> i64 {
        self.tid
    }
    fn num_threads(&self) -> i64 {
        self.nthreads
    }
    fn table(&self, t: TableId, idx: i64) -> i64 {
        let tab = &self.tables[t.0 as usize];
        if tab.is_empty() {
            return 0;
        }
        let i = idx.clamp(0, tab.len() as i64 - 1) as usize;
        tab[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_evaluates() {
        let ctx = SimpleCtx::new(2, 3, 8);
        let e = (Expr::c(10) + Expr::c(5)) * Expr::c(2) - Expr::c(6) / Expr::c(3);
        assert_eq!(e.eval(&ctx), 28);
    }

    #[test]
    fn vars_thread_id_and_count() {
        let mut ctx = SimpleCtx::new(2, 3, 8);
        ctx.vars[1] = 42;
        assert_eq!(Expr::v(VarId(1)).eval(&ctx), 42);
        assert_eq!(Expr::ThreadId.eval(&ctx), 3);
        assert_eq!(Expr::NumThreads.eval(&ctx), 8);
        let e = Expr::ThreadId * Expr::v(VarId(1)) + Expr::NumThreads;
        assert_eq!(e.eval(&ctx), 3 * 42 + 8);
    }

    #[test]
    fn division_and_mod_by_zero_are_total() {
        let ctx = SimpleCtx::new(0, 0, 1);
        assert_eq!((Expr::c(5) / Expr::c(0)).eval(&ctx), 0);
        assert_eq!(Expr::c(5).rem(Expr::c(0)).eval(&ctx), 0);
    }

    #[test]
    fn min_max() {
        let ctx = SimpleCtx::new(0, 0, 1);
        assert_eq!(Expr::c(3).min(Expr::c(7)).eval(&ctx), 3);
        assert_eq!(Expr::c(3).max(Expr::c(7)).eval(&ctx), 7);
    }

    #[test]
    fn table_lookup_clamps() {
        let mut ctx = SimpleCtx::new(0, 0, 1);
        ctx.tables.push(vec![10, 20, 30]);
        let t = TableId(0);
        assert_eq!(Expr::c(1).index_into(t).eval(&ctx), 20);
        assert_eq!(Expr::c(-5).index_into(t).eval(&ctx), 10);
        assert_eq!(Expr::c(99).index_into(t).eval(&ctx), 30);
    }

    #[test]
    fn max_var_and_table_walk_the_tree() {
        let e = Expr::v(VarId(2)) + Expr::v(VarId(7)).index_into(TableId(3));
        assert_eq!(e.max_var(), Some(7));
        assert_eq!(e.max_table(), Some(3));
        assert_eq!(Expr::c(1).max_var(), None);
        assert_eq!(Expr::ThreadId.max_table(), None);
    }

    #[test]
    fn wrapping_semantics() {
        let ctx = SimpleCtx::new(0, 0, 1);
        let e = Expr::c(i64::MAX) + Expr::c(1);
        assert_eq!(e.eval(&ctx), i64::MIN);
    }
}
