//! Property-style coverage tests for the worksharing chunk arithmetic.
//!
//! Every schedule's chunk decomposition must partition the iteration
//! space: each iteration value `begin + k*step` with `k < trip_count`
//! is visited exactly once across all threads, for uneven chunk sizes,
//! chunk sizes larger than the trip count, and teams larger than the
//! iteration space. The sweep is seeded (splitmix64, no `rand`) so a
//! failure names the exact `(seed, case)` pair that reproduces it.

use omp_ir::wsloop::{dynamic_next, guided_next, static_block, static_chunked, trip_count, Chunk};

/// Minimal splitmix64 so this test crate stays dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Mark every iteration value a chunk covers, asserting step alignment.
fn cover(cov: &mut [u32], begin: i64, step: u64, c: Chunk) {
    let mut v = c.lo;
    while v < c.hi {
        let off = v - begin;
        assert!(off >= 0, "chunk below begin: {c:?}");
        assert_eq!(
            off % step as i64,
            0,
            "chunk bound not step-aligned: begin={begin} step={step} {c:?}"
        );
        let k = (off / step as i64) as usize;
        assert!(
            k < cov.len(),
            "chunk past end: begin={begin} step={step} {c:?}"
        );
        cov[k] += 1;
        v += step as i64;
    }
}

fn assert_exact_cover(cov: &[u32], what: &str) {
    for (k, &c) in cov.iter().enumerate() {
        assert_eq!(c, 1, "{what}: iteration {k} covered {c} times");
    }
}

/// One random loop shape. Deliberately includes zero-trip and reversed
/// spaces, teams larger than the trip count, and chunks larger than the
/// trip count.
fn random_shape(rng: &mut Rng) -> (i64, i64, u64, u64, u64) {
    let begin = rng.below(21) as i64 - 10;
    let end = match rng.below(8) {
        0 => begin,                       // zero-trip
        1 => begin - rng.below(5) as i64, // reversed (normalizes to empty)
        _ => begin + rng.below(97) as i64 + 1,
    };
    let step = 1 + rng.below(7);
    let nthreads = 1 + rng.below(9); // often > trip count
    let chunk = 1 + rng.below(130); // often > trip count
    (begin, end, step, nthreads, chunk)
}

#[test]
fn static_block_partitions_every_shape() {
    let mut rng = Rng(0xb10c);
    for case in 0..2000u32 {
        let (begin, end, step, nthreads, _) = random_shape(&mut rng);
        let n = trip_count(begin, end, step) as usize;
        let mut cov = vec![0u32; n];
        for tid in 0..nthreads {
            cover(
                &mut cov,
                begin,
                step,
                static_block(begin, end, step, nthreads, tid),
            );
        }
        assert_exact_cover(
            &cov,
            &format!("static_block case {case}: {begin}..{end} step {step} t{nthreads}"),
        );
    }
}

#[test]
fn static_chunked_partitions_every_shape() {
    let mut rng = Rng(0xc4c4);
    for case in 0..2000u32 {
        let (begin, end, step, nthreads, chunk) = random_shape(&mut rng);
        let n = trip_count(begin, end, step) as usize;
        let mut cov = vec![0u32; n];
        for tid in 0..nthreads {
            for c in static_chunked(begin, end, step, nthreads, tid, chunk) {
                assert!(c.hi > c.lo, "static_chunked returned an empty chunk: {c:?}");
                cover(&mut cov, begin, step, c);
            }
        }
        assert_exact_cover(
            &cov,
            &format!("static_chunked case {case}: {begin}..{end} step {step} t{nthreads} c{chunk}"),
        );
    }
}

#[test]
fn dynamic_walk_partitions_every_shape() {
    let mut rng = Rng(0xd1d1);
    for case in 0..2000u32 {
        let (begin, end, step, _, chunk) = random_shape(&mut rng);
        let n = trip_count(begin, end, step) as usize;
        let mut cov = vec![0u32; n];
        let mut start = 0;
        let mut guard = 0;
        while let Some((c, next)) = dynamic_next(begin, end, step, start, chunk) {
            assert!(next > start, "dynamic_next made no progress");
            assert!(c.hi > c.lo, "dynamic_next returned an empty chunk: {c:?}");
            cover(&mut cov, begin, step, c);
            start = next;
            guard += 1;
            assert!(guard <= n + 1, "dynamic walk ran away");
        }
        assert_exact_cover(
            &cov,
            &format!("dynamic case {case}: {begin}..{end} step {step} c{chunk}"),
        );
    }
}

#[test]
fn guided_walk_partitions_and_never_grows() {
    let mut rng = Rng(0x6d6d);
    for case in 0..2000u32 {
        let (begin, end, step, nthreads, chunk) = random_shape(&mut rng);
        let min_chunk = 1 + chunk % 8;
        let n = trip_count(begin, end, step) as usize;
        let mut cov = vec![0u32; n];
        let mut start = 0;
        let mut last = u64::MAX;
        let mut guard = 0;
        while let Some((c, next)) = guided_next(begin, end, step, start, nthreads, min_chunk) {
            assert!(next > start, "guided_next made no progress");
            let size = c.trip_count(step);
            assert!(size > 0, "guided_next returned an empty chunk: {c:?}");
            // Geometric decrease: each grant is no larger than the last
            // (the final remainder grant can be smaller than min_chunk).
            assert!(size <= last, "guided sizes grew: {size} after {last}");
            last = size;
            cover(&mut cov, begin, step, c);
            start = next;
            guard += 1;
            assert!(guard <= n + 1, "guided walk ran away");
        }
        assert_exact_cover(
            &cov,
            &format!("guided case {case}: {begin}..{end} step {step} t{nthreads} m{min_chunk}"),
        );
    }
}

#[test]
fn cross_schedule_totals_agree() {
    // All decompositions of the same space must agree on the total trip
    // count — the invariant the differential fuzzer leans on when it
    // compares op totals across schedules.
    let mut rng = Rng(0x7074);
    for _ in 0..500u32 {
        let (begin, end, step, nthreads, chunk) = random_shape(&mut rng);
        let n = trip_count(begin, end, step);

        let blocked: u64 = (0..nthreads)
            .map(|tid| static_block(begin, end, step, nthreads, tid).trip_count(step))
            .sum();
        let chunked: u64 = (0..nthreads)
            .flat_map(|tid| static_chunked(begin, end, step, nthreads, tid, chunk))
            .map(|c| c.trip_count(step))
            .sum();
        let mut dynamic = 0;
        let mut start = 0;
        while let Some((c, next)) = dynamic_next(begin, end, step, start, chunk) {
            dynamic += c.trip_count(step);
            start = next;
        }
        assert_eq!(blocked, n);
        assert_eq!(chunked, n);
        assert_eq!(dynamic, n);
    }
}
