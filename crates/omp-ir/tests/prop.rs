//! Property-based tests of the IR layer: worksharing partition
//! exactness, expression totality, directive-parser robustness, and
//! tracer consistency.

use omp_ir::expr::{BinOp, Expr, SimpleCtx, TableId, VarId};
use omp_ir::node::{ScheduleKind, ScheduleSpec};
use omp_ir::wsloop;
use proptest::prelude::*;

/// Strategy for random expression trees over one variable and one table.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Const),
        Just(Expr::Var(VarId(0))),
        Just(Expr::ThreadId),
        Just(Expr::NumThreads),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..7).prop_map(|(a, b, op)| {
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Mod,
                    BinOp::Min,
                    BinOp::Max,
                ][op];
                Expr::Bin(op, Box::new(a), Box::new(b))
            }),
            inner.prop_map(|e| Expr::Table(TableId(0), Box::new(e))),
        ]
    })
}

proptest! {
    #[test]
    fn static_block_partitions_exactly(
        begin in -50i64..50,
        len in 0i64..500,
        step in 1u64..7,
        nthreads in 1u64..33,
    ) {
        let end = begin + len;
        let mut seen = std::collections::HashSet::new();
        for tid in 0..nthreads {
            let c = wsloop::static_block(begin, end, step, nthreads, tid);
            let mut i = c.lo.max(begin);
            while i < c.hi {
                prop_assert!(seen.insert(i), "iteration {i} assigned twice");
                i += step as i64;
            }
        }
        let mut expected = 0u64;
        let mut i = begin;
        while i < end {
            prop_assert!(seen.contains(&i), "iteration {i} unassigned");
            expected += 1;
            i += step as i64;
        }
        prop_assert_eq!(seen.len() as u64, expected);
    }

    #[test]
    fn static_chunked_partitions_exactly(
        len in 0i64..400,
        step in 1u64..5,
        nthreads in 1u64..17,
        chunk in 1u64..9,
    ) {
        let mut seen = std::collections::HashSet::new();
        for tid in 0..nthreads {
            for c in wsloop::static_chunked(0, len, step, nthreads, tid, chunk) {
                let mut i = c.lo;
                while i < c.hi {
                    prop_assert!(seen.insert(i), "iteration {i} assigned twice");
                    i += step as i64;
                }
            }
        }
        prop_assert_eq!(seen.len() as u64, wsloop::trip_count(0, len, step));
    }

    #[test]
    fn dynamic_and_guided_exhaust_the_space(
        len in 0i64..400,
        chunk in 1u64..9,
        nthreads in 1u64..9,
        guided in prop::bool::ANY,
    ) {
        let mut start = 0u64;
        let mut covered = 0i64;
        let mut last_size = u64::MAX;
        loop {
            let r = if guided {
                wsloop::guided_next(0, len, 1, start, nthreads, chunk)
            } else {
                wsloop::dynamic_next(0, len, 1, start, chunk)
            };
            match r {
                Some((c, next)) => {
                    prop_assert!(c.hi > c.lo, "empty chunk handed out");
                    prop_assert_eq!(c.lo, covered, "chunks must be contiguous");
                    covered = c.hi;
                    if guided {
                        let size = c.trip_count(1);
                        prop_assert!(size <= last_size, "guided sizes grow");
                        last_size = size;
                    }
                    start = next;
                }
                None => break,
            }
        }
        prop_assert_eq!(covered, len.max(0));
    }

    #[test]
    fn expressions_are_total(e in arb_expr(), v in -1000i64..1000) {
        let mut ctx = SimpleCtx::new(1, 3, 8);
        ctx.vars[0] = v;
        ctx.tables.push(vec![5, -3, 99]);
        // Must never panic (division by zero, overflow, table range).
        let _ = e.eval(&ctx);
        // And be deterministic.
        prop_assert_eq!(e.eval(&ctx), e.eval(&ctx));
    }

    #[test]
    fn expr_bounds_metadata_is_sound(e in arb_expr()) {
        // max_var/max_table never under-report: evaluating with exactly
        // that many slots must not panic.
        let nvars = e.max_var().map_or(0, |v| v + 1) as usize;
        let mut ctx = SimpleCtx::new(nvars.max(1), 0, 4);
        if e.max_table().is_some() {
            ctx.tables.push(vec![1, 2, 3]);
        }
        let _ = e.eval(&ctx);
    }

    #[test]
    fn directive_parser_never_panics(s in "[ -~]{0,60}") {
        let _ = omp_ir::parse_directive(&s);
        let _ = omp_ir::parse_omp_slipstream_env(&s);
    }

    #[test]
    fn schedule_directives_roundtrip(
        kind in 0usize..3,
        chunk in prop::option::of(1u64..100),
    ) {
        let kname = ["static", "dynamic", "guided"][kind];
        let txt = match chunk {
            Some(c) => format!("#pragma omp for schedule({kname}, {c})"),
            None => format!("#pragma omp for schedule({kname})"),
        };
        let d = omp_ir::parse_directive(&txt).unwrap();
        let expected = ScheduleSpec {
            kind: [ScheduleKind::Static, ScheduleKind::Dynamic, ScheduleKind::Guided][kind],
            chunk,
        };
        prop_assert_eq!(
            d,
            omp_ir::Directive::For {
                schedule: Some(expected),
                reduction: None,
                nowait: false
            }
        );
    }

    #[test]
    fn slipstream_directive_roundtrips(
        sync in 0usize..3,
        tokens in 0u64..100,
    ) {
        use omp_ir::node::{SlipSyncType, SlipstreamClause};
        let sname = ["GLOBAL_SYNC", "LOCAL_SYNC", "RUNTIME_SYNC"][sync];
        let txt = format!("!$OMP SLIPSTREAM({sname}, {tokens})");
        let d = omp_ir::parse_directive(&txt).unwrap();
        let expected = SlipstreamClause {
            sync: [
                SlipSyncType::GlobalSync,
                SlipSyncType::LocalSync,
                SlipSyncType::RuntimeSync,
            ][sync],
            tokens,
        };
        prop_assert_eq!(d, omp_ir::Directive::Slipstream(expected));
    }

    #[test]
    fn tracer_totals_scale_with_iterations(reps in 1i64..6) {
        use omp_ir::ProgramBuilder;
        let mut b = ProgramBuilder::new("scale");
        let a = b.shared_array("a", 64, 8);
        let r_var = b.var();
        let i = b.var();
        b.parallel(move |reg| {
            reg.push(omp_ir::node::Node::For {
                var: r_var,
                begin: Expr::c(0),
                end: Expr::c(reps),
                step: 1,
                body: Box::new(omp_ir::node::Node::ParFor {
                    sched: None,
                    var: i,
                    begin: Expr::c(0),
                    end: Expr::c(64),
                    body: Box::new(omp_ir::node::Node::Load {
                        array: a,
                        index: Expr::v(i),
                    }),
                    reduction: None,
                    nowait: false,
                }),
            });
        });
        let t = omp_ir::trace(&b.build(), 4);
        prop_assert_eq!(t.total.loads, 64 * reps as u64);
        prop_assert_eq!(t.barrier_episodes, reps as u64 + 1);
    }
}
