//! Property-style tests of the IR layer: worksharing partition
//! exactness, expression totality, directive-parser robustness, and
//! tracer consistency. Inputs come from a local seeded splitmix64
//! stream (omp-ir carries no dependencies, so the generator is inlined
//! here rather than borrowed from dsm-sim).

use omp_ir::expr::{BinOp, Expr, SimpleCtx, TableId, VarId};
use omp_ir::node::{ScheduleKind, ScheduleSpec};
use omp_ir::wsloop;

/// Minimal splitmix64 for seeded test inputs.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

/// Random expression tree over one variable and one table, depth-bounded.
fn arb_expr(g: &mut Rng, depth: u32) -> Expr {
    let leafy = depth == 0 || g.below(3) == 0;
    if leafy {
        match g.below(4) {
            0 => Expr::Const(g.range(-100, 100)),
            1 => Expr::Var(VarId(0)),
            2 => Expr::ThreadId,
            _ => Expr::NumThreads,
        }
    } else if g.below(8) == 0 {
        Expr::Table(TableId(0), Box::new(arb_expr(g, depth - 1)))
    } else {
        let op = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Min,
            BinOp::Max,
        ][g.below(7) as usize];
        Expr::Bin(
            op,
            Box::new(arb_expr(g, depth - 1)),
            Box::new(arb_expr(g, depth - 1)),
        )
    }
}

#[test]
fn static_block_partitions_exactly() {
    for seed in 0..60u64 {
        let mut g = Rng(0x57A71C ^ seed);
        let begin = g.range(-50, 50);
        let len = g.range(0, 500);
        let step = 1 + g.below(6);
        let nthreads = 1 + g.below(32);
        let end = begin + len;
        let mut seen = std::collections::HashSet::new();
        for tid in 0..nthreads {
            let c = wsloop::static_block(begin, end, step, nthreads, tid);
            let mut i = c.lo.max(begin);
            while i < c.hi {
                assert!(seen.insert(i), "iteration {i} assigned twice (seed {seed})");
                i += step as i64;
            }
        }
        let mut expected = 0u64;
        let mut i = begin;
        while i < end {
            assert!(seen.contains(&i), "iteration {i} unassigned (seed {seed})");
            expected += 1;
            i += step as i64;
        }
        assert_eq!(seen.len() as u64, expected);
    }
}

#[test]
fn static_chunked_partitions_exactly() {
    for seed in 0..60u64 {
        let mut g = Rng(0xC4C4 ^ seed);
        let len = g.range(0, 400);
        let step = 1 + g.below(4);
        let nthreads = 1 + g.below(16);
        let chunk = 1 + g.below(8);
        let mut seen = std::collections::HashSet::new();
        for tid in 0..nthreads {
            for c in wsloop::static_chunked(0, len, step, nthreads, tid, chunk) {
                let mut i = c.lo;
                while i < c.hi {
                    assert!(seen.insert(i), "iteration {i} assigned twice (seed {seed})");
                    i += step as i64;
                }
            }
        }
        assert_eq!(seen.len() as u64, wsloop::trip_count(0, len, step));
    }
}

#[test]
fn dynamic_and_guided_exhaust_the_space() {
    for seed in 0..60u64 {
        let mut g = Rng(0xD1_6D ^ seed);
        let len = g.range(0, 400);
        let chunk = 1 + g.below(8);
        let nthreads = 1 + g.below(8);
        let guided = g.below(2) == 1;
        let mut start = 0u64;
        let mut covered = 0i64;
        let mut last_size = u64::MAX;
        loop {
            let r = if guided {
                wsloop::guided_next(0, len, 1, start, nthreads, chunk)
            } else {
                wsloop::dynamic_next(0, len, 1, start, chunk)
            };
            match r {
                Some((c, next)) => {
                    assert!(c.hi > c.lo, "empty chunk handed out");
                    assert_eq!(c.lo, covered, "chunks must be contiguous");
                    covered = c.hi;
                    if guided {
                        let size = c.trip_count(1);
                        assert!(size <= last_size, "guided sizes grow");
                        last_size = size;
                    }
                    start = next;
                }
                None => break,
            }
        }
        assert_eq!(covered, len.max(0));
    }
}

#[test]
fn expressions_are_total() {
    for seed in 0..200u64 {
        let mut g = Rng(0x707A1 ^ seed);
        let e = arb_expr(&mut g, 4);
        let v = g.range(-1000, 1000);
        let mut ctx = SimpleCtx::new(1, 3, 8);
        ctx.vars[0] = v;
        ctx.tables.push(vec![5, -3, 99]);
        // Must never panic (division by zero, overflow, table range).
        let _ = e.eval(&ctx);
        // And be deterministic.
        assert_eq!(e.eval(&ctx), e.eval(&ctx));
    }
}

#[test]
fn expr_bounds_metadata_is_sound() {
    for seed in 0..200u64 {
        let mut g = Rng(0xB0BD ^ seed);
        let e = arb_expr(&mut g, 4);
        // max_var/max_table never under-report: evaluating with exactly
        // that many slots must not panic.
        let nvars = e.max_var().map_or(0, |v| v + 1) as usize;
        let mut ctx = SimpleCtx::new(nvars.max(1), 0, 4);
        if e.max_table().is_some() {
            ctx.tables.push(vec![1, 2, 3]);
        }
        let _ = e.eval(&ctx);
    }
}

#[test]
fn directive_parser_never_panics() {
    for seed in 0..400u64 {
        let mut g = Rng(0xFA25E ^ seed);
        let len = g.below(61) as usize;
        let s: String = (0..len)
            .map(|_| (b' ' + g.below(95) as u8) as char)
            .collect();
        let _ = omp_ir::parse_directive(&s);
        let _ = omp_ir::parse_omp_slipstream_env(&s);
    }
}

#[test]
fn schedule_directives_roundtrip() {
    for kind in 0usize..3 {
        for chunk in [None, Some(1u64), Some(7), Some(99)] {
            let kname = ["static", "dynamic", "guided"][kind];
            let txt = match chunk {
                Some(c) => format!("#pragma omp for schedule({kname}, {c})"),
                None => format!("#pragma omp for schedule({kname})"),
            };
            let d = omp_ir::parse_directive(&txt).unwrap();
            let expected = ScheduleSpec {
                kind: [
                    ScheduleKind::Static,
                    ScheduleKind::Dynamic,
                    ScheduleKind::Guided,
                ][kind],
                chunk,
            };
            assert_eq!(
                d,
                omp_ir::Directive::For {
                    schedule: Some(expected),
                    reduction: None,
                    nowait: false
                }
            );
        }
    }
}

#[test]
fn slipstream_directive_roundtrips() {
    use omp_ir::node::{SlipSyncType, SlipstreamClause};
    for sync in 0usize..3 {
        for tokens in [0u64, 1, 5, 99] {
            let sname = ["GLOBAL_SYNC", "LOCAL_SYNC", "RUNTIME_SYNC"][sync];
            let txt = format!("!$OMP SLIPSTREAM({sname}, {tokens})");
            let d = omp_ir::parse_directive(&txt).unwrap();
            let expected = SlipstreamClause {
                sync: [
                    SlipSyncType::GlobalSync,
                    SlipSyncType::LocalSync,
                    SlipSyncType::RuntimeSync,
                ][sync],
                tokens,
            };
            assert_eq!(d, omp_ir::Directive::Slipstream(expected));
        }
    }
}

#[test]
fn tracer_totals_scale_with_iterations() {
    for reps in 1i64..6 {
        use omp_ir::ProgramBuilder;
        let mut b = ProgramBuilder::new("scale");
        let a = b.shared_array("a", 64, 8);
        let r_var = b.var();
        let i = b.var();
        b.parallel(move |reg| {
            reg.push(omp_ir::node::Node::For {
                var: r_var,
                begin: Expr::c(0),
                end: Expr::c(reps),
                step: 1,
                body: Box::new(omp_ir::node::Node::ParFor {
                    sched: None,
                    var: i,
                    begin: Expr::c(0),
                    end: Expr::c(64),
                    body: Box::new(omp_ir::node::Node::Load {
                        array: a,
                        index: Expr::v(i),
                    }),
                    reduction: None,
                    nowait: false,
                }),
            });
        });
        let t = omp_ir::trace(&b.build(), 4);
        assert_eq!(t.total.loads, 64 * reps as u64);
        assert_eq!(t.barrier_episodes, reps as u64 + 1);
    }
}
