//! End-to-end campaign tests: the acceptance criteria of the
//! differential fuzzer in miniature.
//!
//! * A fixed-seed campaign over generated programs must be failure-free
//!   (the release `bench --bin fuzz` runs the full-size version).
//! * Every seeded engine-mutation class must be caught, minimized to a
//!   small program, and reproducible from the serialized artifact alone.

use omp_fuzz::{run_campaign, self_check_mutation, CampaignConfig, DiffOptions, Repro};
use slipstream::EngineMutation;

#[test]
fn fixed_seed_campaign_is_clean_and_promotes_survivors() {
    let cfg = CampaignConfig::new(60, 1);
    let res = run_campaign(&cfg);
    assert_eq!(res.cases, 60);
    assert!(
        res.clean(),
        "unexplained divergences: {}",
        res.summary_json()
    );
    assert_eq!(res.class_counts.iter().sum::<u64>(), 60);
    assert!(res.class_counts[0] > 0, "no exact-class programs generated");
    assert!(res.faulted_cases > 0, "no fault passes ran");
    assert!(!res.survivors.is_empty(), "no survivors promoted");
    for s in &res.survivors {
        assert!(omp_ir::validate(s).is_ok());
        assert!(s.node_count() >= 12);
    }
}

#[test]
fn pinned_200_case_campaign_has_zero_memo_soundness_failures() {
    // Memoized-replay soundness at scale: every case's single/double runs
    // are rerun with `memo` on inside the differential harness, so a
    // certificate that licenses an unsafe loop (or a replay jump that
    // perturbs any statistic) surfaces here as a `memo-mismatch` repro.
    let cfg = CampaignConfig::new(200, 0x51_1F_57_3A);
    let res = run_campaign(&cfg);
    assert_eq!(res.cases, 200);
    let memo_failures: Vec<_> = res
        .repros
        .iter()
        .filter(|r| r.failure.kind == omp_fuzz::FailKind::MemoMismatch)
        .collect();
    assert!(
        memo_failures.is_empty(),
        "certificate-soundness failures: {}",
        res.summary_json()
    );
    assert!(
        res.clean(),
        "unexplained divergences: {}",
        res.summary_json()
    );
}

#[test]
fn every_mutation_class_is_caught_minimized_and_replayable() {
    for mutation in EngineMutation::ALL_BROKEN {
        let repro = self_check_mutation(mutation, 42, 40)
            .unwrap_or_else(|e| panic!("{}: {e}", mutation.label()));
        assert!(
            repro.program.node_count() <= 25,
            "{}: minimized repro still has {} nodes",
            mutation.label(),
            repro.program.node_count()
        );
        // Reproduce strictly from the serialized artifact: parse the JSON
        // back and replay against fresh campaign options.
        let text = repro.to_json();
        let back = Repro::from_json(&text).expect("artifact parses");
        assert_eq!(back.mutation, mutation);
        let hits = back.replay(&DiffOptions::campaign());
        assert!(
            !hits.is_empty(),
            "{}: artifact did not reproduce from serialized form",
            mutation.label()
        );
    }
}
