//! The differential oracle: run one program under every processor-usage
//! mode and reconcile each run against the reference trace.
//!
//! **Oracle.** [`omp_ir::trace`] walks the IR at a given team size and
//! counts user operations; its totals are deterministic for every valid
//! program. The engine reports the same [`omp_ir::OpCounts`] in
//! [`slipstream::exec::RunResult::user_r`], so any field-level
//! disagreement is a bug in one of the two interpreters. Team size is
//! mode-dependent — single and slipstream modes run one thread per CMP
//! while double mode runs two — so the trace is evaluated **per mode**
//! at the team size that mode will actually use.
//!
//! **Classification.** The same `omp-analyze` pass that backs the
//! pre-run safety gate assigns each program an expected equivalence
//! class ([`Equivalence`]): exact-match, converge-only, or deny. The
//! harness then checks the *gate* agrees with the *class*: a deny-class
//! program must be refused in slipstream modes, everything else must
//! run. Exact-class programs additionally must finish without any
//! divergence recoveries when no faults are injected.
//!
//! **Failure taxonomy.** Every deviation becomes a [`Failure`] with a
//! structural fingerprint (kind, mode, class, field — never the raw
//! numbers) so campaigns can deduplicate and the shrinker can preserve
//! the failure's identity while mutating everything else.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dsm_sim::{Cycle, MachineConfig};
use omp_analyze::{analyze, Equivalence, GateMode};
use omp_ir::node::Program;
use omp_ir::OpCounts;
use slipstream::gate::analyze_config;
use slipstream::runner::{run_program, RunOptions};
use slipstream::stats_fingerprint;
use slipstream::{AStreamPolicy, EngineMutation, ExecMode, FaultPlan, RecoveryPolicy, SlipSync};

/// The four processor-usage modes of the paper's evaluation, with labels.
pub const MODES: [(&str, ExecMode, Option<SlipSync>); 4] = [
    ("single", ExecMode::Single, None),
    ("double", ExecMode::Double, None),
    ("slip-L1", ExecMode::Slipstream, Some(SlipSync::L1)),
    ("slip-G0", ExecMode::Slipstream, Some(SlipSync::G0)),
];

/// Options for one differential case.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Machine to simulate. The default shrinks the paper machine to 4
    /// CMPs so a four-mode case stays fast.
    pub machine: MachineConfig,
    /// Simulated-cycle watchdog per run: a wedge becomes a reported
    /// hang instead of a stuck campaign.
    pub cycle_budget: Cycle,
    /// When set, slipstream modes additionally run under a seeded
    /// [`FaultPlan`] with the hardened recovery policy; recoveries are
    /// then legitimate but final R-stream counts must still match.
    pub fault_seed: Option<u64>,
    /// Seeded engine-mutation class (self-check campaigns only).
    pub mutation: EngineMutation,
    /// Re-run slip-G0 and require bit-identical cycles and counts.
    pub check_determinism: bool,
}

impl DiffOptions {
    /// Campaign defaults (4-CMP paper machine, 80M-cycle watchdog).
    pub fn campaign() -> Self {
        let mut machine = MachineConfig::paper();
        machine.num_cmps = 4;
        DiffOptions {
            machine,
            cycle_budget: 80_000_000,
            fault_seed: None,
            mutation: EngineMutation::None,
            check_determinism: false,
        }
    }

    /// Team size a mode actually runs (the trace oracle must match it).
    pub fn team_for(&self, mode: ExecMode) -> u64 {
        match mode {
            ExecMode::Double => (self.machine.num_cmps * self.machine.cpus_per_cmp.min(2)) as u64,
            _ => self.machine.num_cmps as u64,
        }
    }
}

/// What went wrong, structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The generator (or a shrink step) produced an IR that failed
    /// validation — a harness bug, not an engine bug.
    InvalidProgram,
    /// Gate decision contradicts the analyzer's equivalence class
    /// (deny-class ran, or clean program was refused), or the analyzer
    /// classified the same program differently across calls.
    GateDisagreement,
    /// A run failed with an error that is not a gate refusal or a
    /// budget/deadlock report.
    RunError,
    /// A run exhausted the cycle budget or reported a deadlock/livelock.
    Hang,
    /// An engine op-count total differs from the trace oracle.
    OracleMismatch,
    /// An A-stream performed I/O (forbidden by the paper's policy).
    AStreamIo,
    /// An exact-class, fault-free, mutation-free run needed divergence
    /// recoveries.
    SpuriousRecovery,
    /// Two identically-configured runs disagreed.
    NonDeterminism,
    /// A memo-on rerun's full stats fingerprint diverged from the
    /// memo-off run (certificate-soundness violation), or the memo-on
    /// rerun failed outright.
    MemoMismatch,
    /// A component panicked.
    Panic,
}

impl FailKind {
    /// Stable label (artifact serialization and fingerprints).
    pub fn label(&self) -> &'static str {
        match self {
            FailKind::InvalidProgram => "invalid-program",
            FailKind::GateDisagreement => "gate-disagreement",
            FailKind::RunError => "run-error",
            FailKind::Hang => "hang",
            FailKind::OracleMismatch => "oracle-mismatch",
            FailKind::AStreamIo => "a-stream-io",
            FailKind::SpuriousRecovery => "spurious-recovery",
            FailKind::NonDeterminism => "non-determinism",
            FailKind::MemoMismatch => "memo-mismatch",
            FailKind::Panic => "panic",
        }
    }

    /// Inverse of [`Self::label`].
    pub fn from_label(s: &str) -> Option<FailKind> {
        [
            FailKind::InvalidProgram,
            FailKind::GateDisagreement,
            FailKind::RunError,
            FailKind::Hang,
            FailKind::OracleMismatch,
            FailKind::AStreamIo,
            FailKind::SpuriousRecovery,
            FailKind::NonDeterminism,
            FailKind::MemoMismatch,
            FailKind::Panic,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

/// One observed deviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Structural kind.
    pub kind: FailKind,
    /// Mode label (`single`, `slip-G0`, ... or `analyze`/`trace`/`-`).
    pub mode: String,
    /// Equivalence-class label the program was assigned.
    pub class: String,
    /// Mismatching oracle field (`loads`, `stores`, ...) or `-`.
    pub field: String,
    /// Human-readable specifics (numbers, error text). Excluded from the
    /// fingerprint so shrinking preserves identity.
    pub detail: String,
}

impl Failure {
    /// The stable identity of this failure: everything except `detail`.
    pub fn fingerprint_key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.kind.label(),
            self.mode,
            self.class,
            self.field
        )
    }

    /// FNV-1a hash of the fingerprint key, in hex.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(self.fingerprint_key().as_bytes()))
    }
}

/// FNV-1a over bytes (stable across platforms and runs).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of one differential case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Worst equivalence class across the sync configurations analyzed.
    pub class: Equivalence,
    /// Every deviation observed.
    pub failures: Vec<Failure>,
    /// Modes that produced a completed simulation.
    pub modes_completed: u64,
}

impl CaseResult {
    /// No deviations at all.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn classify(program: &Program, machine: &MachineConfig, sync: SlipSync) -> Option<Equivalence> {
    let cfg = analyze_config(machine, &AStreamPolicy::paper(), Some(sync));
    catch_unwind(AssertUnwindSafe(|| analyze(program, &cfg).equivalence())).ok()
}

fn oracle(program: &Program, team: u64) -> Option<OpCounts> {
    catch_unwind(AssertUnwindSafe(|| omp_ir::trace(program, team).total)).ok()
}

fn is_hang_error(msg: &str) -> bool {
    msg.contains("max_cycles")
        || msg.contains("deadlock")
        || msg.contains("livelock")
        || msg.contains("budget exhausted")
}

fn compare_counts(got: &OpCounts, want: &OpCounts) -> Vec<(&'static str, u64, u64)> {
    let mut out = Vec::new();
    for (name, g, w) in [
        ("loads", got.loads, want.loads),
        ("stores", got.stores, want.stores),
        ("atomics", got.atomics, want.atomics),
        ("compute_cycles", got.compute_cycles, want.compute_cycles),
        ("io_in", got.io_in, want.io_in),
        ("io_out", got.io_out, want.io_out),
    ] {
        if g != w {
            out.push((name, g, w));
        }
    }
    out
}

/// Run the full differential check for one program.
pub fn run_case(program: &Program, opts: &DiffOptions) -> CaseResult {
    let mut failures = Vec::new();
    let mut modes_completed = 0u64;

    if let Err(e) = omp_ir::validate(program) {
        failures.push(Failure {
            kind: FailKind::InvalidProgram,
            mode: "-".into(),
            class: "-".into(),
            field: "-".into(),
            detail: e.to_string(),
        });
        return CaseResult {
            class: Equivalence::Deny,
            failures,
            modes_completed,
        };
    }

    // Classify under both sync types the slip modes will use; the gate
    // expectation for each mode uses its own class, the reported class is
    // the worst of the two. A second classification of the identical
    // input guards against analyzer instability.
    let class_g0 = classify(program, &opts.machine, SlipSync::G0);
    let class_l1 = classify(program, &opts.machine, SlipSync::L1);
    let (class_g0, class_l1) = match (class_g0, class_l1) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            failures.push(Failure {
                kind: FailKind::Panic,
                mode: "analyze".into(),
                class: "-".into(),
                field: "-".into(),
                detail: "analyzer panicked".into(),
            });
            return CaseResult {
                class: Equivalence::Deny,
                failures,
                modes_completed,
            };
        }
    };
    let class = if class_g0 >= class_l1 {
        class_g0
    } else {
        class_l1
    };
    if classify(program, &opts.machine, SlipSync::G0) != Some(class_g0) {
        failures.push(Failure {
            kind: FailKind::NonDeterminism,
            mode: "analyze".into(),
            class: class.label().into(),
            detail: "analyzer classified the same program differently across calls".into(),
            field: "-".into(),
        });
    }

    for (label, mode, sync) in MODES {
        let team = opts.team_for(mode);
        let want = match oracle(program, team) {
            Some(w) => w,
            None => {
                failures.push(Failure {
                    kind: FailKind::Panic,
                    mode: "trace".into(),
                    class: class.label().into(),
                    field: "-".into(),
                    detail: format!("trace panicked at team {team}"),
                });
                continue;
            }
        };
        let mode_class = match sync {
            Some(s) if !s.global => class_l1,
            Some(_) => class_g0,
            None => class,
        };
        let slip = mode == ExecMode::Slipstream;
        let faulted = slip && opts.fault_seed.is_some();
        let mut ro = RunOptions::new(mode)
            .with_machine(opts.machine.clone())
            .with_cycle_budget(opts.cycle_budget)
            .with_mutation(opts.mutation)
            .with_gate(if slip { GateMode::Deny } else { GateMode::Warn });
        ro.sync = sync;
        if let Some(fs) = opts.fault_seed {
            if slip {
                ro = ro
                    .with_faults(FaultPlan::random(fs ^ fnv1a64(label.as_bytes()), team, 3))
                    .with_recovery(RecoveryPolicy::hardened());
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| run_program(program, &ro)));
        let fail = |kind: FailKind, field: &str, detail: String| Failure {
            kind,
            mode: label.into(),
            class: mode_class.label().into(),
            field: field.into(),
            detail,
        };
        match outcome {
            Err(_) => failures.push(fail(FailKind::Panic, "-", "engine panicked".into())),
            Ok(Err(msg)) => {
                if msg.starts_with("slipstream gate: refusing") {
                    if mode_class != Equivalence::Deny {
                        failures.push(fail(
                            FailKind::GateDisagreement,
                            "-",
                            format!("gate refused a {}-class program: {msg}", mode_class),
                        ));
                    }
                    // Expected refusal for deny-class programs: not a
                    // completed mode, not a failure.
                } else if is_hang_error(&msg) {
                    failures.push(fail(FailKind::Hang, "-", msg));
                } else {
                    failures.push(fail(FailKind::RunError, "-", msg));
                }
            }
            Ok(Ok(summary)) => {
                modes_completed += 1;
                if slip && mode_class == Equivalence::Deny {
                    failures.push(fail(
                        FailKind::GateDisagreement,
                        "-",
                        "deny-class program passed the slipstream gate".into(),
                    ));
                }
                for (field, got, want) in compare_counts(&summary.raw.user_r, &want) {
                    failures.push(fail(
                        FailKind::OracleMismatch,
                        field,
                        format!("engine {got} vs trace {want} at team {team}"),
                    ));
                }
                if summary.raw.user_a.io_in + summary.raw.user_a.io_out > 0 {
                    failures.push(fail(
                        FailKind::AStreamIo,
                        "-",
                        format!(
                            "A-streams performed {} input / {} output ops",
                            summary.raw.user_a.io_in, summary.raw.user_a.io_out
                        ),
                    ));
                }
                // Note: deliberately not conditioned on `opts.mutation` —
                // a seeded mutation that only manifests as unexpected
                // recoveries (e.g. broken token accounting rescued by the
                // watchdog) must still be caught by the self-check.
                if mode_class == Equivalence::Exact && !faulted && summary.raw.recoveries > 0 {
                    failures.push(fail(
                        FailKind::SpuriousRecovery,
                        "-",
                        format!(
                            "{} recoveries on an exact-class program",
                            summary.raw.recoveries
                        ),
                    ));
                }
                // Memoized-replay soundness: rerun with memo enabled and
                // require a bit-identical stats fingerprint. Restricted to
                // the non-slip modes (the memo never arms in slipstream
                // mode) and to mutation-free harnesses (a seeded engine
                // mutation also keeps the memo disarmed).
                if !slip && opts.mutation == EngineMutation::None {
                    let off_fp = stats_fingerprint(&summary);
                    let memo_run = catch_unwind(AssertUnwindSafe(|| {
                        run_program(program, &ro.clone().with_memo(true))
                    }));
                    match memo_run {
                        Ok(Ok(m)) => {
                            let on_fp = stats_fingerprint(&m);
                            if on_fp != off_fp {
                                let field = off_fp
                                    .split_whitespace()
                                    .zip(on_fp.split_whitespace())
                                    .position(|(a, b)| a != b)
                                    .map(|i| format!("stat{i}"))
                                    .unwrap_or_else(|| "len".into());
                                failures.push(fail(
                                    FailKind::MemoMismatch,
                                    &field,
                                    format!(
                                        "memo-on stats diverged at {field}: \
                                         off [{off_fp}] vs on [{on_fp}] (diag {:?})",
                                        m.raw.memo
                                    ),
                                ));
                            }
                        }
                        Ok(Err(msg)) => failures.push(fail(
                            FailKind::MemoMismatch,
                            "error",
                            format!("memo-on rerun failed: {msg}"),
                        )),
                        Err(_) => failures.push(fail(
                            FailKind::MemoMismatch,
                            "panic",
                            "memo-on rerun panicked".into(),
                        )),
                    }
                }
                if opts.check_determinism && label == "slip-G0" && !faulted {
                    let rerun = catch_unwind(AssertUnwindSafe(|| run_program(program, &ro)));
                    match rerun {
                        Ok(Ok(s2))
                            if s2.exec_cycles == summary.exec_cycles
                                && s2.raw.user_r == summary.raw.user_r => {}
                        _ => failures.push(fail(
                            FailKind::NonDeterminism,
                            "-",
                            "identical slip-G0 reruns disagreed".into(),
                        )),
                    }
                }
            }
        }
    }

    CaseResult {
        class,
        failures,
        modes_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{Expr, ProgramBuilder};

    fn clean_program() -> Program {
        let mut b = ProgramBuilder::new("clean");
        let a = b.shared_array("a", 64, 8);
        let c = b.shared_array("c", 64, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 33, |body| {
                body.load(a, Expr::v(i));
                body.compute(4);
                body.store(c, Expr::v(i));
            });
        });
        b.build()
    }

    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new("racy");
        let a = b.shared_array("a", 64, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 16, |body| {
                body.store(a, Expr::c(7)); // every iteration, same element
            });
        });
        b.build()
    }

    #[test]
    fn clean_program_is_clean_in_all_modes() {
        let res = run_case(&clean_program(), &DiffOptions::campaign());
        assert_eq!(res.class, Equivalence::Exact);
        assert!(res.clean(), "unexpected failures: {:?}", res.failures);
        assert_eq!(res.modes_completed, 4);
    }

    #[test]
    fn deny_class_program_is_refused_only_in_slip_modes() {
        let res = run_case(&racy_program(), &DiffOptions::campaign());
        assert_eq!(res.class, Equivalence::Deny);
        assert!(res.clean(), "unexpected failures: {:?}", res.failures);
        // single + double complete; both slip modes are gate-refused.
        assert_eq!(res.modes_completed, 2);
    }

    #[test]
    fn per_mode_oracle_handles_team_scaled_bounds() {
        // Trip count = NumThreads * 3: double mode (team 8) does twice the
        // work of single/slip (team 4). A shared-team oracle would report
        // a false mismatch here.
        let mut b = ProgramBuilder::new("team-scaled");
        let a = b.shared_array("a", 64, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 1, |body| {
                body.load(a, Expr::v(i));
            });
        });
        let mut p = b.build();
        // Rebuild the body with a NumThreads-scaled bound (no builder
        // sugar for expression bounds).
        p.body = omp_ir::node::Node::Seq(vec![omp_ir::node::Node::Parallel {
            body: Box::new(omp_ir::node::Node::ParFor {
                sched: None,
                var: i,
                begin: Expr::c(0),
                end: Expr::NumThreads * Expr::c(3),
                body: Box::new(omp_ir::node::Node::Load {
                    array: a,
                    index: Expr::v(i),
                }),
                reduction: None,
                nowait: false,
            }),
            slipstream: None,
        }]);
        let res = run_case(&p, &DiffOptions::campaign());
        assert!(res.clean(), "unexpected failures: {:?}", res.failures);
        assert_eq!(res.modes_completed, 4);
    }

    #[test]
    fn mutation_is_caught_as_oracle_mismatch() {
        let mut opts = DiffOptions::campaign();
        opts.mutation = EngineMutation::ChunkOffByOne;
        let res = run_case(&clean_program(), &opts);
        assert!(
            res.failures
                .iter()
                .any(|f| f.kind == FailKind::OracleMismatch),
            "chunk mutation not caught: {:?}",
            res.failures
        );
    }

    #[test]
    fn invalid_program_is_reported_not_run() {
        let mut p = clean_program();
        p.num_vars = 0; // var 0 is referenced: validation must fail
        let res = run_case(&p, &DiffOptions::campaign());
        assert_eq!(res.failures.len(), 1);
        assert_eq!(res.failures[0].kind, FailKind::InvalidProgram);
    }

    #[test]
    fn fingerprints_are_structural() {
        let a = Failure {
            kind: FailKind::OracleMismatch,
            mode: "slip-G0".into(),
            class: "exact".into(),
            field: "loads".into(),
            detail: "engine 10 vs trace 12".into(),
        };
        let mut b = a.clone();
        b.detail = "engine 3 vs trace 99".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.field = "stores".into();
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(FailKind::from_label("hang"), Some(FailKind::Hang));
        assert_eq!(
            FailKind::from_label("memo-mismatch"),
            Some(FailKind::MemoMismatch)
        );
        assert_eq!(FailKind::from_label("nope"), None);
    }

    #[test]
    fn memo_rerun_is_clean_on_a_certified_replay_loop() {
        // A serial iteration loop around a disjoint worksharing phase is
        // exactly what the certifier licenses: the memo-on reruns inside
        // run_case actually engage here and must stay fingerprint-clean.
        let mut b = ProgramBuilder::new("memo-loop");
        let a = b.shared_array("a", 64, 8);
        let c = b.shared_array("c", 64, 8);
        let i = b.var();
        let t = b.var();
        b.parallel(move |r| {
            r.for_loop(t, 0, 8, move |it| {
                it.par_for(None, i, 0, 33, move |body| {
                    body.load(a, Expr::v(i));
                    body.compute(4);
                    body.store(c, Expr::v(i));
                });
            });
        });
        let res = run_case(&b.build(), &DiffOptions::campaign());
        assert!(res.clean(), "unexpected failures: {:?}", res.failures);
        assert_eq!(res.modes_completed, 4);
    }
}
