//! # omp-fuzz — differential fuzzing for the slipstream engine
//!
//! The paper's central claim is behavioural: slipstream execution is an
//! *optimization*, so a program must compute the same thing under
//! single, double, and slipstream modes. This crate turns that claim
//! into a continuously checkable property:
//!
//! 1. [`gen`] draws valid, in-bounds [`omp_ir::Program`]s from a seeded
//!    weighted grammar (no external randomness, no `rand` dependency);
//! 2. [`diff`] classifies each program with the `omp-analyze` gate
//!    analyzer, runs it under all four processor-usage modes, and
//!    reconciles every run against the reference trace oracle — any
//!    mismatch, hang, panic, gate/class disagreement, A-stream I/O, or
//!    spurious recovery becomes a fingerprinted [`diff::Failure`];
//! 3. [`shrink`] minimizes a failing program by deterministic
//!    delta-debugging over the IR until no single edit preserves the
//!    failure;
//! 4. [`artifact`] serializes the minimized case as a self-contained
//!    replayable JSON repro;
//! 5. [`campaign`] drives seeded batches, deduplicates failures by
//!    fingerprint, promotes interesting clean survivors into a soak
//!    corpus, and self-checks the whole loop against seeded engine
//!    mutations ([`slipstream::EngineMutation`]).

#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod diff;
pub mod gen;
pub mod shrink;

pub use artifact::Repro;
pub use campaign::{run_campaign, self_check_mutation, CampaignConfig, CampaignResult};
pub use diff::{run_case, CaseResult, DiffOptions, FailKind, Failure};
pub use gen::{generate, GenConfig};
pub use shrink::shrink;
