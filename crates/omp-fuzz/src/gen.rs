//! Seeded program generation.
//!
//! The generator draws from a weighted grammar over the constructs the
//! paper's runtime supports — parallel regions, worksharing loops under
//! every schedule kind, reductions, `single`/`master`/`critical`/
//! `sections`, atomics, explicit barriers, I/O — while obeying a safety
//! contract that keeps the reference trace a valid oracle for the
//! engine's per-mode operation counts:
//!
//! * **In-bounds addressing.** Every array has [`ARRAY_LEN`] elements and
//!   every index expression is constructed to stay below it for any trip
//!   the loop can take (worksharing trips are capped at
//!   [`MAX_TRIP`], inner offsets at what the headroom allows).
//! * **Variable binding.** An expression only reads induction variables
//!   bound by an enclosing loop. The engine lets variable slots persist
//!   across regions while the tracer resets them, so an unbound read
//!   would produce false differentials.
//! * **`ThreadId` placement.** `ThreadId` never appears in compute
//!   expressions or loop bounds: under dynamic-family schedules the
//!   executing thread differs between the engine and the tracer, so
//!   anything whose *count or magnitude* depends on the executor would
//!   diverge spuriously. Index expressions are exempt (an operation
//!   counts once regardless of its address).
//! * **Race control.** Within a phase, arrays are partitioned into a
//!   load set and a store set, and each worksharing store uses one
//!   injective `iv + offset` address per array, so distinct iterations
//!   touch distinct elements. Deliberate *race spice* — a worksharing
//!   store to a constant element — is injected at a configured rate to
//!   exercise the deny path of the analyzer and gate.
//!
//! Generation is fully deterministic: the same `(seed, GenConfig)` pair
//! always yields the same program, byte for byte.

use dsm_sim::rng::SplitMix64;
use omp_ir::node::{
    ArrayDecl, Node, Program, Reduction, ReductionOp, ScheduleKind, ScheduleSpec, SlipSyncType,
    SlipstreamClause,
};
use omp_ir::{Expr, TableId, VarId};

/// Length of every generated array (elements).
pub const ARRAY_LEN: u64 = 64;

/// Exclusive upper bound on any worksharing trip count. Kept below
/// [`ARRAY_LEN`] so `a[iv + offset]` stays in bounds with room for small
/// offsets.
pub const MAX_TRIP: u64 = 48;

/// Tunable size knobs for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Parallel regions per program (at least 1).
    pub max_regions: u64,
    /// Phases (top-level items) per region body (at least 1).
    pub max_phases: u64,
    /// Operations per worksharing-loop body (at least 1).
    pub max_body_ops: u64,
    /// Shared arrays to declare (at least 2: one reserved for
    /// reductions/atomics, the rest partitioned into load/store sets).
    pub arrays: u64,
    /// Host-side index tables to declare (may be 0).
    pub tables: u64,
    /// Per-phase probability, in parts per thousand, of deliberately
    /// injecting a racy store (deny-class spice).
    pub race_permille: u64,
}

impl GenConfig {
    /// Campaign default: rich programs, still small enough that a full
    /// four-mode differential run takes well under a second.
    pub fn campaign() -> Self {
        GenConfig {
            max_regions: 2,
            max_phases: 4,
            max_body_ops: 5,
            arrays: 4,
            tables: 2,
            race_permille: 40,
        }
    }

    /// Tiny programs for debug-mode unit tests.
    pub fn small() -> Self {
        GenConfig {
            max_regions: 1,
            max_phases: 2,
            max_body_ops: 3,
            arrays: 3,
            tables: 1,
            race_permille: 40,
        }
    }

    /// Clamp the knobs to their documented minima.
    fn clamped(&self) -> GenConfig {
        GenConfig {
            max_regions: self.max_regions.max(1),
            max_phases: self.max_phases.max(1),
            max_body_ops: self.max_body_ops.max(1),
            arrays: self.arrays.max(2),
            tables: self.tables,
            race_permille: self.race_permille.min(1000),
        }
    }
}

struct Gen {
    g: SplitMix64,
    cfg: GenConfig,
    next_var: u32,
    tables: u64,
}

impl Gen {
    fn var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    /// Pick an index into `weights` proportionally.
    fn pick(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        let mut roll = self.g.below(total);
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }

    /// An in-bounds index expression over the bound variables `vars`,
    /// whose values are each known to stay below `ARRAY_LEN`. `ThreadId`
    /// is allowed here (see the module contract). `span` is an upper
    /// bound on the sum of the variable values.
    fn index_expr(&mut self, vars: &[VarId], span: u64) -> Expr {
        let headroom = ARRAY_LEN.saturating_sub(span).max(1);
        match self.pick(&[6, 3, 2, 2]) {
            0 if !vars.is_empty() => {
                let v = vars[self.g.below(vars.len() as u64) as usize];
                Expr::v(v) + Expr::c(self.g.below(headroom) as i64)
            }
            1 if vars.len() >= 2 => {
                // Sum of two bound variables (inner-loop + outer-loop mix).
                Expr::v(vars[0]) + Expr::v(vars[vars.len() - 1])
            }
            2 => Expr::ThreadId,
            _ => Expr::c(self.g.below(ARRAY_LEN) as i64),
        }
    }

    /// A compute-cycle expression. Never references `ThreadId` and is
    /// always nonnegative with a small magnitude, so batched native
    /// loops stay cheap.
    fn compute_expr(&mut self, vars: &[VarId]) -> Expr {
        match self.pick(&[5, 3, 2]) {
            0 => Expr::c(1 + self.g.below(12) as i64),
            1 if !vars.is_empty() => {
                let v = vars[self.g.below(vars.len() as u64) as usize];
                Expr::v(v).rem(Expr::c(8)) + Expr::c(1)
            }
            2 if self.tables > 0 && !vars.is_empty() => {
                let t = TableId(self.g.below(self.tables) as u32);
                let v = vars[self.g.below(vars.len() as u64) as usize];
                Expr::v(v).index_into(t).rem(Expr::c(8)) + Expr::c(1)
            }
            _ => Expr::c(2),
        }
    }

    /// One operation inside a worksharing-loop body. `iv` is the loop
    /// variable (value `< MAX_TRIP`); `load_arr`/`store_arr` are the
    /// phase's disjoint array picks; `store_off` the phase's injective
    /// store offset; `sync_arr` the reserved reduction/atomic array.
    fn ws_op(
        &mut self,
        iv: VarId,
        load_arr: u32,
        store_arr: u32,
        store_off: u64,
        sync_arr: u32,
    ) -> Node {
        match self.pick(&[8, 6, 8, 4, 5, 1]) {
            0 => Node::Load {
                array: omp_ir::ArrayId(load_arr),
                index: self.index_expr(&[iv], MAX_TRIP),
            },
            1 => Node::Store {
                array: omp_ir::ArrayId(store_arr),
                index: Expr::v(iv) + Expr::c(store_off as i64),
            },
            2 => Node::Compute(self.compute_expr(&[iv])),
            3 => Node::Atomic {
                array: omp_ir::ArrayId(sync_arr),
                index: self.index_expr(&[iv], MAX_TRIP),
            },
            4 => {
                // Inner sequential loop: a few loads/computes over iv+j.
                let j = self.var();
                let trip = 1 + self.g.below(5) as i64;
                let inner = if self.g.chance(0.5) {
                    Node::Load {
                        array: omp_ir::ArrayId(load_arr),
                        index: Expr::v(iv) + Expr::v(j),
                    }
                } else {
                    Node::Compute(self.compute_expr(&[iv, j]))
                };
                Node::For {
                    var: j,
                    begin: Expr::c(0),
                    end: Expr::c(trip),
                    step: 1,
                    body: Box::new(inner),
                }
            }
            _ => Node::Io {
                input: self.g.chance(0.5),
                bytes: 64 << self.g.below(5),
            },
        }
    }

    /// A worksharing loop phase: schedule, bounds, clauses, body.
    fn parfor(&mut self, load_arr: u32, store_arr: u32, sync_arr: u32) -> Node {
        let sched = match self.pick(&[30, 15, 10, 15, 10, 10, 10]) {
            0 => None,
            1 => Some(ScheduleSpec::static_default()),
            2 => Some(ScheduleSpec {
                kind: ScheduleKind::Static,
                chunk: Some(1 + self.g.below(8)),
            }),
            3 => Some(ScheduleSpec::dynamic(1 + self.g.below(8))),
            4 => Some(ScheduleSpec::guided()),
            5 => Some(ScheduleSpec::affinity(1 + self.g.below(8))),
            _ => Some(ScheduleSpec {
                kind: ScheduleKind::Runtime,
                chunk: None,
            }),
        };
        let iv = self.var();
        // Constant bounds most of the time; occasionally NumThreads-scaled
        // (trips then differ between double mode and the others, which the
        // per-mode oracle must absorb). Max team is 8 (double mode), and
        // 8 * 5 < MAX_TRIP keeps indices in bounds.
        let (begin, end) = if self.g.chance(0.2) {
            (
                Expr::c(0),
                Expr::NumThreads * Expr::c(1 + self.g.below(5) as i64),
            )
        } else {
            let b = self.g.below(4) as i64;
            let e = b + 1 + self.g.below(MAX_TRIP - 4) as i64;
            (Expr::c(b), Expr::c(e))
        };
        let reduction = if self.g.chance(0.2) {
            let op = match self.g.below(3) {
                0 => ReductionOp::Sum,
                1 => ReductionOp::Max,
                _ => ReductionOp::Min,
            };
            Some(Reduction {
                op,
                target: omp_ir::ArrayId(sync_arr),
                index: Expr::c(self.g.below(ARRAY_LEN) as i64),
            })
        } else {
            None
        };
        let store_off = self.g.below(ARRAY_LEN - MAX_TRIP);
        let nops = 1 + self.g.below(self.cfg.max_body_ops);
        let mut body: Vec<Node> = (0..nops)
            .map(|_| self.ws_op(iv, load_arr, store_arr, store_off, sync_arr))
            .collect();
        if self.g.below(1000) < self.cfg.race_permille {
            // Race spice: every iteration (hence several threads) stores
            // the same element. The analyzer must deny this program.
            body.push(Node::Store {
                array: omp_ir::ArrayId(store_arr),
                index: Expr::c(self.g.below(ARRAY_LEN) as i64),
            });
        }
        Node::ParFor {
            sched,
            var: iv,
            begin,
            end,
            body: Box::new(Node::Seq(body)),
            reduction,
            nowait: self.g.chance(0.15),
        }
    }

    /// A small load/compute body for `single`/`master`/`sections`
    /// bodies: executed by one thread in the engine but attributed to a
    /// fixed thread by the tracer, so nothing inside may depend on
    /// `ThreadId` — and stores are excluded to avoid cross-phase races.
    fn oneshot_body(&mut self, load_arr: u32) -> Node {
        let nops = 1 + self.g.below(3);
        let ops = (0..nops)
            .map(|_| match self.pick(&[4, 4, 1]) {
                0 => Node::Load {
                    array: omp_ir::ArrayId(load_arr),
                    index: Expr::c(self.g.below(ARRAY_LEN) as i64),
                },
                1 => Node::Compute(self.compute_expr(&[])),
                _ => Node::Io {
                    input: self.g.chance(0.5),
                    bytes: 64 << self.g.below(4),
                },
            })
            .collect();
        Node::Seq(ops)
    }

    /// One phase (top-level item) of a parallel-region body.
    fn phase(&mut self, sync_arr: u32) -> Node {
        // Partition the non-reserved arrays into this phase's load/store
        // picks. Distinct picks keep worksharing loads and stores
        // race-free; the reserved array 0 only ever sees atomics,
        // reductions, and critical-protected stores.
        let n = self.cfg.arrays - 1;
        let load_arr = 1 + self.g.below(n) as u32;
        let store_arr = if n == 1 {
            load_arr
        } else {
            1 + ((load_arr as u64 + self.g.below(n - 1)) % n) as u32
        };
        match self.pick(&[50, 8, 7, 7, 5, 4, 4, 5, 3, 4]) {
            0 => self.parfor(load_arr, store_arr, sync_arr),
            1 => {
                // Serial loop executed by every team member.
                let k = self.var();
                let trip = 2 + self.g.below(5) as i64;
                let body = if self.g.chance(0.5) {
                    Node::Load {
                        array: omp_ir::ArrayId(load_arr),
                        index: self.index_expr(&[k], 8),
                    }
                } else {
                    Node::Compute(self.compute_expr(&[k]))
                };
                Node::For {
                    var: k,
                    begin: Expr::c(0),
                    end: Expr::c(trip),
                    step: 1,
                    body: Box::new(body),
                }
            }
            2 => Node::Single(Box::new(self.oneshot_body(load_arr))),
            3 => Node::Master(Box::new(self.oneshot_body(load_arr))),
            4 => {
                // Critical-protected read-modify-write of the reserved
                // array: mutual exclusion makes the shared store safe.
                let idx = self.g.below(ARRAY_LEN) as i64;
                Node::Critical {
                    name: format!("lock{}", self.g.below(2)),
                    body: Box::new(Node::Seq(vec![
                        Node::Load {
                            array: omp_ir::ArrayId(sync_arr),
                            index: Expr::c(idx),
                        },
                        Node::Store {
                            array: omp_ir::ArrayId(sync_arr),
                            index: Expr::c(idx),
                        },
                    ])),
                }
            }
            5 => {
                let n = 1 + self.g.below(3);
                Node::Sections((0..n).map(|_| self.oneshot_body(load_arr)).collect())
            }
            6 => Node::Barrier,
            7 => Node::Atomic {
                array: omp_ir::ArrayId(sync_arr),
                index: self.index_expr(&[], 0),
            },
            8 => Node::Io {
                input: self.g.chance(0.5),
                bytes: 64 << self.g.below(5),
            },
            _ => Node::Compute(self.compute_expr(&[])),
        }
    }

    fn slip_clause(&mut self) -> SlipstreamClause {
        let global = self.g.chance(0.5);
        SlipstreamClause {
            sync: if global {
                SlipSyncType::GlobalSync
            } else {
                SlipSyncType::LocalSync
            },
            tokens: if global {
                self.g.below(3)
            } else {
                1 + self.g.below(3)
            },
        }
    }

    fn region(&mut self, sync_arr: u32) -> Node {
        let phases = 1 + self.g.below(self.cfg.max_phases);
        let body = (0..phases).map(|_| self.phase(sync_arr)).collect();
        Node::Parallel {
            body: Box::new(Node::Seq(body)),
            slipstream: if self.g.chance(0.25) {
                Some(self.slip_clause())
            } else {
                None
            },
        }
    }
}

/// Generate one program. Deterministic in `(seed, cfg)`.
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    let cfg = cfg.clamped();
    let mut gen = Gen {
        g: SplitMix64::new(seed ^ 0x0F0A_2217_D1FF_5EED),
        cfg,
        next_var: 0,
        tables: cfg.tables,
    };
    let arrays = (0..cfg.arrays)
        .map(|i| ArrayDecl {
            name: if i == 0 {
                "sync".to_string()
            } else {
                format!("a{i}")
            },
            shared: true,
            len: ARRAY_LEN,
            elem_bytes: 8,
        })
        .collect();
    let tables = (0..cfg.tables)
        .map(|_| {
            (0..ARRAY_LEN)
                .map(|_| gen.g.below(ARRAY_LEN) as i64)
                .collect()
        })
        .collect();
    let mut body = Vec::new();
    if gen.g.chance(0.2) {
        // Program-global slipstream default, as the serial part of the
        // paper's programs would set it.
        let clause = gen.slip_clause();
        body.push(Node::SlipstreamSet(clause));
    }
    let regions = 1 + gen.g.below(cfg.max_regions);
    for r in 0..regions {
        if r > 0 && gen.g.chance(0.4) {
            body.push(Node::Compute(Expr::c(1 + gen.g.below(6) as i64)));
        }
        body.push(gen.region(0));
    }
    Program {
        name: format!("fuzz-{seed:#018x}"),
        arrays,
        tables,
        num_vars: gen.next_var.max(1),
        body: Node::Seq(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::campaign();
        for seed in 0..32 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn generated_programs_validate() {
        let cfg = GenConfig::campaign();
        for seed in 0..256 {
            let p = generate(seed, &cfg);
            if let Err(e) = omp_ir::validate(&p) {
                panic!("seed {seed} generated an invalid program: {e}");
            }
        }
    }

    #[test]
    fn generated_indices_stay_in_bounds() {
        // The tracer walks every executed load/store; combined with the
        // engine's address mapping, an out-of-bounds index would panic in
        // the differential harness. Spot-check the static contract here:
        // every array is ARRAY_LEN long and every worksharing trip stays
        // under MAX_TRIP.
        let cfg = GenConfig::campaign();
        for seed in 0..128 {
            let p = generate(seed, &cfg);
            for a in &p.arrays {
                assert_eq!(a.len, ARRAY_LEN);
            }
            let _ = omp_ir::trace(&p, 8);
        }
    }

    #[test]
    fn race_spice_occasionally_produces_denials() {
        let mut cfg = GenConfig::campaign();
        cfg.race_permille = 400;
        let acfg = omp_analyze::AnalyzeConfig::paper();
        let mut denied = 0;
        for seed in 0..64 {
            let p = generate(seed, &cfg);
            if omp_analyze::analyze(&p, &acfg).deny_count() > 0 {
                denied += 1;
            }
        }
        assert!(denied > 0, "race spice never produced a deny finding");
    }
}
