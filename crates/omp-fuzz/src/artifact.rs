//! Replayable failure artifacts.
//!
//! A [`Repro`] is self-contained: it embeds the (minimized) program as a
//! versioned `omp_ir` JSON document next to the failure's structural
//! identity and the harness knobs (engine mutation, fault seed) needed
//! to reproduce it. Replaying requires nothing but the artifact — not
//! the generator seed, not the campaign state.

use omp_ir::node::Program;
use omp_ir::serialize::{escape_json, program_from_value};
use omp_ir::{parse_json, program_to_json};
use slipstream::EngineMutation;

use crate::diff::{run_case, DiffOptions, FailKind, Failure};

/// Artifact format version (bumped on breaking layout changes).
pub const REPRO_FORMAT: i64 = 1;

/// A serialized, replayable failure case.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Generator seed the case came from (`None` for foreign programs).
    pub seed: Option<u64>,
    /// The failure's structural identity.
    pub failure: Failure,
    /// Engine mutation active when the failure was observed.
    pub mutation: EngineMutation,
    /// Fault-plan seed active when the failure was observed.
    pub fault_seed: Option<u64>,
    /// The (minimized) program.
    pub program: Program,
}

impl Repro {
    /// Build an artifact from a failure and the case's harness knobs.
    pub fn new(seed: Option<u64>, failure: Failure, opts: &DiffOptions, program: Program) -> Repro {
        Repro {
            seed,
            failure,
            mutation: opts.mutation,
            fault_seed: opts.fault_seed,
            program,
        }
    }

    /// The failure's fingerprint (hex).
    pub fn fingerprint(&self) -> String {
        self.failure.fingerprint()
    }

    /// Canonical artifact file name.
    pub fn file_name(&self) -> String {
        format!("repro-{}.json", self.fingerprint())
    }

    /// Serialize to a single-line JSON document.
    pub fn to_json(&self) -> String {
        // Seeds are full u64 values; the embedded JSON dialect only has
        // i64 integers, so they travel as decimal strings.
        let opt = |v: Option<u64>| match v {
            Some(x) => format!("\"{x}\""),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"format\":{},\"seed\":{},\"fingerprint\":\"{}\",",
                "\"kind\":\"{}\",\"mode\":\"{}\",\"class\":\"{}\",\"field\":\"{}\",",
                "\"detail\":\"{}\",\"mutation\":\"{}\",\"fault_seed\":{},",
                "\"node_count\":{},\"program\":{}}}"
            ),
            REPRO_FORMAT,
            opt(self.seed),
            self.fingerprint(),
            escape_json(self.failure.kind.label()),
            escape_json(&self.failure.mode),
            escape_json(&self.failure.class),
            escape_json(&self.failure.field),
            escape_json(&self.failure.detail),
            self.mutation.label(),
            opt(self.fault_seed),
            self.program.node_count(),
            program_to_json(&self.program),
        )
    }

    /// Parse an artifact produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Repro, String> {
        let v = parse_json(text).map_err(|e| e.to_string())?;
        let fmt = v.get("format").and_then(|f| f.as_i64()).unwrap_or(-1);
        if fmt != REPRO_FORMAT {
            return Err(format!("unsupported repro format {fmt}"));
        }
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("repro: missing string field `{key}`"))
        };
        let kind_label = s("kind")?;
        let kind = FailKind::from_label(&kind_label)
            .ok_or_else(|| format!("repro: unknown failure kind `{kind_label}`"))?;
        let mutation_label = s("mutation")?;
        let mutation = EngineMutation::from_label(&mutation_label)
            .ok_or_else(|| format!("repro: unknown mutation `{mutation_label}`"))?;
        let program = v
            .get("program")
            .ok_or_else(|| "repro: missing program".to_string())
            .and_then(|p| program_from_value(p).map_err(|e| e.to_string()))?;
        let seed_of = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_str())
                .and_then(|x| x.parse::<u64>().ok())
        };
        let claimed_fp = s("fingerprint")?;
        let repro = Repro {
            seed: seed_of("seed"),
            failure: Failure {
                kind,
                mode: s("mode")?,
                class: s("class")?,
                field: s("field")?,
                detail: s("detail")?,
            },
            mutation,
            fault_seed: seed_of("fault_seed"),
            program,
        };
        if repro.fingerprint() != claimed_fp {
            return Err(format!(
                "repro: fingerprint mismatch (claimed {claimed_fp}, computed {})",
                repro.fingerprint()
            ));
        }
        Ok(repro)
    }

    /// Options that reproduce this artifact's conditions on top of
    /// `base` (machine and budget come from `base`; mutation and fault
    /// seed from the artifact).
    pub fn replay_options(&self, base: &DiffOptions) -> DiffOptions {
        let mut opts = base.clone();
        opts.mutation = self.mutation;
        opts.fault_seed = self.fault_seed;
        opts
    }

    /// Re-run the embedded program and return the failures matching this
    /// artifact's fingerprint key. Empty means the failure no longer
    /// reproduces (e.g. the bug was fixed).
    pub fn replay(&self, base: &DiffOptions) -> Vec<Failure> {
        let key = self.failure.fingerprint_key();
        run_case(&self.program, &self.replay_options(base))
            .failures
            .into_iter()
            .filter(|f| f.fingerprint_key() == key)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{Expr, ProgramBuilder};

    fn program() -> Program {
        let mut b = ProgramBuilder::new("artifact-test");
        let a = b.shared_array("a", 64, 8);
        let i = b.var();
        b.parallel(|r| {
            r.par_for(None, i, 0, 21, |body| {
                body.load(a, Expr::v(i));
            });
        });
        b.build()
    }

    fn failure() -> Failure {
        Failure {
            kind: FailKind::OracleMismatch,
            mode: "slip-G0".into(),
            class: "exact".into(),
            field: "loads".into(),
            detail: "engine 20 vs trace 21 at team 4".into(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let opts = {
            let mut o = DiffOptions::campaign();
            o.mutation = EngineMutation::ChunkOffByOne;
            o.fault_seed = Some(99);
            o
        };
        let r = Repro::new(Some(7), failure(), &opts, program());
        let text = r.to_json();
        let back = Repro::from_json(&text).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.file_name(), r.file_name());
    }

    #[test]
    fn tampered_fingerprint_is_rejected() {
        let r = Repro::new(None, failure(), &DiffOptions::campaign(), program());
        let text = r.to_json().replace(&r.fingerprint(), "0000000000000000");
        let err = Repro::from_json(&text).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn replay_of_mutated_case_reproduces_from_artifact_alone() {
        let base = DiffOptions::campaign();
        let mut mutated = base.clone();
        mutated.mutation = EngineMutation::ChunkOffByOne;
        let p = program();
        let res = run_case(&p, &mutated);
        let f = res
            .failures
            .iter()
            .find(|f| f.kind == FailKind::OracleMismatch)
            .expect("mutation caught")
            .clone();
        let r = Repro::new(Some(1), f, &mutated, p);
        let text = r.to_json();
        // From the serialized artifact alone:
        let back = Repro::from_json(&text).unwrap();
        let hits = back.replay(&base);
        assert!(!hits.is_empty(), "artifact did not reproduce");
    }
}
