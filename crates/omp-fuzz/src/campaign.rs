//! Campaign driving: seeded batches of differential cases with
//! fingerprint deduplication, auto-shrinking, corpus promotion, and the
//! engine-mutation self-check.
//!
//! A campaign is a pure function of its configuration: the same
//! `(seed, iters, GenConfig, DiffOptions)` always generates the same
//! programs, observes the same failures, and minimizes them to the same
//! repros.

use dsm_sim::rng::SplitMix64;
use omp_analyze::Equivalence;
use omp_ir::node::Program;
use slipstream::EngineMutation;

use crate::artifact::Repro;
use crate::diff::{run_case, DiffOptions};
use crate::gen::{generate, GenConfig};
use crate::shrink::shrink;

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Cases to run.
    pub iters: u64,
    /// Master seed; per-case seeds derive from it deterministically.
    pub seed: u64,
    /// Program-generator shape.
    pub gen: GenConfig,
    /// Differential-harness options (machine, budget, mutation, ...).
    pub diff: DiffOptions,
    /// Every `n`-th case additionally runs the slipstream modes under a
    /// seeded fault plan (`None` disables fault passes).
    pub fault_every: Option<u64>,
    /// Minimize each newly-fingerprinted failure before archiving it.
    pub shrink_failures: bool,
    /// Cap on promoted clean survivors.
    pub max_survivors: usize,
}

impl CampaignConfig {
    /// Production defaults for `iters` cases from `seed`.
    pub fn new(iters: u64, seed: u64) -> Self {
        CampaignConfig {
            iters,
            seed,
            gen: GenConfig::campaign(),
            diff: DiffOptions::campaign(),
            fault_every: Some(5),
            shrink_failures: true,
            max_survivors: 16,
        }
    }
}

/// Per-case outcome, streamed to the progress callback.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case index within the campaign.
    pub index: u64,
    /// Generator seed of this case.
    pub case_seed: u64,
    /// Analyzer class the program was assigned.
    pub class: Equivalence,
    /// Whether the case ran under a fault plan.
    pub faulted: bool,
    /// Failures observed (before deduplication).
    pub failures: usize,
    /// Failures with a fingerprint not seen earlier in the campaign.
    pub new_fingerprints: usize,
}

/// Aggregated campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Cases executed.
    pub cases: u64,
    /// Programs per class: `[exact, converge-only, deny]`.
    pub class_counts: [u64; 3],
    /// Cases that ran a fault pass.
    pub faulted_cases: u64,
    /// One minimized repro per unique fingerprint, in discovery order.
    pub repros: Vec<Repro>,
    /// `(fingerprint, occurrences)` in discovery order.
    pub fingerprint_counts: Vec<(String, u64)>,
    /// Clean exact-class programs promoted for the soak corpus.
    pub survivors: Vec<Program>,
}

impl CampaignResult {
    /// No failures across the whole campaign.
    pub fn clean(&self) -> bool {
        self.repros.is_empty()
    }

    /// Summary document (`failures.json`) for CI artifact upload.
    pub fn summary_json(&self) -> String {
        let fps: Vec<String> = self
            .fingerprint_counts
            .iter()
            .zip(&self.repros)
            .map(|((fp, n), r)| {
                format!(
                    "{{\"fingerprint\":\"{fp}\",\"count\":{n},\"key\":\"{}\",\"nodes\":{}}}",
                    r.failure.fingerprint_key(),
                    r.program.node_count()
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"cases\":{},\"exact\":{},\"converge_only\":{},\"deny\":{},",
                "\"faulted_cases\":{},\"survivors\":{},\"unique_failures\":{},",
                "\"failures\":[{}]}}"
            ),
            self.cases,
            self.class_counts[0],
            self.class_counts[1],
            self.class_counts[2],
            self.faulted_cases,
            self.survivors.len(),
            self.repros.len(),
            fps.join(",")
        )
    }
}

fn class_index(c: Equivalence) -> usize {
    match c {
        Equivalence::Exact => 0,
        Equivalence::ConvergeOnly => 1,
        Equivalence::Deny => 2,
    }
}

/// A survivor worth keeping: clean, exact class, completed everywhere,
/// and structurally rich enough to stress the engine as a soak scenario.
fn promotable(p: &Program, class: Equivalence, modes_completed: u64, clean: bool) -> bool {
    clean && class == Equivalence::Exact && modes_completed == 4 && p.node_count() >= 12
}

/// Run a campaign, streaming per-case outcomes to `progress`.
pub fn run_campaign_with<F: FnMut(&CaseOutcome)>(
    cfg: &CampaignConfig,
    mut progress: F,
) -> CampaignResult {
    let mut seeds = SplitMix64::new(cfg.seed ^ 0xCA_3B_A1_67);
    let mut result = CampaignResult {
        cases: 0,
        class_counts: [0; 3],
        faulted_cases: 0,
        repros: Vec::new(),
        fingerprint_counts: Vec::new(),
        survivors: Vec::new(),
    };
    for index in 0..cfg.iters {
        let case_seed = seeds.next_u64();
        let program = generate(case_seed, &cfg.gen);
        let mut diff = cfg.diff.clone();
        let faulted = cfg
            .fault_every
            .map(|n| n > 0 && index % n == n - 1)
            .unwrap_or(false);
        if faulted {
            diff.fault_seed = Some(case_seed ^ 0xFA17);
            result.faulted_cases += 1;
        }
        let res = run_case(&program, &diff);
        result.cases += 1;
        result.class_counts[class_index(res.class)] += 1;
        let mut new_fingerprints = 0;
        for f in &res.failures {
            let fp = f.fingerprint();
            if let Some(entry) = result.fingerprint_counts.iter_mut().find(|(k, _)| *k == fp) {
                entry.1 += 1;
                continue;
            }
            new_fingerprints += 1;
            result.fingerprint_counts.push((fp, 1));
            let minimized = if cfg.shrink_failures {
                shrink(&program, &diff, &f.fingerprint_key()).program
            } else {
                program.clone()
            };
            result
                .repros
                .push(Repro::new(Some(case_seed), f.clone(), &diff, minimized));
        }
        if result.survivors.len() < cfg.max_survivors
            && promotable(&program, res.class, res.modes_completed, res.clean())
        {
            result.survivors.push(program.clone());
        }
        progress(&CaseOutcome {
            index,
            case_seed,
            class: res.class,
            faulted,
            failures: res.failures.len(),
            new_fingerprints,
        });
    }
    result
}

/// [`run_campaign_with`] without a progress callback.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    run_campaign_with(cfg, |_| {})
}

/// Prove the whole loop catches a seeded engine bug: run a campaign with
/// `mutation` enabled until a failure appears, minimize it, serialize
/// it, and verify the minimized case reproduces **from the serialized
/// artifact alone**. Returns the artifact.
pub fn self_check_mutation(
    mutation: EngineMutation,
    seed: u64,
    max_cases: u64,
) -> Result<Repro, String> {
    let gen_cfg = GenConfig::campaign();
    let mut diff = DiffOptions::campaign();
    diff.mutation = mutation;
    let mut seeds = SplitMix64::new(seed ^ 0x5E1F);
    for _ in 0..max_cases {
        let case_seed = seeds.next_u64();
        let program = generate(case_seed, &gen_cfg);
        let res = run_case(&program, &diff);
        let Some(f) = res.failures.first() else {
            continue;
        };
        let key = f.fingerprint_key();
        let minimized = shrink(&program, &diff, &key).program;
        let repro = Repro::new(Some(case_seed), f.clone(), &diff, minimized);
        let text = repro.to_json();
        let back = Repro::from_json(&text)
            .map_err(|e| format!("self-check: artifact failed to parse back: {e}"))?;
        if back.replay(&DiffOptions::campaign()).is_empty() {
            return Err(format!(
                "self-check: minimized artifact for `{}` did not reproduce on replay",
                mutation.label()
            ));
        }
        return Ok(back);
    }
    Err(format!(
        "self-check: mutation `{}` produced no failure in {max_cases} cases",
        mutation.label()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_deterministic() {
        let mut cfg = CampaignConfig::new(12, 7);
        cfg.gen = GenConfig::small();
        cfg.shrink_failures = false;
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.class_counts, b.class_counts);
        assert_eq!(a.fingerprint_counts, b.fingerprint_counts);
        assert_eq!(a.survivors, b.survivors);
    }

    #[test]
    fn clean_campaign_produces_survivors_and_summary() {
        let mut cfg = CampaignConfig::new(20, 3);
        cfg.gen = GenConfig::small();
        let res = run_campaign(&cfg);
        assert_eq!(res.cases, 20);
        assert!(
            res.clean(),
            "unexpected failures: {:?}",
            res.fingerprint_counts
        );
        assert!(res.faulted_cases > 0);
        let summary = res.summary_json();
        let v = omp_ir::parse_json(&summary).expect("summary is valid JSON");
        assert_eq!(v.get("cases").and_then(|x| x.as_u64()), Some(20));
        assert_eq!(v.get("unique_failures").and_then(|x| x.as_u64()), Some(0));
    }
}
