//! Auto-shrinking repro minimization: deterministic delta debugging
//! over the IR.
//!
//! The shrinker repeatedly enumerates every *single-edit* variant of the
//! current program — child deletions, trip-count reductions, clause
//! strips, construct unwraps, expression simplifications, and a
//! declaration garbage-collection pass — and greedily commits the first
//! variant that (a) strictly reduces the size metric, (b) still
//! validates, and (c) still reproduces the original failure's
//! [fingerprint key](crate::diff::Failure::fingerprint_key). It stops at
//! a fixpoint: the result is 1-minimal with respect to the edit set
//! (no single remaining edit preserves the failure).
//!
//! Two tempting edits are deliberately absent:
//!
//! * **Loop unwrapping** (`For`/`ParFor` → body) would leave the
//!   induction variable unbound. The engine lets variable slots persist
//!   across regions while the trace oracle resets them, so an unbound
//!   read can *manufacture* a differential that the original program
//!   never had — the shrinker must not be able to walk out of the
//!   original bug's equivalence class via harness artifacts. Unwrapping
//!   `Single`/`Master`/`Critical` is safe (their bodies bind nothing).
//! * **Array-length reduction** would change address layout and cache
//!   behaviour wholesale; instead, only entire *unused* arrays, tables,
//!   and variable slots are collected (with id remapping), which cannot
//!   perturb the surviving accesses.
//!
//! Everything is deterministic: the same input program, options, and
//! fingerprint key always produce the same minimized program.

use omp_ir::node::{Node, Program};
use omp_ir::{ArrayId, Expr, TableId, VarId};

use crate::diff::{run_case, DiffOptions};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized program (equal to the input if nothing shrank).
    pub program: Program,
    /// Greedy rounds performed (edits committed).
    pub rounds: u64,
    /// Candidate programs evaluated against the reproduction predicate.
    pub candidates_tried: u64,
}

/// Size metric the shrinker strictly decreases. Node count dominates;
/// expression size, clauses, and declarations break ties so clause
/// strips and GC count as progress.
fn weight(p: &Program) -> u64 {
    fn expr_size(e: &Expr) -> u64 {
        match e {
            Expr::Const(_) | Expr::Var(_) | Expr::ThreadId | Expr::NumThreads => 1,
            Expr::Bin(_, a, b) => 1 + expr_size(a) + expr_size(b),
            Expr::Table(_, i) => 1 + expr_size(i),
        }
    }
    fn node_weight(n: &Node) -> u64 {
        match n {
            Node::Seq(v) | Node::Sections(v) => v.iter().map(node_weight).sum(),
            Node::Compute(e) => expr_size(e),
            Node::Load { index, .. } | Node::Store { index, .. } | Node::Atomic { index, .. } => {
                expr_size(index)
            }
            Node::For {
                begin, end, body, ..
            } => expr_size(begin) + expr_size(end) + node_weight(body),
            Node::Parallel { body, slipstream } => {
                node_weight(body) + if slipstream.is_some() { 1 } else { 0 }
            }
            Node::ParFor {
                sched,
                begin,
                end,
                body,
                reduction,
                nowait,
                ..
            } => {
                expr_size(begin)
                    + expr_size(end)
                    + node_weight(body)
                    + if sched.is_some() { 1 } else { 0 }
                    + reduction.as_ref().map_or(0, |r| 1 + expr_size(&r.index))
                    + u64::from(*nowait)
            }
            Node::Single(b) | Node::Master(b) | Node::Critical { body: b, .. } => node_weight(b),
            _ => 0,
        }
    }
    p.node_count() as u64 * 1000
        + node_weight(&p.body)
        + p.arrays.len() as u64 * 10
        + p.tables.len() as u64 * 10
        + p.num_vars as u64
}

/// All single-edit variants of `n`, shallowest edits first (bigger
/// deletions are enumerated before deeper cosmetic simplifications, so
/// the greedy loop converges in fewer rounds).
fn node_variants(n: &Node) -> Vec<Node> {
    let mut out = Vec::new();
    match n {
        Node::Seq(v) => {
            for i in 0..v.len() {
                let mut w = v.clone();
                w.remove(i);
                out.push(Node::Seq(w));
            }
            for i in 0..v.len() {
                for child in node_variants(&v[i]) {
                    let mut w = v.clone();
                    w[i] = child;
                    out.push(Node::Seq(w));
                }
            }
        }
        Node::Sections(v) => {
            out.push(Node::nop());
            if v.len() > 1 {
                for i in 0..v.len() {
                    let mut w = v.clone();
                    w.remove(i);
                    out.push(Node::Sections(w));
                }
            }
            for i in 0..v.len() {
                for child in node_variants(&v[i]) {
                    let mut w = v.clone();
                    w[i] = child;
                    out.push(Node::Sections(w));
                }
            }
        }
        Node::Parallel { body, slipstream } => {
            out.push(Node::nop());
            if slipstream.is_some() {
                out.push(Node::Parallel {
                    body: body.clone(),
                    slipstream: None,
                });
            }
            for child in node_variants(body) {
                out.push(Node::Parallel {
                    body: Box::new(child),
                    slipstream: *slipstream,
                });
            }
        }
        Node::ParFor {
            sched,
            var,
            begin,
            end,
            body,
            reduction,
            nowait,
        } => {
            let mk =
                |sched, begin: Expr, end: Expr, body: Box<Node>, reduction, nowait| Node::ParFor {
                    sched,
                    var: *var,
                    begin,
                    end,
                    body,
                    reduction,
                    nowait,
                };
            out.push(Node::nop());
            // Trip reductions: down to a single iteration, and by halving.
            let single_trip = (Expr::c(0), Expr::c(1));
            if (begin, end) != (&single_trip.0, &single_trip.1) {
                out.push(mk(
                    *sched,
                    single_trip.0,
                    single_trip.1,
                    body.clone(),
                    reduction.clone(),
                    *nowait,
                ));
            }
            if let (Expr::Const(b), Expr::Const(e)) = (begin, end) {
                let mid = b + (e - b) / 2;
                if mid > *b && mid < *e {
                    out.push(mk(
                        *sched,
                        begin.clone(),
                        Expr::c(mid),
                        body.clone(),
                        reduction.clone(),
                        *nowait,
                    ));
                }
            }
            if sched.is_some() {
                out.push(mk(
                    None,
                    begin.clone(),
                    end.clone(),
                    body.clone(),
                    reduction.clone(),
                    *nowait,
                ));
            }
            if reduction.is_some() {
                out.push(mk(
                    *sched,
                    begin.clone(),
                    end.clone(),
                    body.clone(),
                    None,
                    *nowait,
                ));
            }
            if *nowait {
                out.push(mk(
                    *sched,
                    begin.clone(),
                    end.clone(),
                    body.clone(),
                    reduction.clone(),
                    false,
                ));
            }
            for child in node_variants(body) {
                out.push(mk(
                    *sched,
                    begin.clone(),
                    end.clone(),
                    Box::new(child),
                    reduction.clone(),
                    *nowait,
                ));
            }
        }
        Node::For {
            var,
            begin,
            end,
            step,
            body,
        } => {
            out.push(Node::nop());
            if !matches!((begin, end), (Expr::Const(0), Expr::Const(1))) {
                out.push(Node::For {
                    var: *var,
                    begin: Expr::c(0),
                    end: Expr::c(1),
                    step: *step,
                    body: body.clone(),
                });
            }
            for child in node_variants(body) {
                out.push(Node::For {
                    var: *var,
                    begin: begin.clone(),
                    end: end.clone(),
                    step: *step,
                    body: Box::new(child),
                });
            }
        }
        Node::Single(b) => {
            out.push(Node::nop());
            out.push((**b).clone()); // unwrap: body binds nothing
            for child in node_variants(b) {
                out.push(Node::Single(Box::new(child)));
            }
        }
        Node::Master(b) => {
            out.push(Node::nop());
            out.push((**b).clone());
            for child in node_variants(b) {
                out.push(Node::Master(Box::new(child)));
            }
        }
        Node::Critical { name, body } => {
            out.push(Node::nop());
            out.push((**body).clone());
            for child in node_variants(body) {
                out.push(Node::Critical {
                    name: name.clone(),
                    body: Box::new(child),
                });
            }
        }
        Node::Compute(e) => {
            out.push(Node::nop());
            if !matches!(e, Expr::Const(_)) {
                out.push(Node::Compute(Expr::c(1)));
            }
        }
        Node::Load { array, index } => {
            out.push(Node::nop());
            if !matches!(index, Expr::Const(_)) {
                out.push(Node::Load {
                    array: *array,
                    index: Expr::c(0),
                });
            }
        }
        Node::Store { array, index } => {
            out.push(Node::nop());
            if !matches!(index, Expr::Const(_)) {
                out.push(Node::Store {
                    array: *array,
                    index: Expr::c(0),
                });
            }
        }
        Node::Atomic { array, index } => {
            out.push(Node::nop());
            if !matches!(index, Expr::Const(_)) {
                out.push(Node::Atomic {
                    array: *array,
                    index: Expr::c(0),
                });
            }
        }
        Node::Barrier | Node::Flush | Node::Io { .. } | Node::SlipstreamSet(_) => {
            out.push(Node::nop());
        }
    }
    out
}

/// Usage sets for declaration GC.
#[derive(Default)]
struct Used {
    arrays: Vec<bool>,
    tables: Vec<bool>,
    max_var: Option<u32>,
}

impl Used {
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(_) | Expr::ThreadId | Expr::NumThreads => {}
            Expr::Var(v) => self.var(*v),
            Expr::Bin(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Table(t, i) => {
                if let Some(slot) = self.tables.get_mut(t.0 as usize) {
                    *slot = true;
                }
                self.expr(i);
            }
        }
    }

    fn var(&mut self, v: VarId) {
        self.max_var = Some(self.max_var.map_or(v.0, |m| m.max(v.0)));
    }

    fn array(&mut self, a: ArrayId) {
        if let Some(slot) = self.arrays.get_mut(a.0 as usize) {
            *slot = true;
        }
    }

    fn node(&mut self, n: &Node) {
        match n {
            Node::Seq(v) | Node::Sections(v) => v.iter().for_each(|c| self.node(c)),
            Node::Compute(e) => self.expr(e),
            Node::Load { array, index }
            | Node::Store { array, index }
            | Node::Atomic { array, index } => {
                self.array(*array);
                self.expr(index);
            }
            Node::For {
                var,
                begin,
                end,
                body,
                ..
            } => {
                self.var(*var);
                self.expr(begin);
                self.expr(end);
                self.node(body);
            }
            Node::Parallel { body, .. } => self.node(body),
            Node::ParFor {
                var,
                begin,
                end,
                body,
                reduction,
                ..
            } => {
                self.var(*var);
                self.expr(begin);
                self.expr(end);
                if let Some(r) = reduction {
                    self.array(r.target);
                    self.expr(&r.index);
                }
                self.node(body);
            }
            Node::Single(b) | Node::Master(b) | Node::Critical { body: b, .. } => self.node(b),
            _ => {}
        }
    }
}

/// Drop unused arrays/tables (remapping surviving ids) and compact the
/// variable-slot count. Returns `None` when nothing is collectable.
fn gc(p: &Program) -> Option<Program> {
    let mut used = Used {
        arrays: vec![false; p.arrays.len()],
        tables: vec![false; p.tables.len()],
        max_var: None,
    };
    used.node(&p.body);
    let want_vars = used.max_var.map_or(0, |m| m + 1);
    let all_arrays = used.arrays.iter().all(|u| *u);
    let all_tables = used.tables.iter().all(|u| *u);
    if all_arrays && all_tables && want_vars == p.num_vars {
        return None;
    }
    let amap: Vec<Option<u32>> = {
        let mut next = 0;
        used.arrays
            .iter()
            .map(|u| {
                if *u {
                    next += 1;
                    Some(next - 1)
                } else {
                    None
                }
            })
            .collect()
    };
    let tmap: Vec<Option<u32>> = {
        let mut next = 0;
        used.tables
            .iter()
            .map(|u| {
                if *u {
                    next += 1;
                    Some(next - 1)
                } else {
                    None
                }
            })
            .collect()
    };
    fn remap_expr(e: &Expr, tmap: &[Option<u32>]) -> Expr {
        match e {
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(remap_expr(a, tmap)),
                Box::new(remap_expr(b, tmap)),
            ),
            Expr::Table(t, i) => Expr::Table(
                TableId(tmap[t.0 as usize].expect("used table survives GC")),
                Box::new(remap_expr(i, tmap)),
            ),
            other => other.clone(),
        }
    }
    fn remap_node(n: &Node, amap: &[Option<u32>], tmap: &[Option<u32>]) -> Node {
        let ra = |a: &ArrayId| ArrayId(amap[a.0 as usize].expect("used array survives GC"));
        match n {
            Node::Seq(v) => Node::Seq(v.iter().map(|c| remap_node(c, amap, tmap)).collect()),
            Node::Sections(v) => {
                Node::Sections(v.iter().map(|c| remap_node(c, amap, tmap)).collect())
            }
            Node::Compute(e) => Node::Compute(remap_expr(e, tmap)),
            Node::Load { array, index } => Node::Load {
                array: ra(array),
                index: remap_expr(index, tmap),
            },
            Node::Store { array, index } => Node::Store {
                array: ra(array),
                index: remap_expr(index, tmap),
            },
            Node::Atomic { array, index } => Node::Atomic {
                array: ra(array),
                index: remap_expr(index, tmap),
            },
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => Node::For {
                var: *var,
                begin: remap_expr(begin, tmap),
                end: remap_expr(end, tmap),
                step: *step,
                body: Box::new(remap_node(body, amap, tmap)),
            },
            Node::Parallel { body, slipstream } => Node::Parallel {
                body: Box::new(remap_node(body, amap, tmap)),
                slipstream: *slipstream,
            },
            Node::ParFor {
                sched,
                var,
                begin,
                end,
                body,
                reduction,
                nowait,
            } => Node::ParFor {
                sched: *sched,
                var: *var,
                begin: remap_expr(begin, tmap),
                end: remap_expr(end, tmap),
                body: Box::new(remap_node(body, amap, tmap)),
                reduction: reduction.as_ref().map(|r| omp_ir::node::Reduction {
                    op: r.op,
                    target: ra(&r.target),
                    index: remap_expr(&r.index, tmap),
                }),
                nowait: *nowait,
            },
            Node::Single(b) => Node::Single(Box::new(remap_node(b, amap, tmap))),
            Node::Master(b) => Node::Master(Box::new(remap_node(b, amap, tmap))),
            Node::Critical { name, body } => Node::Critical {
                name: name.clone(),
                body: Box::new(remap_node(body, amap, tmap)),
            },
            other => other.clone(),
        }
    }
    Some(Program {
        name: p.name.clone(),
        arrays: p
            .arrays
            .iter()
            .zip(&used.arrays)
            .filter(|(_, u)| **u)
            .map(|(a, _)| a.clone())
            .collect(),
        tables: p
            .tables
            .iter()
            .zip(&used.tables)
            .filter(|(_, u)| **u)
            .map(|(t, _)| t.clone())
            .collect(),
        num_vars: want_vars,
        body: remap_node(&p.body, &amap, &tmap),
    })
}

/// Does `p` still produce a failure with the given fingerprint key?
fn reproduces(p: &Program, opts: &DiffOptions, key: &str) -> bool {
    run_case(p, opts)
        .failures
        .iter()
        .any(|f| f.fingerprint_key() == key)
}

/// Minimize `program` while preserving a failure with fingerprint `key`.
///
/// Greedy first-improvement fixpoint: each round re-enumerates all
/// single-edit candidates of the current program and commits the first
/// one that is strictly smaller, valid, and still reproduces. Terminates
/// because the weight strictly decreases every round. If the input does
/// not reproduce at all, it is returned unchanged.
pub fn shrink(program: &Program, opts: &DiffOptions, key: &str) -> ShrinkResult {
    let mut tried = 0u64;
    tried += 1;
    if !reproduces(program, opts, key) {
        return ShrinkResult {
            program: program.clone(),
            rounds: 0,
            candidates_tried: tried,
        };
    }
    let mut cur = program.clone();
    let mut rounds = 0u64;
    loop {
        let cur_weight = weight(&cur);
        let mut advanced = false;
        let mut candidates: Vec<Program> = node_variants(&cur.body)
            .into_iter()
            .map(|body| Program {
                name: cur.name.clone(),
                arrays: cur.arrays.clone(),
                tables: cur.tables.clone(),
                num_vars: cur.num_vars,
                body,
            })
            .collect();
        if let Some(g) = gc(&cur) {
            candidates.push(g);
        }
        for cand in candidates {
            if weight(&cand) >= cur_weight || omp_ir::validate(&cand).is_err() {
                continue;
            }
            tried += 1;
            if reproduces(&cand, opts, key) {
                cur = cand;
                rounds += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    ShrinkResult {
        program: cur,
        rounds,
        candidates_tried: tried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{DiffOptions, FailKind};
    use omp_ir::node::{Node, Program, ScheduleSpec};
    use omp_ir::{ArrayDecl, Expr, VarId};
    use slipstream::EngineMutation;

    /// A bloated program whose only real content is a static worksharing
    /// loop — the chunk-off-by-one mutation makes it undercount loads.
    fn bloated() -> Program {
        let i = VarId(0);
        let j = VarId(1);
        Program {
            name: "bloat".into(),
            arrays: vec![
                ArrayDecl {
                    name: "a".into(),
                    shared: true,
                    len: 64,
                    elem_bytes: 8,
                },
                ArrayDecl {
                    name: "unused".into(),
                    shared: true,
                    len: 64,
                    elem_bytes: 8,
                },
            ],
            tables: vec![vec![1; 64]],
            num_vars: 4,
            body: Node::Seq(vec![
                Node::Compute(Expr::c(5)),
                Node::Parallel {
                    body: Box::new(Node::Seq(vec![
                        Node::ParFor {
                            sched: Some(ScheduleSpec::static_default()),
                            var: i,
                            begin: Expr::c(0),
                            end: Expr::c(37),
                            body: Box::new(Node::Seq(vec![
                                Node::Load {
                                    array: omp_ir::ArrayId(0),
                                    index: Expr::v(i),
                                },
                                Node::Compute(Expr::v(i).rem(Expr::c(4)) + Expr::c(1)),
                            ])),
                            reduction: None,
                            nowait: false,
                        },
                        Node::Master(Box::new(Node::Compute(Expr::c(9)))),
                        Node::For {
                            var: j,
                            begin: Expr::c(0),
                            end: Expr::c(3),
                            step: 1,
                            body: Box::new(Node::Compute(Expr::c(2))),
                        },
                    ])),
                    slipstream: None,
                },
            ]),
        }
    }

    #[test]
    fn shrinks_mutated_case_to_a_tiny_program() {
        let mut opts = DiffOptions::campaign();
        opts.mutation = EngineMutation::ChunkOffByOne;
        let p = bloated();
        let res = run_case(&p, &opts);
        let fail = res
            .failures
            .iter()
            .find(|f| f.kind == FailKind::OracleMismatch)
            .expect("mutation must be caught");
        let key = fail.fingerprint_key();
        let min = shrink(&p, &opts, &key);
        assert!(min.rounds > 0, "nothing shrank");
        assert!(
            min.program.node_count() < p.node_count(),
            "no node reduction: {} -> {}",
            p.node_count(),
            min.program.node_count()
        );
        assert!(
            min.program.node_count() <= 25,
            "not minimal enough: {} nodes",
            min.program.node_count()
        );
        // Unused declarations must be gone.
        assert!(min.program.arrays.len() <= 1);
        assert!(min.program.tables.is_empty());
        // And the minimized program still reproduces from scratch.
        assert!(run_case(&min.program, &opts)
            .failures
            .iter()
            .any(|f| f.fingerprint_key() == key));
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let opts = DiffOptions::campaign();
        let p = bloated();
        let res = shrink(&p, &opts, "hang|slip-G0|exact|-");
        assert_eq!(res.rounds, 0);
        assert_eq!(res.program, p);
    }

    #[test]
    fn gc_collects_unused_declarations_and_remaps() {
        let p = bloated();
        let g = gc(&p).expect("bloated program has garbage");
        assert_eq!(g.arrays.len(), 1);
        assert_eq!(g.arrays[0].name, "a");
        assert!(g.tables.is_empty());
        assert_eq!(g.num_vars, 2);
        assert!(omp_ir::validate(&g).is_ok());
        // Semantics preserved: same trace totals.
        assert_eq!(omp_ir::trace(&g, 4).total, omp_ir::trace(&p, 4).total);
    }
}
