//! MG — multigrid V-cycle on a 3D grid.
//!
//! Follows NPB MG's phase structure: residual on the finest grid,
//! restriction down the level hierarchy, smoothing at the coarsest level,
//! then interpolation + smoothing back up. The coarse levels have very
//! little work between barriers — exactly the regime where the paper
//! reports MG gaining the most (20%) from slipstream's barrier skipping —
//! while the fine-level stencils exchange ghost planes between slab
//! neighbours every phase.

use crate::grid::Grid3;
use omp_ir::builder::BlockBuilder;
use omp_ir::expr::{Expr, VarId};
use omp_ir::node::{ArrayId, Node, Program, ReductionOp, ScheduleSpec};
use omp_ir::ProgramBuilder;

/// MG workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgParams {
    /// Finest grid edge (power of two).
    pub nx: i64,
    /// Coarsest grid edge to descend to (power of two, ≥ 2).
    pub coarsest: i64,
    /// Number of V-cycles.
    pub v_cycles: i64,
    /// Busy cycles per point in smoothing/residual stencils.
    pub compute_per_point: i64,
    /// Worksharing schedule override.
    pub sched: Option<ScheduleSpec>,
}

impl MgParams {
    /// Paper-scale preset: a 32³ finest grid over levels 32→16→8→4.
    pub fn paper() -> Self {
        MgParams {
            nx: 32,
            coarsest: 4,
            v_cycles: 2,
            compute_per_point: 18,
            sched: None,
        }
    }

    /// Tiny preset for tests: 8³ → 4³.
    pub fn tiny() -> Self {
        MgParams {
            nx: 8,
            coarsest: 4,
            v_cycles: 1,
            compute_per_point: 6,
            sched: None,
        }
    }

    /// Override the worksharing schedule (a `None` argument keeps the
    /// current setting).
    pub fn with_schedule(mut self, sched: Option<ScheduleSpec>) -> Self {
        if sched.is_some() {
            self.sched = sched;
        }
        self
    }

    /// Grid edges of all levels, finest first.
    pub fn level_edges(&self) -> Vec<i64> {
        assert!(
            self.nx > 0
                && (self.nx as u64).is_power_of_two()
                && self.coarsest > 0
                && (self.coarsest as u64).is_power_of_two()
        );
        assert!(self.nx >= self.coarsest && self.coarsest >= 2);
        let mut v = Vec::new();
        let mut e = self.nx;
        while e >= self.coarsest {
            v.push(e);
            e /= 2;
        }
        v
    }

    /// Build the MG program.
    pub fn build(&self) -> Program {
        let edges = self.level_edges();
        let grids: Vec<Grid3> = edges.iter().map(|&e| Grid3::cube(e)).collect();
        let sched = self.sched;
        let cpp = self.compute_per_point;

        let mut b = ProgramBuilder::new("mg");
        let norm = b.shared_array("norm", 1, 8);
        let v = b.shared_array("v", grids[0].len() as u64, 8);
        let u: Vec<ArrayId> = grids
            .iter()
            .enumerate()
            .map(|(l, g)| b.shared_array(&format!("u{l}"), g.len() as u64, 8))
            .collect();
        let r: Vec<ArrayId> = grids
            .iter()
            .enumerate()
            .map(|(l, g)| b.shared_array(&format!("r{l}"), g.len() as u64, 8))
            .collect();
        let cy = b.var();
        let q = b.var();
        let i = b.var();

        b.serial(|s| s.io(true, 32 * 1024));

        let cycles = self.v_cycles;
        let grids2 = grids.clone();
        let u2 = u.clone();
        let r2 = r.clone();
        b.parallel(move |reg| {
            // Zero-init u0 and seed v (one pass each).
            plane_par_for(reg, sched, grids2[0], q, i, {
                let u0 = u2[0];
                move |body: &mut BlockBuilder, i| {
                    body.compute(1);
                    body.store(u0, Expr::v(i));
                    body.store(v, Expr::v(i));
                }
            });
            reg.push(Node::For {
                var: cy,
                begin: Expr::c(0),
                end: Expr::c(cycles),
                step: 1,
                body: Box::new(v_cycle(&grids2, v, &u2, &r2, sched, q, i, cpp)),
            });
            // Final residual norm (NPB MG's norm2u3 verification pass).
            let g0 = grids2[0];
            let r0 = r2[0];
            reg.par_for_reduce(
                sched,
                q,
                0,
                g0.nz,
                ReductionOp::Sum,
                norm,
                0,
                move |plane| {
                    plane.for_loop(
                        i,
                        Expr::v(q) * g0.dz(),
                        (Expr::v(q) + 1) * g0.dz(),
                        move |cell| {
                            cell.load(r0, Expr::v(i));
                            cell.compute(2);
                        },
                    );
                },
            );
            reg.master(|m| {
                m.load(norm, 0);
                m.compute(30);
            });
        });
        b.serial(|s| s.io(false, 512));
        b.build()
    }
}

/// 7-point stencil loads of `arr` around flat index `i`.
fn stencil_loads(body: &mut BlockBuilder, g: Grid3, arr: ArrayId, i: VarId) {
    body.load(arr, Expr::v(i));
    for off in g.stencil7_offsets() {
        body.load(arr, g.nbr(Expr::v(i), off));
    }
}

/// Worksharing over z-planes of `g` (`!$omp do` on the outer grid loop,
/// as NPB MG parallelizes), with a sequential inner loop over the plane's
/// points. At coarse levels this leaves threads beyond `nz` idle — the
/// load-balance cliff the real code has.
fn plane_par_for(
    blk: &mut BlockBuilder,
    sched: Option<ScheduleSpec>,
    g: Grid3,
    q: VarId,
    i: VarId,
    mut body_fn: impl FnMut(&mut BlockBuilder, VarId) + 'static,
) {
    let dz = g.dz();
    blk.par_for(sched, q, 0, g.nz, move |plane| {
        plane.for_loop(i, Expr::v(q) * dz, (Expr::v(q) + 1) * dz, |cell| {
            body_fn(cell, i);
        });
    });
}

/// One complete V-cycle.
#[allow(clippy::too_many_arguments)]
fn v_cycle(
    grids: &[Grid3],
    v: ArrayId,
    u: &[ArrayId],
    r: &[ArrayId],
    sched: Option<ScheduleSpec>,
    q: VarId,
    i: VarId,
    cpp: i64,
) -> Node {
    let levels = grids.len();
    let mut blk = BlockBuilder::default();

    // Residual at the finest level: r0 = v - A u0.
    {
        let g = grids[0];
        let (u0, r0) = (u[0], r[0]);
        plane_par_for(&mut blk, sched, g, q, i, move |body, i| {
            stencil_loads(body, g, u0, i);
            body.load(v, Expr::v(i));
            body.compute(cpp);
            body.store(r0, Expr::v(i));
        });
    }

    // Restrict r down the hierarchy: r_{l-1} -> r_l.
    for l in 1..levels {
        let (fine, coarse) = (grids[l - 1], grids[l]);
        let (rf, rc) = (r[l - 1], r[l]);
        plane_par_for(&mut blk, sched, coarse, q, i, move |body, i| {
            let nc = coarse.nx;
            let fx = fine.nx;
            let cx = Expr::v(i).rem(nc);
            let cyy = (Expr::v(i) / nc).rem(nc);
            let cz = Expr::v(i) / (nc * nc);
            let base = cx * 2 + (cyy * 2) * fx + (cz * 2) * (fx * fx);
            for off in [
                0,
                1,
                fine.dy(),
                fine.dy() + 1,
                fine.dz(),
                fine.dz() + 1,
                fine.dz() + fine.dy(),
                fine.dz() + fine.dy() + 1,
            ] {
                body.load(rf, fine.nbr(base.clone() + Expr::c(off), 0));
            }
            body.compute(cpp / 2 + 2);
            body.store(rc, Expr::v(i));
        });
    }

    // Smooth at the coarsest level: u_L = S(r_L).
    {
        let l = levels - 1;
        let g = grids[l];
        let (ul, rl) = (u[l], r[l]);
        plane_par_for(&mut blk, sched, g, q, i, move |body, i| {
            stencil_loads(body, g, rl, i);
            body.compute(cpp);
            body.store(ul, Expr::v(i));
        });
    }

    // Back up: interpolate u_{l+1} into u_l, then smooth u_l with r_l.
    for l in (0..levels - 1).rev() {
        let (fine, coarse) = (grids[l], grids[l + 1]);
        let (uf, uc, rl) = (u[l], u[l + 1], r[l]);
        // Interpolation: each fine point reads its parent.
        plane_par_for(&mut blk, sched, fine, q, i, move |body, i| {
            let fx = fine.nx;
            let nc = coarse.nx;
            let x = Expr::v(i).rem(fx);
            let y = (Expr::v(i) / fx).rem(fx);
            let z = Expr::v(i) / (fx * fx);
            let parent = x / 2 + (y / 2) * nc + (z / 2) * (nc * nc);
            body.load(uc, coarse.nbr(parent, 0));
            body.load(uf, Expr::v(i));
            body.compute(4);
            body.store(uf, Expr::v(i));
        });
        // Smoothing: u_l += S(r_l), as NPB's psinv — the smoother reads
        // the *residual's* stencil, never a neighbour's in-flight u
        // update, so slab-boundary planes don't race within the phase.
        plane_par_for(&mut blk, sched, fine, q, i, move |body, i| {
            stencil_loads(body, fine, rl, i);
            body.load(uf, Expr::v(i));
            body.compute(cpp);
            body.store(uf, Expr::v(i));
        });
    }

    blk.into_node()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::trace::trace;
    use omp_ir::validate::validate;

    #[test]
    fn tiny_mg_builds_and_validates() {
        let p = MgParams::tiny().build();
        validate(&p).unwrap();
        assert_eq!(p.name, "mg");
    }

    #[test]
    fn paper_mg_builds_and_validates() {
        let p = MgParams::paper().build();
        validate(&p).unwrap();
    }

    #[test]
    fn level_edges_descend_by_halving() {
        assert_eq!(MgParams::paper().level_edges(), vec![32, 16, 8, 4]);
        assert_eq!(MgParams::tiny().level_edges(), vec![8, 4]);
    }

    #[test]
    fn v_cycle_work_matches_structure() {
        let params = MgParams::tiny();
        let p = params.build();
        let t = trace(&p, 4);
        // Loads per cycle: resid 8*512; restrict 8*64; coarse smooth 7*64;
        // interp 2*512; fine smooth 8*512.
        // Per-cycle phases plus the final verification norm.
        let expected = 8 * 512 + 8 * 64 + 7 * 64 + 2 * 512 + 8 * 512 + 512 + 1;
        assert_eq!(t.total.loads, expected as u64);
        // Barriers: init + per cycle 5 loop barriers + final norm loop +
        // region end.
        assert_eq!(t.barrier_episodes, 1 + 5 + 1 + 1);
    }

    #[test]
    fn cycles_scale_work_linearly() {
        let mut params = MgParams::tiny();
        let t1 = trace(&params.build(), 4);
        params.v_cycles = 3;
        let t3 = trace(&params.build(), 4);
        // Stores: init (2*512) is cycle-independent; the final norm adds
        // none. Per-cycle stores scale linearly.
        let init_stores = 2 * 512;
        let per_cycle_stores = (t1.total.stores - init_stores) as i64;
        assert_eq!(
            t3.total.stores as i64,
            init_stores as i64 + 3 * per_cycle_stores
        );
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_grids_panic() {
        let mut p = MgParams::tiny();
        p.nx = 12;
        p.level_edges();
    }
}
