//! Shared workload-definition types.
//!
//! Each benchmark has a parameter struct with two presets: `paper()` —
//! scaled problem sizes chosen, as in the paper, so that on 16 CMPs
//! "communication starts to dominate execution time" while keeping the
//! simulation tractable — and `tiny()` for fast unit/integration tests.

use omp_ir::node::{Program, ScheduleSpec};

/// The five NPB codes the paper evaluates (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Block-tridiagonal ADI solver.
    Bt,
    /// Conjugate gradient with an irregular sparse matrix.
    Cg,
    /// SSOR solver with pipelined wavefront sweeps.
    Lu,
    /// Multigrid V-cycle.
    Mg,
    /// Scalar-pentadiagonal ADI solver.
    Sp,
}

impl Benchmark {
    /// All benchmarks in the paper's order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Bt,
        Benchmark::Cg,
        Benchmark::Lu,
        Benchmark::Mg,
        Benchmark::Sp,
    ];

    /// Lower-case name (as in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bt => "bt",
            Benchmark::Cg => "cg",
            Benchmark::Lu => "lu",
            Benchmark::Mg => "mg",
            Benchmark::Sp => "sp",
        }
    }

    /// Build the benchmark at the paper-scale preset with an optional
    /// worksharing schedule override (used by the dynamic-scheduling
    /// experiments; `None` keeps the compiler default, which is static).
    pub fn build_paper(self, sched: Option<ScheduleSpec>) -> Program {
        match self {
            Benchmark::Bt => crate::bt::BtParams::paper().with_schedule(sched).build(),
            Benchmark::Cg => crate::cg::CgParams::paper().with_schedule(sched).build(),
            Benchmark::Lu => crate::lu::LuParams::paper().with_schedule(sched).build(),
            Benchmark::Mg => crate::mg::MgParams::paper().with_schedule(sched).build(),
            Benchmark::Sp => crate::sp::SpParams::paper().with_schedule(sched).build(),
        }
    }

    /// Build the benchmark at the fast test preset.
    pub fn build_tiny(self) -> Program {
        match self {
            Benchmark::Bt => crate::bt::BtParams::tiny().build(),
            Benchmark::Cg => crate::cg::CgParams::tiny().build(),
            Benchmark::Lu => crate::lu::LuParams::tiny().build(),
            Benchmark::Mg => crate::mg::MgParams::tiny().build(),
            Benchmark::Sp => crate::sp::SpParams::tiny().build(),
        }
    }

    /// Build the fast test preset with a worksharing schedule override.
    pub fn build_tiny_sched(self, sched: ScheduleSpec) -> Program {
        let sched = Some(sched);
        match self {
            Benchmark::Bt => crate::bt::BtParams::tiny().with_schedule(sched).build(),
            Benchmark::Cg => crate::cg::CgParams::tiny().with_schedule(sched).build(),
            Benchmark::Lu => crate::lu::LuParams::tiny().with_schedule(sched).build(),
            Benchmark::Mg => crate::mg::MgParams::tiny().with_schedule(sched).build(),
            Benchmark::Sp => crate::sp::SpParams::tiny().with_schedule(sched).build(),
        }
    }

    /// Whether the benchmark participates in the dynamic-scheduling
    /// experiment (the paper excludes LU: "static scheduling is
    /// programmatically specified in this benchmark for a significant
    /// portion of the code").
    pub fn in_dynamic_experiment(self) -> bool {
        self != Benchmark::Lu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_order_match_the_paper() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["bt", "cg", "lu", "mg", "sp"]);
    }

    #[test]
    fn lu_is_excluded_from_dynamic() {
        assert!(!Benchmark::Lu.in_dynamic_experiment());
        assert!(Benchmark::Cg.in_dynamic_experiment());
    }
}
