//! SP — scalar-pentadiagonal ADI solver.
//!
//! Same phase structure as BT but with scalar pentadiagonal systems:
//! much less compute per point, which makes SP more memory-bound — the
//! paper reports SP gaining the most (20%) from slipstream under dynamic
//! scheduling.

use crate::adi::AdiParams;
use omp_ir::node::{Program, ScheduleSpec};

/// SP workload parameters (thin wrapper over the shared ADI structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpParams(pub AdiParams);

impl SpParams {
    /// Paper-scale preset: a 16³ grid, light scalar solves.
    pub fn paper() -> Self {
        SpParams(AdiParams {
            name: "sp".into(),
            n: 16,
            iters: 4,
            rhs_compute: 110,
            solve_compute: 260,
            elem_bytes: 40,
            sched: None,
        })
    }

    /// Tiny preset for tests.
    pub fn tiny() -> Self {
        SpParams(AdiParams {
            name: "sp".into(),
            n: 6,
            iters: 1,
            rhs_compute: 12,
            solve_compute: 20,
            elem_bytes: 40,
            sched: None,
        })
    }

    /// Override the worksharing schedule.
    pub fn with_schedule(mut self, sched: Option<ScheduleSpec>) -> Self {
        self.0 = self.0.with_schedule(sched);
        self
    }

    /// Build the SP program.
    pub fn build(&self) -> Program {
        self.0.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::validate::validate;

    #[test]
    fn presets_build_and_validate() {
        validate(&SpParams::tiny().build()).unwrap();
        let p = SpParams::paper().build();
        validate(&p).unwrap();
        assert_eq!(p.name, "sp");
    }
}
