//! LU — SSOR solver with wavefront (hyperplane) sweeps.
//!
//! NPB LU's lower/upper triangular solves carry a dependence along the
//! sweep direction. We parallelize them over (y+z) diagonal wavefronts
//! with whole x-lines as the work unit: each diagonal is a worksharing
//! loop, so a sweep is a long pipeline of small phases with a barrier per
//! diagonal, and every thread owns contiguous x-lines (no cache line is
//! written by two threads). The OpenMP port specifies **static**
//! scheduling programmatically for this portion, which is why the paper
//! excludes LU from the dynamic-scheduling experiment; the rhs phase
//! follows the schedule override like the other codes. LU shows the
//! smallest slipstream gain in the paper (5%).

use crate::grid::Grid3;
use omp_ir::builder::BlockBuilder;
use omp_ir::expr::{Expr, TableId, VarId};
use omp_ir::node::{ArrayId, Node, Program, ScheduleSpec};
use omp_ir::ProgramBuilder;

/// LU workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LuParams {
    /// Grid edge.
    pub n: i64,
    /// SSOR iterations.
    pub iters: i64,
    /// Busy cycles per point in the rhs/jacobian phase.
    pub rhs_compute: i64,
    /// Busy cycles per point in each triangular solve.
    pub solve_compute: i64,
    /// Worksharing schedule for the rhs phase only (the wavefront loops
    /// are programmatically static, as in the NPB source).
    pub sched: Option<ScheduleSpec>,
}

impl LuParams {
    /// Paper-scale preset: a 12³ grid.
    pub fn paper() -> Self {
        LuParams {
            n: 12,
            iters: 2,
            rhs_compute: 70,
            solve_compute: 80,
            sched: None,
        }
    }

    /// Tiny preset for tests.
    pub fn tiny() -> Self {
        LuParams {
            n: 5,
            iters: 1,
            rhs_compute: 20,
            solve_compute: 25,
            sched: None,
        }
    }

    /// Override the rhs-phase schedule (wavefront loops stay static).
    pub fn with_schedule(mut self, sched: Option<ScheduleSpec>) -> Self {
        if sched.is_some() {
            self.sched = sched;
        }
        self
    }

    /// Wavefront decomposition: x-line base indices grouped by the y+z
    /// diagonal, plus the offsets of each diagonal in that list.
    pub fn hyperplanes(&self) -> (Vec<i64>, Vec<i64>) {
        let n = self.n;
        let num_planes = (2 * n - 1) as usize;
        let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); num_planes];
        for z in 0..n {
            for y in 0..n {
                // Base index of the x-line at (y, z).
                buckets[(y + z) as usize].push(n * (y + n * z));
            }
        }
        let mut lines = Vec::with_capacity((n * n) as usize);
        let mut ptr = Vec::with_capacity(num_planes + 1);
        ptr.push(0);
        for b in buckets {
            lines.extend(b);
            ptr.push(lines.len() as i64);
        }
        (lines, ptr)
    }

    /// Build the LU program.
    pub fn build(&self) -> Program {
        let g = Grid3::cube(self.n);
        let (lines, ptr) = self.hyperplanes();
        let num_planes = 2 * self.n - 1;
        let sched = self.sched;

        let mut b = ProgramBuilder::new("lu");
        let hp_lines = b.table(lines);
        let hp_ptr = b.table(ptr);
        let u = b.shared_array("u", g.len() as u64, 40);
        let rhs = b.shared_array("rhs", g.len() as u64, 40);
        let step = b.var();
        let h = b.var();
        let m = b.var();
        let x = b.var();

        b.serial(|s| s.io(true, 48 * 1024));
        let iters = self.iters;
        let rhs_c = self.rhs_compute;
        let solve_c = self.solve_compute;
        b.parallel(move |reg| {
            reg.par_for(sched, m, 0, g.len(), move |body| {
                body.compute(2);
                body.store(u, Expr::v(m));
            });
            reg.push(Node::For {
                var: step,
                begin: Expr::c(0),
                end: Expr::c(iters),
                step: 1,
                body: Box::new(ssor_iteration(SsorCtx {
                    g,
                    u,
                    rhs,
                    sched,
                    h,
                    m,
                    hp_lines,
                    hp_ptr,
                    x,
                    num_planes,
                    rhs_c,
                    solve_c,
                })),
            });
        });
        b.serial(|s| s.io(false, 1024));
        b.build()
    }
}

struct SsorCtx {
    g: Grid3,
    u: ArrayId,
    rhs: ArrayId,
    sched: Option<ScheduleSpec>,
    h: VarId,
    m: VarId,
    x: VarId,
    hp_lines: TableId,
    hp_ptr: TableId,
    num_planes: i64,
    rhs_c: i64,
    solve_c: i64,
}

fn ssor_iteration(c: SsorCtx) -> Node {
    let SsorCtx {
        g,
        u,
        rhs,
        sched,
        h,
        m,
        x,
        hp_lines,
        hp_ptr,
        num_planes,
        rhs_c,
        solve_c,
    } = c;
    let mut blk = BlockBuilder::default();

    // rhs / jacobian phase: stencil on u into rhs.
    blk.par_for(sched, m, 0, g.len(), move |body| {
        body.load(u, Expr::v(m));
        for off in g.stencil7_offsets() {
            body.load(u, g.nbr(Expr::v(m), off));
        }
        body.compute(rhs_c);
        body.store(rhs, Expr::v(m));
    });

    // Lower-triangular sweep: diagonals in ascending order, whole
    // x-lines per work item. Wavefront loops are *statically* scheduled
    // regardless of the override (as in the NPB source).
    blk.for_loop(h, 0, num_planes, move |plane| {
        plane.par_for(
            None,
            m,
            Expr::v(h).index_into(hp_ptr),
            (Expr::v(h) + 1).index_into(hp_ptr),
            move |line| {
                line.for_loop(x, 0, g.nx, move |body| {
                    let idx = Expr::v(m).index_into(hp_lines) + Expr::v(x);
                    body.load(rhs, idx.clone());
                    // Dependence direction: lower neighbours.
                    for off in [-g.dx(), -g.dy(), -g.dz()] {
                        body.load(rhs, g.nbr(idx.clone(), off));
                    }
                    body.compute(solve_c);
                    body.store(rhs, idx);
                });
            },
        );
    });

    // Upper-triangular sweep: diagonals in descending order.
    blk.for_loop(h, 0, num_planes, move |plane| {
        let rev = Expr::c(num_planes - 1) - Expr::v(h);
        plane.par_for(
            None,
            m,
            rev.clone().index_into(hp_ptr),
            (rev + 1).index_into(hp_ptr),
            move |line| {
                line.for_loop(x, 0, g.nx, move |body| {
                    let idx = Expr::v(m).index_into(hp_lines) + Expr::v(x);
                    body.load(rhs, idx.clone());
                    for off in [g.dx(), g.dy(), g.dz()] {
                        body.load(u, g.nbr(idx.clone(), off));
                    }
                    body.compute(solve_c);
                    body.store(u, idx);
                });
            },
        );
    });

    blk.into_node()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::trace::trace;
    use omp_ir::validate::validate;

    #[test]
    fn presets_build_and_validate() {
        validate(&LuParams::tiny().build()).unwrap();
        let p = LuParams::paper().build();
        validate(&p).unwrap();
        assert_eq!(p.name, "lu");
    }

    #[test]
    fn hyperplanes_partition_the_lines() {
        let params = LuParams::tiny();
        let (lines, ptr) = params.hyperplanes();
        let n2 = (params.n * params.n) as usize;
        assert_eq!(lines.len(), n2);
        assert_eq!(*ptr.last().unwrap() as usize, n2);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n2, "each x-line appears exactly once");
        // Diagonal sizes are unimodal: 1, 2, ... n ... 2, 1.
        assert_eq!(ptr[1] - ptr[0], 1);
        assert_eq!(ptr[ptr.len() - 1] - ptr[ptr.len() - 2], 1);
        // Every base is a multiple of n (a whole x-line).
        assert!(lines.iter().all(|b| b % params.n == 0));
    }

    #[test]
    fn sweep_work_matches_structure() {
        let params = LuParams::tiny();
        let p = params.build();
        let t = trace(&p, 4);
        let n3 = (params.n * params.n * params.n) as u64;
        // Loads per iteration: rhs 7*n3 + lower 4*n3 + upper 4*n3.
        assert_eq!(t.total.loads, 15 * n3);
        // Barrier count: init loop + per iter (rhs + 2 * planes) + region.
        let planes = (2 * params.n - 1) as u64;
        assert_eq!(t.barrier_episodes, 1 + (1 + 2 * planes) + 1);
    }

    #[test]
    fn wavefront_ignores_schedule_override() {
        // Even with a dynamic override, only the rhs phase changes — the
        // wavefront loops stay static (per the NPB source).
        let p = LuParams::tiny()
            .with_schedule(Some(ScheduleSpec::dynamic(2)))
            .build();
        validate(&p).unwrap();
        let dynamic_loops = count_dynamic(&p.body);
        assert_eq!(dynamic_loops, 2, "init + rhs only (not 2*planes more)");
    }

    fn count_dynamic(n: &Node) -> usize {
        match n {
            Node::Seq(v) | Node::Sections(v) => v.iter().map(count_dynamic).sum(),
            Node::For { body, .. }
            | Node::Parallel { body, .. }
            | Node::Single(body)
            | Node::Master(body)
            | Node::Critical { body, .. } => count_dynamic(body),
            Node::ParFor { sched, body, .. } => {
                let own = matches!(
                    sched,
                    Some(ScheduleSpec {
                        kind: omp_ir::node::ScheduleKind::Dynamic,
                        ..
                    })
                ) as usize;
                own + count_dynamic(body)
            }
            _ => 0,
        }
    }
}
