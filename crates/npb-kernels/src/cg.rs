//! CG — conjugate gradient with an irregular sparse matrix.
//!
//! Structure follows NPB CG's inner iteration: a sparse mat-vec `q = A·p`
//! whose gathers of `p` are the dominant irregular communication, two
//! dot-product reductions, the `z`/`r` updates, and the `p` refresh.
//! Because `p` is rewritten every iteration and gathered globally in the
//! next mat-vec, every node re-fetches most of `p` each iteration — the
//! migratory sharing slipstream targets. Random row lengths provide
//! natural load imbalance.

use crate::sparse::CsrPattern;
use omp_ir::builder::BlockBuilder;
use omp_ir::expr::{Expr, TableId, VarId};
use omp_ir::node::{ArrayId, Node, Program, ReductionOp, ScheduleSpec};
use omp_ir::ProgramBuilder;

/// CG workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgParams {
    /// Vector length / matrix order.
    pub n: usize,
    /// Minimum nonzeros per row.
    pub min_nnz: usize,
    /// Maximum nonzeros per row.
    pub max_nnz: usize,
    /// CG iterations.
    pub iters: i64,
    /// Busy cycles per stored nonzero in the mat-vec.
    pub compute_per_nnz: i64,
    /// Sparsity-pattern seed.
    pub seed: u64,
    /// Worksharing schedule for the vector/matrix loops (`None` = compiler
    /// default, static). The paper's dynamic experiment uses a chunk of
    /// half the static block.
    pub sched: Option<ScheduleSpec>,
}

impl CgParams {
    /// Paper-scale preset (class-S-like order, scaled for 16 CMPs).
    pub fn paper() -> Self {
        CgParams {
            n: 512,
            min_nnz: 16,
            max_nnz: 32,
            iters: 6,
            compute_per_nnz: 5,
            seed: 0x5e_ed_c6,
            sched: None,
        }
    }

    /// Tiny preset for tests.
    pub fn tiny() -> Self {
        CgParams {
            n: 96,
            min_nnz: 2,
            max_nnz: 5,
            iters: 2,
            compute_per_nnz: 3,
            seed: 7,
            sched: None,
        }
    }

    /// Override the worksharing schedule (a `None` argument keeps the
    /// current setting).
    pub fn with_schedule(mut self, sched: Option<ScheduleSpec>) -> Self {
        if sched.is_some() {
            self.sched = sched;
        }
        self
    }

    /// The chunk the paper uses for CG's dynamic experiment: half the
    /// static block assignment for a given team size.
    pub fn paper_dynamic_chunk(&self, team: u64) -> u64 {
        ((self.n as u64).div_ceil(team) / 2).max(1)
    }

    /// Build the CG program.
    pub fn build(&self) -> Program {
        let pat = CsrPattern::random(self.n, self.min_nnz, self.max_nnz, self.seed);
        let n = self.n as i64;
        let sched = self.sched;
        let cpn = self.compute_per_nnz;
        let iters = self.iters;

        let mut b = ProgramBuilder::new("cg");
        let row_ptr = b.table(pat.row_ptr.clone());
        let col_idx = b.table(pat.col_idx.clone());
        let a = b.shared_array("a", pat.nnz() as u64, 8);
        let p = b.shared_array("p", self.n as u64, 8);
        let q = b.shared_array("q", self.n as u64, 8);
        let r = b.shared_array("r", self.n as u64, 8);
        let z = b.shared_array("z", self.n as u64, 8);
        // Scalar cells: d, alpha, rho, beta (they genuinely share a line,
        // as CG's scalars do).
        let scalars = b.shared_array("scalars", 4, 8);
        let it = b.var();
        let i = b.var();
        let j = b.var();

        // Serial init: read the problem description.
        b.serial(|s| s.io(true, 16 * 1024));

        b.parallel(move |reg| {
            // Initial p = r (one streaming pass).
            reg.par_for(sched, i, 0, n, move |body| {
                body.compute(2);
                body.store(p, Expr::v(i));
                body.store(r, Expr::v(i));
            });
            reg.push(Node::For {
                var: it,
                begin: Expr::c(0),
                end: Expr::c(iters),
                step: 1,
                body: Box::new(cg_iteration(CgIterCtx {
                    sched,
                    i,
                    j,
                    n,
                    row_ptr,
                    col_idx,
                    a,
                    p,
                    q,
                    r,
                    z,
                    scalars,
                    cpn,
                })),
            });
        });
        b.serial(|s| s.io(false, 1024));
        b.build()
    }
}

struct CgIterCtx {
    sched: Option<ScheduleSpec>,
    i: VarId,
    j: VarId,
    n: i64,
    row_ptr: TableId,
    col_idx: TableId,
    a: ArrayId,
    p: ArrayId,
    q: ArrayId,
    r: ArrayId,
    z: ArrayId,
    scalars: ArrayId,
    cpn: i64,
}

/// One CG iteration as an IR node.
fn cg_iteration(c: CgIterCtx) -> Node {
    let CgIterCtx {
        sched,
        i,
        j,
        n,
        row_ptr,
        col_idx,
        a,
        p,
        q,
        r,
        z,
        scalars,
        cpn,
    } = c;
    let mut blk = BlockBuilder::default();

    // q = A * p : irregular gather of p.
    blk.par_for(sched, i, 0, n, |body| {
        body.for_loop(
            j,
            Expr::v(i).index_into(row_ptr),
            (Expr::v(i) + 1).index_into(row_ptr),
            |inner| {
                inner.load(a, Expr::v(j));
                inner.load(p, Expr::v(j).index_into(col_idx));
                inner.compute(cpn);
            },
        );
        body.store(q, Expr::v(i));
    });

    // d = p . q (reduction into scalars[0]).
    blk.par_for_reduce(sched, i, 0, n, ReductionOp::Sum, scalars, 0, |body| {
        body.load(p, Expr::v(i));
        body.load(q, Expr::v(i));
        body.compute(2);
    });

    // Master computes alpha = rho / d; team waits.
    blk.master(|m| {
        m.load(scalars, 0);
        m.compute(20);
        m.store(scalars, 1);
    });
    blk.barrier();

    // z += alpha*p ; r -= alpha*q.
    blk.par_for(sched, i, 0, n, |body| {
        body.load(scalars, 1);
        body.load(p, Expr::v(i));
        body.load(q, Expr::v(i));
        body.load(z, Expr::v(i));
        body.load(r, Expr::v(i));
        body.compute(4);
        body.store(z, Expr::v(i));
        body.store(r, Expr::v(i));
    });

    // rho = r . r.
    blk.par_for_reduce(sched, i, 0, n, ReductionOp::Sum, scalars, 2, |body| {
        body.load(r, Expr::v(i));
        body.compute(2);
    });

    // Master computes beta; team waits.
    blk.master(|m| {
        m.load(scalars, 2);
        m.compute(20);
        m.store(scalars, 3);
    });
    blk.barrier();

    // p = r + beta * p  (rewrites the globally gathered vector).
    blk.par_for(sched, i, 0, n, |body| {
        body.load(scalars, 3);
        body.load(r, Expr::v(i));
        body.load(p, Expr::v(i));
        body.compute(2);
        body.store(p, Expr::v(i));
    });

    // Residual norm ||r|| for the convergence test (NPB CG reports it
    // every iteration), reduced into the scalars line and inspected by
    // the master.
    blk.par_for_reduce(sched, i, 0, n, ReductionOp::Sum, scalars, 2, |body| {
        body.load(r, Expr::v(i));
        body.compute(2);
    });
    blk.master(|m| {
        m.load(scalars, 2);
        m.compute(30);
    });
    blk.barrier();

    blk.into_node()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::trace::trace;
    use omp_ir::validate::validate;

    #[test]
    fn tiny_cg_builds_and_validates() {
        let p = CgParams::tiny().build();
        validate(&p).unwrap();
        assert_eq!(p.name, "cg");
    }

    #[test]
    fn paper_cg_builds_and_validates() {
        let p = CgParams::paper().build();
        validate(&p).unwrap();
    }

    #[test]
    fn matvec_gathers_match_pattern_nnz() {
        let params = CgParams::tiny();
        let pat = CsrPattern::random(params.n, params.min_nnz, params.max_nnz, params.seed);
        let p = params.build();
        let t = trace(&p, 4);
        // Per iteration: matvec 2*nnz; dot p.q 2n; update 5n; rho n;
        // p refresh 3n; norm n; masters 3.
        let n = params.n as u64;
        let per_iter = 2 * pat.nnz() as u64 + 2 * n + 5 * n + n + 3 * n + n + 3;
        let expected = params.iters as u64 * per_iter;
        assert_eq!(t.total.loads, expected, "loads per CG run");
        assert!(t.per_thread_deterministic);
    }

    #[test]
    fn dynamic_chunk_is_half_static_block() {
        let p = CgParams::paper();
        assert_eq!(p.paper_dynamic_chunk(16), 16); // ceil(512/16)/2 = 16
        assert_eq!(p.paper_dynamic_chunk(512), 1);
    }

    #[test]
    fn schedule_override_applies() {
        let p = CgParams::tiny()
            .with_schedule(Some(ScheduleSpec::dynamic(8)))
            .build();
        validate(&p).unwrap();
        let t = trace(&p, 4);
        assert!(!t.per_thread_deterministic, "dynamic schedule in effect");
    }

    #[test]
    fn stores_count_matches_structure() {
        let params = CgParams::tiny();
        let p = params.build();
        let t = trace(&p, 4);
        let n = params.n as u64;
        // init 2n; per iter: q n + update 2n + p n + masters 2 + io none.
        let expected = 2 * n + params.iters as u64 * (n + 2 * n + n + 2);
        assert_eq!(t.total.stores, expected);
        assert_eq!(t.total.io_in, 1);
        assert_eq!(t.total.io_out, 1);
    }
}
