//! # npb-kernels — NAS Parallel Benchmark analogues
//!
//! Scaled-down, structurally faithful versions of the five NPB 2.3 codes
//! the paper evaluates (Table 2), expressed in the `omp-ir` kernel
//! language: BT and SP (ADI solvers with directional line sweeps), CG
//! (sparse conjugate gradient with irregular gathers and reductions), LU
//! (SSOR with hyperplane wavefronts), and MG (multigrid V-cycles).
//!
//! A timing simulator consumes only addresses and control flow, so these
//! kernels reproduce each benchmark's *reference structure* — sharing
//! pattern, barrier cadence, compute-to-communication ratio, load
//! imbalance — rather than its numerics. Problem sizes are scaled the way
//! the paper scaled them: small enough that on 16 CMPs "communication
//! starts to dominate execution time".

#![warn(missing_docs)]

pub mod adi;
pub mod bt;
pub mod cg;
pub mod common;
pub mod grid;
pub mod lu;
pub mod mg;
pub mod sp;
pub mod sparse;

pub use bt::BtParams;
pub use cg::CgParams;
pub use common::Benchmark;
pub use grid::Grid3;
pub use lu::LuParams;
pub use mg::MgParams;
pub use sp::SpParams;
pub use sparse::CsrPattern;
