//! Shared structure of the ADI solvers (BT and SP).
//!
//! Both NPB codes iterate: compute the right-hand side with a stencil,
//! then solve tridiagonal systems along each of the three grid dimensions
//! (forward elimination + back substitution per line), then add the
//! update into the solution. The x-dimension lines are contiguous in
//! memory; y lines stride by `nx`; z lines stride by a whole plane — so
//! the z sweep crosses every slab and dominates communication on a DSM
//! machine. BT carries 5×5 block systems (heavy per-point compute and
//! 40-byte points); SP's scalar pentadiagonal systems are lighter.

use crate::grid::Grid3;
use omp_ir::builder::BlockBuilder;
use omp_ir::expr::{Expr, VarId};
use omp_ir::node::{ArrayId, Node, Program, ScheduleSpec};
use omp_ir::ProgramBuilder;

/// Parameters shared by BT and SP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdiParams {
    /// Benchmark name ("bt" or "sp").
    pub name: String,
    /// Grid edge.
    pub n: i64,
    /// Time steps.
    pub iters: i64,
    /// Busy cycles per point in the rhs stencil.
    pub rhs_compute: i64,
    /// Busy cycles per point in each line-solve direction (forward +
    /// backward combined).
    pub solve_compute: i64,
    /// Bytes per grid point (BT: 5 doubles, SP: 5 doubles; both 40).
    pub elem_bytes: u64,
    /// Worksharing schedule override.
    pub sched: Option<ScheduleSpec>,
}

impl AdiParams {
    /// Override the worksharing schedule (a `None` argument keeps the
    /// current setting).
    pub fn with_schedule(mut self, sched: Option<ScheduleSpec>) -> Self {
        if sched.is_some() {
            self.sched = sched;
        }
        self
    }

    /// Build the program.
    pub fn build(&self) -> Program {
        let g = Grid3::cube(self.n);
        let sched = self.sched;
        let mut b = ProgramBuilder::new(&self.name);
        let u = b.shared_array("u", g.len() as u64, self.elem_bytes);
        let rhs = b.shared_array("rhs", g.len() as u64, self.elem_bytes);
        let step = b.var();
        let i = b.var();
        let j = b.var();
        let k = b.var();

        b.serial(|s| s.io(true, 64 * 1024));
        let iters = self.iters;
        let rhs_c = self.rhs_compute;
        let solve_c = self.solve_compute;
        b.parallel(move |reg| {
            // Initialize the field (plane-parallel, like every grid loop
            // in the NPB source).
            reg.par_for(sched, i, 0, g.nz, move |plane| {
                plane.for_loop(
                    k,
                    Expr::v(i) * g.dz(),
                    (Expr::v(i) + 1) * g.dz(),
                    move |body| {
                        body.compute(2);
                        body.store(u, Expr::v(k));
                    },
                );
            });
            reg.push(Node::For {
                var: step,
                begin: Expr::c(0),
                end: Expr::c(iters),
                step: 1,
                body: Box::new(adi_step(g, u, rhs, sched, i, j, k, rhs_c, solve_c)),
            });
        });
        b.serial(|s| s.io(false, 2048));
        b.build()
    }
}

/// Maps (parallel unit, line-within-unit, cell-within-line) to a flat
/// grid index for one sweep direction.
type CellIndexFn = fn(Grid3, Expr, Expr, Expr) -> Expr;

/// One ADI time step: rhs, x/y/z line solves, add.
///
/// The solves parallelize over one *outer* grid dimension per direction,
/// exactly as the NPB OpenMP ports do: x and y sweeps distribute z-planes
/// (`!$omp do` over k); the z sweep distributes y-rows (`!$omp do` over
/// j). Each thread therefore owns whole contiguous planes/rows and no
/// cache line is written by two threads, while the z sweep still walks
/// across every node's slab of the grid.
#[allow(clippy::too_many_arguments)]
fn adi_step(
    g: Grid3,
    u: ArrayId,
    rhs: ArrayId,
    sched: Option<ScheduleSpec>,
    i: VarId,
    j: VarId,
    k: VarId,
    rhs_c: i64,
    solve_c: i64,
) -> Node {
    let n = g.nx;
    let mut blk = BlockBuilder::default();

    // compute_rhs: 7-point stencil on u into rhs (`do k` over z-planes).
    blk.par_for(sched, i, 0, n, move |plane| {
        plane.for_loop(
            k,
            Expr::v(i) * g.dz(),
            (Expr::v(i) + 1) * g.dz(),
            move |body| {
                body.load(u, Expr::v(k));
                for off in g.stencil7_offsets() {
                    body.load(u, g.nbr(Expr::v(k), off));
                }
                body.compute(rhs_c);
                body.store(rhs, Expr::v(k));
            },
        );
    });

    // Line solves. `cell_index(q, j, k)` gives the grid point the (j, k)
    // inner-loop step of parallel unit q touches; k is the innermost
    // (dependence-carrying) index of the sweep direction.
    let directions: [CellIndexFn; 3] = [
        // x solve: q = z plane, j = y, k = x (contiguous lines).
        |g, q, j, k| k + j * g.dy() + q * g.dz(),
        // y solve: q = z plane, j = x, k = y.
        |g, q, j, k| j + k * g.dy() + q * g.dz(),
        // z solve: q = y row, j = x, k = z (crosses all slabs!).
        |g, q, j, k| j + q * g.dy() + k * g.dz(),
    ];
    for cell_index in directions {
        blk.par_for(sched, i, 0, n, move |body| {
            // Forward elimination along k for each line j.
            body.for_loop(j, 0, n, move |line| {
                line.for_loop(k, 0, n, move |cell| {
                    let idx = cell_index(g, Expr::v(i), Expr::v(j), Expr::v(k));
                    cell.load(rhs, idx.clone());
                    cell.load(u, idx.clone());
                    cell.compute(solve_c / 2);
                    cell.store(rhs, idx);
                });
            });
            // Back substitution (reverse traversal along k).
            body.for_loop(j, 0, n, move |line| {
                line.for_loop(k, 0, n, move |cell| {
                    let rev = Expr::c(n - 1) - Expr::v(k);
                    let idx = cell_index(g, Expr::v(i), Expr::v(j), rev);
                    cell.load(rhs, idx.clone());
                    cell.compute(solve_c - solve_c / 2);
                    cell.store(rhs, idx);
                });
            });
        });
    }

    // add: u += rhs (`do k` over z-planes).
    blk.par_for(sched, i, 0, n, move |plane| {
        plane.for_loop(
            k,
            Expr::v(i) * g.dz(),
            (Expr::v(i) + 1) * g.dz(),
            move |body| {
                body.load(u, Expr::v(k));
                body.load(rhs, Expr::v(k));
                body.compute(5);
                body.store(u, Expr::v(k));
            },
        );
    });

    blk.into_node()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::trace::trace;
    use omp_ir::validate::validate;

    fn tiny() -> AdiParams {
        AdiParams {
            name: "adi-test".into(),
            n: 6,
            iters: 1,
            rhs_compute: 10,
            solve_compute: 20,
            elem_bytes: 40,
            sched: None,
        }
    }

    #[test]
    fn builds_and_validates() {
        let p = tiny().build();
        validate(&p).unwrap();
    }

    #[test]
    fn step_work_matches_structure() {
        let p = tiny().build();
        let t = trace(&p, 4);
        let n3 = 6i64 * 6 * 6;
        // Loads: rhs stencil 7*n3; three solves: forward 2*n3 + backward
        // 1*n3 each; add 2*n3.
        let expected = 7 * n3 + 3 * (2 * n3 + n3) + 2 * n3;
        assert_eq!(t.total.loads, expected as u64);
        // Stores: init n3 + rhs n3 + 3 solves * 2*n3 + add n3.
        let stores = n3 + n3 + 3 * 2 * n3 + n3;
        assert_eq!(t.total.stores, stores as u64);
    }

    #[test]
    fn sweep_indexing_covers_the_grid_disjointly() {
        // Verify the index arithmetic: for each direction, the n parallel
        // units of n*n cells cover all n^3 points exactly once.
        use omp_ir::expr::SimpleCtx;
        let n = 4i64;
        let g = Grid3::cube(n);
        let dirs: [CellIndexFn; 3] = [
            |g, q, j, k| k + j * g.dy() + q * g.dz(),
            |g, q, j, k| j + k * g.dy() + q * g.dz(),
            |g, q, j, k| j + q * g.dy() + k * g.dz(),
        ];
        let ctx = SimpleCtx::new(0, 0, 1);
        for (d, cell_index) in dirs.into_iter().enumerate() {
            let mut seen = vec![false; (n * n * n) as usize];
            for q in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let idx =
                            cell_index(g, Expr::c(q), Expr::c(j), Expr::c(k)).eval(&ctx) as usize;
                        assert!(!seen[idx], "dir {d} q {q} j {j} k {k} duplicates");
                        seen[idx] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "dir {d} misses points");
        }
    }
}
