//! Random sparse-matrix pattern generation (CG's substrate).
//!
//! NPB CG builds a symmetric positive-definite matrix with a random
//! sparsity pattern. Only the *pattern* matters to a timing simulator;
//! values never flow. The CSR arrays become host-side index tables the
//! kernel IR gathers through, producing the same irregular shared-memory
//! reference stream.

/// Minimal splitmix64 generator (npb-kernels depends only on omp-ir, so
/// it carries its own copy rather than pulling in dsm-sim for one RNG).
struct Rng64(u64);

impl Rng64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64 + 1) as i64
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// A CSR sparsity pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrPattern {
    /// Row count.
    pub n: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes `col_idx` for row i.
    pub row_ptr: Vec<i64>,
    /// Column index of each stored nonzero.
    pub col_idx: Vec<i64>,
}

impl CsrPattern {
    /// Generate a pattern with `n` rows and row lengths uniform in
    /// `[min_nnz, max_nnz]` (inclusive), deterministically from `seed`.
    /// Column indices cluster around the diagonal with occasional long-
    /// range entries, like the NPB generator's geometric fill pattern.
    pub fn random(n: usize, min_nnz: usize, max_nnz: usize, seed: u64) -> Self {
        assert!(n > 0 && min_nnz >= 1 && max_nnz >= min_nnz);
        let mut rng = Rng64(seed);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            let nnz = rng.range_inclusive(min_nnz as i64, max_nnz as i64) as usize;
            for k in 0..nnz {
                let col = if k == 0 {
                    i as i64 // always touch the diagonal
                } else if rng.chance(0.7) {
                    // Near-diagonal band.
                    let span = (n / 16).max(2) as i64;
                    (i as i64 + rng.range_inclusive(-span, span)).rem_euclid(n as i64)
                } else {
                    // Long-range entry (cross-node gather).
                    rng.range_inclusive(0, n as i64 - 1)
                };
                col_idx.push(col);
            }
            row_ptr.push(col_idx.len() as i64);
        }
        CsrPattern {
            n,
            row_ptr,
            col_idx,
        }
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of nonzeros in row `i`.
    pub fn row_len(&self, i: usize) -> usize {
        (self.row_ptr[i + 1] - self.row_ptr[i]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_well_formed() {
        let p = CsrPattern::random(100, 3, 9, 42);
        assert_eq!(p.row_ptr.len(), 101);
        assert_eq!(*p.row_ptr.last().unwrap() as usize, p.nnz());
        for i in 0..100 {
            let l = p.row_len(i);
            assert!((3..=9).contains(&l), "row {i} len {l}");
        }
        for &c in &p.col_idx {
            assert!((0..100).contains(&c));
        }
    }

    #[test]
    fn pattern_is_deterministic_per_seed() {
        let a = CsrPattern::random(50, 2, 6, 7);
        let b = CsrPattern::random(50, 2, 6, 7);
        let c = CsrPattern::random(50, 2, 6, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rows_touch_their_diagonal() {
        let p = CsrPattern::random(64, 1, 4, 3);
        for i in 0..64 {
            let lo = p.row_ptr[i] as usize;
            assert_eq!(p.col_idx[lo], i as i64);
        }
    }

    #[test]
    fn row_lengths_vary_for_load_imbalance() {
        let p = CsrPattern::random(200, 3, 12, 11);
        let lens: Vec<usize> = (0..200).map(|i| p.row_len(i)).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > min, "row lengths should vary");
    }
}
