//! BT — block-tridiagonal ADI solver.
//!
//! NPB BT carries 5×5 block systems along each line, making it the most
//! compute-heavy of the suite (large `solve_compute`) with 40-byte grid
//! points. The paper finds BT favours the conservative zero-token global
//! synchronization: its sweeps rewrite the whole field every step, so an
//! A-stream running a session ahead prefetches lines the producers are
//! still writing.

use crate::adi::AdiParams;
use omp_ir::node::{Program, ScheduleSpec};

/// BT workload parameters (thin wrapper over the shared ADI structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtParams(pub AdiParams);

impl BtParams {
    /// Paper-scale preset: a 16³ grid (one z-plane per CMP... and per-thread solve unit), heavy block solves.
    pub fn paper() -> Self {
        BtParams(AdiParams {
            name: "bt".into(),
            n: 16,
            iters: 3,
            rhs_compute: 180,
            solve_compute: 400,
            elem_bytes: 40,
            sched: None,
        })
    }

    /// Tiny preset for tests.
    pub fn tiny() -> Self {
        BtParams(AdiParams {
            name: "bt".into(),
            n: 6,
            iters: 1,
            rhs_compute: 20,
            solve_compute: 40,
            elem_bytes: 40,
            sched: None,
        })
    }

    /// Override the worksharing schedule.
    pub fn with_schedule(mut self, sched: Option<ScheduleSpec>) -> Self {
        self.0 = self.0.with_schedule(sched);
        self
    }

    /// Build the BT program.
    pub fn build(&self) -> Program {
        self.0.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::validate::validate;

    #[test]
    fn presets_build_and_validate() {
        validate(&BtParams::tiny().build()).unwrap();
        let p = BtParams::paper().build();
        validate(&p).unwrap();
        assert_eq!(p.name, "bt");
    }

    #[test]
    fn bt_is_compute_heavier_than_sp() {
        let bt = BtParams::paper();
        let sp = crate::sp::SpParams::paper();
        assert!(bt.0.solve_compute > sp.0.solve_compute);
    }
}
