//! 3D grid index arithmetic for the structured-grid kernels.
//!
//! Grids are flattened x-fastest (`idx = x + nx*(y + ny*z)`), so a static
//! block decomposition of a flat loop corresponds to z-slab decomposition
//! — the layout that gives the ghost-plane communication structure of the
//! NPB structured codes on a DSM machine.

use omp_ir::expr::Expr;

/// A 3D grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Points along x (fastest-varying).
    pub nx: i64,
    /// Points along y.
    pub ny: i64,
    /// Points along z (slowest-varying; slab decomposition axis).
    pub nz: i64,
}

impl Grid3 {
    /// A cubic grid.
    pub fn cube(n: i64) -> Self {
        Grid3 {
            nx: n,
            ny: n,
            nz: n,
        }
    }

    /// Total points.
    pub fn len(&self) -> i64 {
        self.nx * self.ny * self.nz
    }

    /// True for a degenerate grid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat-index offset of the +x neighbour.
    pub fn dx(&self) -> i64 {
        1
    }

    /// Flat-index offset of the +y neighbour.
    pub fn dy(&self) -> i64 {
        self.nx
    }

    /// Flat-index offset of the +z neighbour (one plane).
    pub fn dz(&self) -> i64 {
        self.nx * self.ny
    }

    /// Clamped neighbour index expression: `i + off`, held inside the
    /// grid. Clamping at the faces slightly perturbs boundary stencils,
    /// which is irrelevant to timing and keeps expressions total.
    pub fn nbr(&self, i: Expr, off: i64) -> Expr {
        let n = self.len();
        (i + Expr::c(off)).max(Expr::c(0)).min(Expr::c(n - 1))
    }

    /// The six face-neighbour offsets of a 7-point stencil.
    pub fn stencil7_offsets(&self) -> [i64; 6] {
        [
            -self.dx(),
            self.dx(),
            -self.dy(),
            self.dy(),
            -self.dz(),
            self.dz(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::expr::SimpleCtx;

    #[test]
    fn offsets() {
        let g = Grid3::cube(8);
        assert_eq!(g.len(), 512);
        assert_eq!(g.dx(), 1);
        assert_eq!(g.dy(), 8);
        assert_eq!(g.dz(), 64);
        assert_eq!(g.stencil7_offsets(), [-1, 1, -8, 8, -64, 64]);
    }

    #[test]
    fn nbr_clamps_at_faces() {
        let g = Grid3::cube(4);
        let ctx = SimpleCtx::new(0, 0, 1);
        assert_eq!(g.nbr(Expr::c(10), 1).eval(&ctx), 11);
        assert_eq!(g.nbr(Expr::c(0), -1).eval(&ctx), 0);
        assert_eq!(g.nbr(Expr::c(63), 16).eval(&ctx), 63);
    }

    #[test]
    fn non_cubic_grids() {
        let g = Grid3 {
            nx: 4,
            ny: 8,
            nz: 2,
        };
        assert_eq!(g.len(), 64);
        assert_eq!(g.dy(), 4);
        assert_eq!(g.dz(), 32);
        assert!(!g.is_empty());
    }
}
