//! # omp-analyze — a slipstream-safety static analyzer over the kernel IR
//!
//! The timing IR guarantees that addresses and trip counts depend only on
//! private state (see `omp_ir::expr`), which makes whole-program symbolic
//! evaluation cheap: every address every thread will touch is computable
//! without running the memory simulation. This crate exploits that to
//! check, *before* a program reaches the slipstream engine, that it
//! upholds the contracts slipstream execution depends on:
//!
//! 1. **Data-race freedom per barrier phase** — unordered same-element
//!    accesses from different executors (not covered by `atomic`, a
//!    shared `critical` lock, or a reduction) are `deny` findings: racy
//!    programs have undefined behaviour under any schedule, and under
//!    slipstream the A-stream's skipped stores amplify the divergence.
//! 2. **Balanced synchronization** — every thread must execute the same
//!    barrier sequence, or the team deadlocks and the A/R token protocol
//!    desynchronizes (`deny`).
//! 3. **A-stream accuracy** — stores the A-stream skips *without*
//!    converting to prefetches that feed later-phase loads leave the
//!    A-stream computing on stale data (`warn`); skipped construct
//!    bodies with shared side effects are surfaced (`info`).
//! 4. **Lead bound vs. cache capacity** — the paper's L1/G0 tradeoff:
//!    with `tokens` outstanding, the A-stream leads by up to
//!    `tokens + 1` phases (global sync; `tokens + 2` local). If the
//!    combined shared footprint of that phase window exceeds L2
//!    capacity, prefetched lines are evicted before the R-stream uses
//!    them (`warn`).
//!
//! Findings carry structured [`omp_ir::NodePath`] locations shared with
//! `omp_ir::validate` diagnostics, and reports render as human text or
//! machine JSON. The `slipstream` crate gates compilation on the analyzer
//! via its [`GateMode`]; `bench --bin analyze` sweeps every NPB kernel.

#![warn(missing_docs)]

pub mod cert;
pub mod deps;
pub mod finding;
pub mod report;
mod walk;

pub use cert::{guard_checksum, PhaseCertificate, PhaseClass, ReplayLoop};
pub use finding::{Finding, Hazard, Severity};
pub use report::{AnalysisReport, Equivalence, RegionReport, SkipSet};

use omp_ir::node::{Program, SlipSyncType};

/// FNV-1a 64-bit hash — the repo-wide stable fingerprint function.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which constructs the A-stream skips or executes — mirrors
/// `slipstream`'s per-construct A-stream policy so the analyzer models
/// the same execution the engine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipModel {
    /// A-stream skips `single` bodies.
    pub skip_single: bool,
    /// A-stream skips `critical` bodies.
    pub skip_critical: bool,
    /// A-stream executes `master` bodies.
    pub execute_master: bool,
    /// A-stream executes `atomic` updates.
    pub execute_atomic: bool,
    /// A-stream converts shared stores to read-exclusive prefetches
    /// (rather than dropping them).
    pub convert_shared_stores: bool,
}

impl SkipModel {
    /// The paper's policy (Table 2): skip single/critical, execute
    /// master/atomic, convert shared stores.
    pub fn paper() -> Self {
        SkipModel {
            skip_single: true,
            skip_critical: true,
            execute_master: true,
            execute_atomic: true,
            convert_shared_stores: true,
        }
    }
}

impl Default for SkipModel {
    fn default() -> Self {
        SkipModel::paper()
    }
}

/// What a caller does with analyzer findings when gating a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateMode {
    /// Do not run the analyzer at all.
    Allow,
    /// Run the analyzer and attach the report, but never block.
    #[default]
    Warn,
    /// Refuse to run programs with `deny`-severity findings.
    Deny,
}

/// Analyzer configuration: machine shape, slipstream defaults, skip
/// model, and resource budgets.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Modeled team size (one thread pair per CMP in the paper machine).
    pub num_threads: u64,
    /// Cache line size for footprint accounting.
    pub line_bytes: u64,
    /// L2 capacity in lines for the lead-bound check.
    pub l2_lines: u64,
    /// Slipstream sync type assumed when no directive specifies one (or
    /// a directive defers with `RuntimeSync`).
    pub default_sync: SlipSyncType,
    /// Token count assumed alongside `default_sync`.
    pub default_tokens: u64,
    /// The A-stream construct policy to model.
    pub skip: SkipModel,
    /// Maximum IR node visits before the walk truncates (the analysis
    /// never *invents* findings when truncated, it only stops looking).
    pub visit_budget: u64,
    /// Maximum distinct (phase, element) records before conflict
    /// detection stops admitting new elements (memory bound).
    pub max_state_entries: usize,
    /// Per-hazard cap on reported findings; the rest are counted as
    /// suppressed.
    pub max_reported_per_hazard: usize,
}

impl AnalyzeConfig {
    /// Paper machine: 16 CMPs, 64-byte lines, 1 MB L2 (16384 lines),
    /// global sync with 0 tokens, paper skip model.
    pub fn paper() -> Self {
        AnalyzeConfig {
            num_threads: 16,
            line_bytes: 64,
            l2_lines: 16384,
            default_sync: SlipSyncType::GlobalSync,
            default_tokens: 0,
            skip: SkipModel::paper(),
            visit_budget: 20_000_000,
            max_state_entries: 1 << 22,
            max_reported_per_hazard: 5,
        }
    }

    /// Set the modeled team size.
    pub fn with_threads(mut self, n: u64) -> Self {
        self.num_threads = n.max(1);
        self
    }

    /// Set the default slipstream sync type and token count.
    pub fn with_sync(mut self, sync: SlipSyncType, tokens: u64) -> Self {
        self.default_sync = sync;
        self.default_tokens = tokens;
        self
    }

    /// Set the visit budget.
    pub fn with_budget(mut self, visits: u64) -> Self {
        self.visit_budget = visits;
        self
    }

    /// Set the L2 capacity (in lines) for the lead-bound check.
    pub fn with_l2_lines(mut self, lines: u64) -> Self {
        self.l2_lines = lines;
        self
    }
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig::paper()
    }
}

/// Run every analysis pass over `program`.
///
/// Invalid programs (per [`omp_ir::validate`]) return a report whose
/// findings are the validator's diagnostics at `deny` severity; the walk
/// itself only runs on valid programs.
pub fn analyze(program: &Program, cfg: &AnalyzeConfig) -> AnalysisReport {
    if let Err(e) = omp_ir::validate(program) {
        let findings = e
            .problems
            .iter()
            .map(|d| Finding {
                hazard: Hazard::InvalidIr,
                severity: Severity::Deny,
                path: d.path.clone(),
                related: None,
                region: None,
                phase: None,
                message: d.message.clone(),
            })
            .collect();
        return AnalysisReport {
            program: program.name.clone(),
            num_threads: cfg.num_threads,
            l2_lines: cfg.l2_lines,
            findings,
            regions: Vec::new(),
            certificates: Vec::new(),
            replay_loops: Vec::new(),
            suppressed: 0,
            truncated: false,
            visits: 0,
        };
    }
    let out = walk::walk(program, cfg);
    let certs = cert::certify(program, cfg);
    AnalysisReport {
        program: program.name.clone(),
        num_threads: cfg.num_threads,
        l2_lines: cfg.l2_lines,
        findings: out.findings,
        regions: out.regions,
        certificates: certs.certificates,
        replay_loops: certs.replay_loops,
        suppressed: out.suppressed,
        truncated: out.truncated,
        visits: out.visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::expr::{Expr, VarId};
    use omp_ir::node::{ArrayDecl, ArrayId, Node, Reduction, ReductionOp, ScheduleSpec};

    fn arr(name: &str, len: u64) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            shared: true,
            len,
            elem_bytes: 8,
        }
    }

    fn prog(name: &str, arrays: Vec<ArrayDecl>, num_vars: u32, body: Node) -> Program {
        Program {
            name: name.into(),
            arrays,
            tables: vec![],
            num_vars,
            body,
        }
    }

    fn cfg4() -> AnalyzeConfig {
        AnalyzeConfig::paper().with_threads(4)
    }

    fn parfor(sched: Option<ScheduleSpec>, end: i64, body: Node) -> Node {
        Node::ParFor {
            sched,
            var: VarId(0),
            begin: Expr::c(0),
            end: Expr::c(end),
            body: Box::new(body),
            reduction: None,
            nowait: false,
        }
    }

    fn region(body: Node) -> Node {
        Node::Parallel {
            body: Box::new(body),
            slipstream: None,
        }
    }

    #[test]
    fn disjoint_static_parfor_is_clean() {
        let p = prog(
            "clean",
            vec![arr("a", 64)],
            1,
            region(parfor(
                None,
                64,
                Node::Store {
                    array: ArrayId(0),
                    index: Expr::v(VarId(0)),
                },
            )),
        );
        let r = analyze(&p, &cfg4());
        assert!(r.is_clean(), "unexpected findings: {}", r.render_text());
        assert_eq!(r.regions.len(), 1);
        assert_eq!(r.regions[0].phases, 2);
        assert_eq!(r.regions[0].skips.shared_stores_converted, 64);
    }

    #[test]
    fn racing_store_is_deny() {
        // Every iteration writes element 0: threads race.
        let p = prog(
            "race",
            vec![arr("a", 64)],
            1,
            region(parfor(
                None,
                64,
                Node::Store {
                    array: ArrayId(0),
                    index: Expr::c(0),
                },
            )),
        );
        let r = analyze(&p, &cfg4());
        assert_eq!(r.deny_count(), 1, "{}", r.render_text());
        assert_eq!(r.findings[0].hazard, Hazard::RaceWriteWrite);
        assert!(r.findings[0].path.to_string().contains("parfor[0]/store"));
    }

    #[test]
    fn read_write_race_is_deny() {
        // Thread i writes a[i] while every thread reads a[0].
        let body = Node::Seq(vec![
            Node::Store {
                array: ArrayId(0),
                index: Expr::v(VarId(0)),
            },
            Node::Load {
                array: ArrayId(0),
                index: Expr::c(0),
            },
        ]);
        let p = prog("rw", vec![arr("a", 64)], 1, region(parfor(None, 64, body)));
        let r = analyze(&p, &cfg4());
        assert!(
            r.findings.iter().any(|f| f.hazard == Hazard::RaceReadWrite),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn atomic_updates_are_covered() {
        let p = prog(
            "atomic",
            vec![arr("a", 8)],
            1,
            region(parfor(
                None,
                64,
                Node::Atomic {
                    array: ArrayId(0),
                    index: Expr::c(0),
                },
            )),
        );
        let r = analyze(&p, &cfg4());
        assert!(r.is_clean(), "{}", r.render_text());
        assert_eq!(r.regions[0].skips.atomics_executed, 64);
    }

    #[test]
    fn same_critical_lock_is_covered_but_skipped_store_warns_on_later_read() {
        // All threads update a[0] under one lock (ordered), then after a
        // barrier everyone reads it: the A-stream skipped the critical
        // stores, so the read is stale.
        let body = Node::Seq(vec![
            Node::Critical {
                name: "sum".into(),
                body: Box::new(Node::Seq(vec![
                    Node::Load {
                        array: ArrayId(0),
                        index: Expr::c(0),
                    },
                    Node::Store {
                        array: ArrayId(0),
                        index: Expr::c(0),
                    },
                ])),
            },
            Node::Barrier,
            Node::Load {
                array: ArrayId(0),
                index: Expr::c(0),
            },
        ]);
        let p = prog("crit", vec![arr("a", 8)], 0, region(body));
        let r = analyze(&p, &cfg4());
        assert_eq!(r.deny_count(), 0, "{}", r.render_text());
        assert!(
            r.findings
                .iter()
                .any(|f| f.hazard == Hazard::SkippedStoreStale),
            "{}",
            r.render_text()
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.hazard == Hazard::RStreamOnlySideEffect),
            "{}",
            r.render_text()
        );
        assert_eq!(r.regions[0].skips.criticals, 1);
    }

    #[test]
    fn reduction_combines_are_exempt() {
        let p = prog(
            "red",
            vec![arr("a", 64), arr("sum", 1)],
            1,
            region(Node::Seq(vec![
                Node::ParFor {
                    sched: None,
                    var: VarId(0),
                    begin: Expr::c(0),
                    end: Expr::c(64),
                    body: Box::new(Node::Load {
                        array: ArrayId(0),
                        index: Expr::v(VarId(0)),
                    }),
                    reduction: Some(Reduction {
                        op: ReductionOp::Sum,
                        target: ArrayId(1),
                        index: Expr::c(0),
                    }),
                    nowait: false,
                },
                // Reading the reduction result after the barrier is the
                // normal pattern and must stay clean.
                Node::Load {
                    array: ArrayId(1),
                    index: Expr::c(0),
                },
            ])),
        );
        let r = analyze(&p, &cfg4());
        assert!(r.is_clean(), "{}", r.render_text());
        assert_eq!(r.regions[0].skips.reduction_combines, 1);
    }

    #[test]
    fn skipped_single_store_read_later_warns() {
        let body = Node::Seq(vec![
            Node::Single(Box::new(Node::Store {
                array: ArrayId(0),
                index: Expr::c(0),
            })),
            Node::Load {
                array: ArrayId(0),
                index: Expr::c(0),
            },
        ]);
        let p = prog("single", vec![arr("a", 8)], 0, region(body));
        let r = analyze(&p, &cfg4());
        assert_eq!(r.deny_count(), 0, "{}", r.render_text());
        let stale: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.hazard == Hazard::SkippedStoreStale)
            .collect();
        assert_eq!(stale.len(), 1, "{}", r.render_text());
        assert!(stale[0].path.to_string().contains("single[0]/store[0]"));
        assert_eq!(r.regions[0].skips.singles, 1);
    }

    #[test]
    fn thread_dependent_loop_around_barrier_is_deny() {
        let body = Node::For {
            var: VarId(0),
            begin: Expr::c(0),
            end: Expr::ThreadId,
            step: 1,
            body: Box::new(Node::Barrier),
        };
        let p = prog("unbal", vec![], 1, region(body));
        let r = analyze(&p, &cfg4());
        assert_eq!(r.deny_count(), 1, "{}", r.render_text());
        assert_eq!(r.findings[0].hazard, Hazard::UnbalancedSync);
        assert!(r.findings[0].path.to_string().contains("for[0]"));
    }

    #[test]
    fn big_footprint_with_tokens_warns_stale_prefetch() {
        // Two phases each touching 32 lines; with 1 token the A-stream
        // window spans both, exceeding a 48-line "L2".
        let phase = |a| {
            parfor(
                None,
                256,
                Node::Store {
                    array: ArrayId(a),
                    index: Expr::v(VarId(0)),
                },
            )
        };
        let p = prog(
            "lead",
            vec![arr("a", 256), arr("b", 256)],
            1,
            Node::Parallel {
                body: Box::new(Node::Seq(vec![phase(0), phase(1)])),
                slipstream: Some(omp_ir::node::SlipstreamClause {
                    sync: SlipSyncType::GlobalSync,
                    tokens: 1,
                }),
            },
        );
        let r = analyze(&p, &cfg4().with_l2_lines(48));
        assert!(
            r.findings.iter().any(|f| f.hazard == Hazard::StalePrefetch),
            "{}",
            r.render_text()
        );
        assert_eq!(r.regions[0].lead_phases, 2);
        assert!(r.regions[0].max_window_lines > r.regions[0].max_phase_lines);
        // Same program analyzed with the paper L2 is clean.
        assert!(analyze(&p, &cfg4()).is_clean());
    }

    #[test]
    fn invalid_programs_report_validator_diagnostics() {
        let p = prog("bad", vec![], 0, parfor(None, 4, Node::nop()));
        let r = analyze(&p, &cfg4());
        assert!(r.deny_count() >= 1);
        assert_eq!(r.findings[0].hazard, Hazard::InvalidIr);
        assert!(r.findings[0].path.to_string().contains("parfor[0]"));
    }

    #[test]
    fn budget_truncation_is_flagged_without_spurious_findings() {
        let p = prog(
            "trunc",
            vec![arr("a", 64)],
            1,
            region(parfor(
                None,
                64,
                Node::Store {
                    array: ArrayId(0),
                    index: Expr::v(VarId(0)),
                },
            )),
        );
        let r = analyze(&p, &AnalyzeConfig::paper().with_threads(4).with_budget(10));
        assert!(r.truncated);
        assert!(!r.is_clean());
        assert_eq!(r.findings.len(), 0, "{}", r.render_text());
    }

    #[test]
    fn dynamic_schedule_chunks_are_distinct_work_items() {
        // dynamic(1): each iteration its own work item; element 0 written
        // by every iteration -> race.
        let p = prog(
            "dyn",
            vec![arr("a", 8)],
            1,
            region(parfor(
                Some(ScheduleSpec::dynamic(1)),
                16,
                Node::Store {
                    array: ArrayId(0),
                    index: Expr::c(0),
                },
            )),
        );
        let r = analyze(&p, &cfg4());
        assert_eq!(r.deny_count(), 1, "{}", r.render_text());
        // Disjoint writes under dynamic stay clean.
        let p2 = prog(
            "dyn2",
            vec![arr("a", 16)],
            1,
            region(parfor(
                Some(ScheduleSpec::dynamic(2)),
                16,
                Node::Store {
                    array: ArrayId(0),
                    index: Expr::v(VarId(0)),
                },
            )),
        );
        assert!(analyze(&p2, &cfg4()).is_clean());
    }
}
