//! Findings: what the analyzer reports, with severity and structured
//! locations.
//!
//! Every finding points at the exact IR construct that produced it via an
//! [`omp_ir::NodePath`], the same path structure `omp_ir::validate` uses
//! for its diagnostics, so tooling can correlate the two.

use omp_ir::NodePath;
use std::fmt;

/// How bad a finding is, ordered `Info < Warn < Deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; does not threaten correctness or the slipstream
    /// contract.
    Info,
    /// The program runs, but slipstream effectiveness or A-stream accuracy
    /// is at risk.
    Warn,
    /// The program is unsafe to run under slipstream execution (or at
    /// all): data races or divergent synchronization.
    Deny,
}

impl Severity {
    /// Stable lowercase label used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The hazard taxonomy (DESIGN.md section 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hazard {
    /// `omp_ir::validate` rejected the program; analysis did not run.
    InvalidIr,
    /// Two unordered writes to the same shared element within one barrier
    /// phase.
    RaceWriteWrite,
    /// An unordered write racing a read of the same shared element within
    /// one barrier phase.
    RaceReadWrite,
    /// Threads execute different barrier sequences (thread-dependent trip
    /// counts around synchronization), which deadlocks the team and
    /// desynchronizes the A-stream token protocol.
    UnbalancedSync,
    /// A store the A-stream skips (rather than converting to a prefetch)
    /// feeds a load in a later phase: the A-stream runs on stale data
    /// until recovery.
    SkippedStoreStale,
    /// A construct body the A-stream skips performs shared updates or
    /// I/O; its effects exist only once the R-stream executes it.
    RStreamOnlySideEffect,
    /// The shared footprint of the phases the A-stream may run ahead over
    /// exceeds L2 capacity, so prefetched lines risk eviction before the
    /// R-stream consumes them.
    StalePrefetch,
}

impl Hazard {
    /// Stable kebab-case key used in text and JSON output.
    pub fn key(self) -> &'static str {
        match self {
            Hazard::InvalidIr => "invalid-ir",
            Hazard::RaceWriteWrite => "race-ww",
            Hazard::RaceReadWrite => "race-rw",
            Hazard::UnbalancedSync => "unbalanced-sync",
            Hazard::SkippedStoreStale => "skipped-store-stale",
            Hazard::RStreamOnlySideEffect => "rstream-only-side-effect",
            Hazard::StalePrefetch => "stale-prefetch",
        }
    }

    /// Default severity of the hazard class.
    pub fn default_severity(self) -> Severity {
        match self {
            Hazard::InvalidIr
            | Hazard::RaceWriteWrite
            | Hazard::RaceReadWrite
            | Hazard::UnbalancedSync => Severity::Deny,
            Hazard::SkippedStoreStale | Hazard::StalePrefetch => Severity::Warn,
            Hazard::RStreamOnlySideEffect => Severity::Info,
        }
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Hazard class.
    pub hazard: Hazard,
    /// Severity (the hazard's default unless a policy adjusted it).
    pub severity: Severity,
    /// The construct the finding anchors to.
    pub path: NodePath,
    /// A second involved construct (e.g. the other side of a race).
    pub related: Option<NodePath>,
    /// Index of the parallel region (in program order) the finding was
    /// observed in; `None` for program-level findings.
    pub region: Option<u32>,
    /// Barrier phase within the region, when meaningful.
    pub phase: Option<u32>,
    /// Human-readable explanation with array names and element indices.
    pub message: String,
}

impl Finding {
    /// Stable FNV-1a fingerprint of the finding's identity: hazard,
    /// severity, anchor paths, and region/phase coordinates. The free-text
    /// message is deliberately excluded so wording changes never reshuffle
    /// fingerprints tracked across runs.
    pub fn fingerprint(&self) -> u64 {
        let related = self
            .related
            .as_ref()
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into());
        let region = self
            .region
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into());
        let phase = self
            .phase
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".into());
        crate::fnv1a64(
            format!(
                "finding|{}|{}|{}|{related}|{region}|{phase}",
                self.hazard.key(),
                self.severity.as_str(),
                self.path,
            )
            .as_bytes(),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} at {}", self.severity, self.hazard, self.path)?;
        if let Some(r) = &self.related {
            write!(f, " (with {r})")?;
        }
        if let Some(reg) = self.region {
            write!(f, " region {reg}")?;
            if let Some(p) = self.phase {
                write!(f, " phase {p}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{NodePath, PathSeg};

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn hazard_defaults() {
        assert_eq!(Hazard::RaceWriteWrite.default_severity(), Severity::Deny);
        assert_eq!(Hazard::StalePrefetch.default_severity(), Severity::Warn);
        assert_eq!(
            Hazard::RStreamOnlySideEffect.default_severity(),
            Severity::Info
        );
    }

    #[test]
    fn display_is_compact() {
        let f = Finding {
            hazard: Hazard::RaceWriteWrite,
            severity: Severity::Deny,
            path: NodePath::from_segs(&[PathSeg {
                kind: "parallel",
                index: 0,
            }]),
            related: None,
            region: Some(0),
            phase: Some(2),
            message: "boom".into(),
        };
        let s = f.to_string();
        assert!(s.contains("[deny] race-ww at parallel[0]"));
        assert!(s.contains("region 0 phase 2"));
        assert!(s.contains("boom"));
    }
}
