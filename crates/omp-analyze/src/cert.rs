//! Phase-purity certification: licensing memoized phase replay.
//!
//! The slipstream engine's `memo` mode skips converged iterations of a
//! serial loop by replaying recorded stats/machine-state deltas (see
//! `slipstream::memo`). Replay is *sound* only when the engine can prove
//! at run time that two consecutive iterations reached identical
//! time-normalized machine states — but attempting it everywhere would
//! waste digest work and, worse, a buggy attempt window could jump over
//! genuinely irregular code. This pass decides *where the engine is
//! allowed to try*:
//!
//! 1. Every barrier phase of every parallel region is summarized per
//!    (array, executor) with [`crate::deps`] index sets and classified:
//!    * [`PhaseClass::Pure`] — no shared writes at all;
//!    * [`PhaseClass::ReplaySafe`] — writes exist but every cross-thread
//!      pair is disjoint (GCD/Banerjee/CRT tests) or protected (atomic,
//!      reduction, same critical lock without stores... see below);
//!    * [`PhaseClass::Opaque`] — conflicts, I/O, dynamic-family
//!      schedules (runtime-allocated scheduler state), critical-section
//!      stores (arrival-order-dependent writers), or truncation.
//! 2. Serial `for` loops directly in a region body become
//!    [`ReplayLoop`] licenses when their bounds are compile-time
//!    constants (no thread-id dependence), the body never reads the
//!    induction variable, each iteration passes at least one barrier
//!    boundary, and every phase inside is `Pure`/`ReplaySafe`.
//!
//! Certificates carry stable FNV-1a fingerprints and `NodePath` evidence
//! anchors; `ReplayLoop::guard_checksum` digests the loop constants the
//! engine re-verifies against the live stack frame before every jump.

use std::collections::HashMap;

use omp_ir::expr::{SimpleCtx, VarId};
use omp_ir::node::{ArrayId, Node, Program, ScheduleKind, ScheduleSpec};
use omp_ir::path::{node_kind, NodePath, PathSeg};
use omp_ir::wsloop;

use crate::deps::{linear_in, lists_intersect, IndexSet, SetBuilder};
use crate::{fnv1a64, AnalyzeConfig};

/// Replay classification of one barrier phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseClass {
    /// No shared-memory writes: trivially replayable.
    Pure,
    /// Shared writes exist but are provably conflict-free or protected.
    ReplaySafe,
    /// The phase resists static summarization; replay must not engage.
    Opaque,
}

impl PhaseClass {
    /// Stable lowercase label (JSON, CLI).
    pub fn label(self) -> &'static str {
        match self {
            PhaseClass::Pure => "pure",
            PhaseClass::ReplaySafe => "replay-safe",
            PhaseClass::Opaque => "opaque",
        }
    }

    /// Parse a [`label`](Self::label) back.
    pub fn from_label(s: &str) -> Option<PhaseClass> {
        match s {
            "pure" => Some(PhaseClass::Pure),
            "replay-safe" => Some(PhaseClass::ReplaySafe),
            "opaque" => Some(PhaseClass::Opaque),
            _ => None,
        }
    }
}

impl std::fmt::Display for PhaseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One certified barrier phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCertificate {
    /// Parallel region ordinal (program order).
    pub region: u32,
    /// Barrier phase ordinal within the region.
    pub phase: u32,
    /// Replay classification.
    pub class: PhaseClass,
    /// The construct whose barrier ends this phase (the region itself
    /// for the trailing phase).
    pub path: NodePath,
    /// All access summaries in the phase are exact (no interval
    /// over-approximation, no enumeration-budget degradation).
    pub exact: bool,
    /// Distinct shared arrays accessed.
    pub arrays: u32,
    /// Total write-set size across executors (saturating; intervals
    /// count their full range).
    pub writes: u64,
    /// Demotion evidence, empty for `Pure`.
    pub reasons: Vec<String>,
    /// Stable FNV-1a fingerprint of the certificate content.
    pub fingerprint: u64,
}

/// A licensed replay loop: the engine may attempt fixed-point memoized
/// replay at construct-barrier boundaries inside this serial loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayLoop {
    /// Parallel region ordinal.
    pub region: u32,
    /// Path of the serial `for` node.
    pub path: NodePath,
    /// Induction variable slot.
    pub var: u32,
    /// Constant-folded inclusive start.
    pub begin: i64,
    /// Constant-folded exclusive end.
    pub end: i64,
    /// Loop step.
    pub step: u64,
    /// Iterations the loop executes.
    pub trip_count: u64,
    /// First barrier phase of the loop body.
    pub phase_start: u32,
    /// Barrier phases each iteration passes (≥ 1).
    pub phases_per_iteration: u32,
    /// FNV-1a over `(var, begin, end, step)` — the constants the engine
    /// re-verifies against the live `For` frame before every jump.
    pub guard_checksum: u64,
    /// Stable FNV-1a fingerprint of the license content.
    pub fingerprint: u64,
}

/// Compute the guard checksum the runtime re-derives from a live frame.
pub fn guard_checksum(var: u32, begin: i64, end: i64, step: u64) -> u64 {
    fnv1a64(format!("replay-guard|var={var}|begin={begin}|end={end}|step={step}").as_bytes())
}

pub(crate) struct CertOutput {
    pub certificates: Vec<PhaseCertificate>,
    pub replay_loops: Vec<ReplayLoop>,
}

// Executor identity: a fixed thread, or a one-shot work item (single
// bodies, sections) whose thread assignment is runtime-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CExec {
    Thread(u32),
    Once(u32),
}

fn exec_label(e: CExec) -> String {
    match e {
        CExec::Thread(t) => format!("thread {t}"),
        CExec::Once(i) => format!("work item {i}"),
    }
}

const NO_LOCK: u32 = u32::MAX;
const MAX_PHASES: usize = 4096;
const POINT_CAP: usize = 1 << 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CProt {
    atomic: bool,
    reduce: bool,
    lock: u32,
}

fn covered(a: CProt, b: CProt) -> bool {
    (a.atomic && b.atomic) || (a.reduce && b.reduce) || (a.lock != NO_LOCK && a.lock == b.lock)
}

#[derive(Clone, Copy)]
struct Scope {
    exec: CExec,
    lock: u32,
    reduce: bool,
    in_critical: bool,
    ws: bool,
}

struct TState {
    tid: u64,
    ctx: SimpleCtx,
    phase: u32,
    dirty: bool,
}

#[derive(Default)]
struct PhaseMeta {
    end_path: Option<NodePath>,
    io: bool,
    dynamic: bool,
    critical_store: bool,
}

struct Candidate {
    path: NodePath,
    var: u32,
    begin: i64,
    end: i64,
    step: u64,
    trip: u64,
    phase_start: u32,
    phase_end: u32,
    ppi: u32,
    aligned: bool,
}

struct Stop;

type AccKey = (u32, u32, CExec, CProt, bool);

struct Certifier<'p> {
    program: &'p Program,
    cfg: &'p AnalyzeConfig,
    segs: Vec<PathSeg>,
    budget: u64,
    locks: HashMap<String, u32>,
    once_ctr: u32,
    region_idx: u32,
    // Per-region scratch.
    acc: HashMap<AccKey, SetBuilder>,
    meta: Vec<PhaseMeta>,
    candidates: Vec<Candidate>,
    truncated: bool,
    // Output.
    certificates: Vec<PhaseCertificate>,
    replay_loops: Vec<ReplayLoop>,
}

pub(crate) fn certify(program: &Program, cfg: &AnalyzeConfig) -> CertOutput {
    let mut c = Certifier {
        program,
        cfg,
        segs: Vec::new(),
        budget: cfg.visit_budget,
        locks: HashMap::new(),
        once_ctr: 0,
        region_idx: 0,
        acc: HashMap::new(),
        meta: Vec::new(),
        candidates: Vec::new(),
        truncated: false,
        certificates: Vec::new(),
        replay_loops: Vec::new(),
    };
    c.top(&program.body, 0);
    CertOutput {
        certificates: c.certificates,
        replay_loops: c.replay_loops,
    }
}

impl<'p> Certifier<'p> {
    fn path(&self) -> NodePath {
        NodePath::from_segs(&self.segs)
    }

    fn spend(&mut self) -> Result<(), Stop> {
        if self.budget == 0 {
            self.truncated = true;
            return Err(Stop);
        }
        self.budget -= 1;
        Ok(())
    }

    fn lock_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.locks.get(name) {
            return id;
        }
        let id = self.locks.len() as u32;
        self.locks.insert(name.to_string(), id);
        id
    }

    fn fresh_once(&mut self) -> CExec {
        let e = CExec::Once(self.once_ctr);
        self.once_ctr += 1;
        e
    }

    fn fresh_ctx(&self, tid: u64) -> SimpleCtx {
        let mut c = SimpleCtx::new(
            self.program.num_vars as usize,
            tid as i64,
            self.cfg.num_threads as i64,
        );
        c.tables = self.program.tables.clone();
        c
    }

    fn ensure_meta(&mut self, phase: u32) {
        while self.meta.len() <= phase as usize {
            self.meta.push(PhaseMeta::default());
        }
    }

    fn meta_mut(&mut self, phase: u32) -> &mut PhaseMeta {
        self.ensure_meta(phase);
        &mut self.meta[phase as usize]
    }

    // ---- serial walk ----------------------------------------------------

    fn top(&mut self, n: &Node, idx: u32) {
        match n {
            Node::Seq(v) => {
                for (k, c) in v.iter().enumerate() {
                    self.top(c, k as u32);
                }
            }
            Node::For { body, .. } => {
                self.segs.push(PathSeg {
                    kind: "for",
                    index: idx,
                });
                self.top(body, 0);
                self.segs.pop();
            }
            Node::Parallel { body, .. } => {
                self.segs.push(PathSeg {
                    kind: "parallel",
                    index: idx,
                });
                self.region(body);
                self.segs.pop();
                self.region_idx += 1;
            }
            _ => {}
        }
    }

    // ---- region walk ----------------------------------------------------

    fn region(&mut self, body: &Node) {
        self.acc.clear();
        self.meta.clear();
        self.meta.push(PhaseMeta::default());
        self.candidates.clear();
        self.truncated = false;
        let region_path = self.path();

        for tid in 0..self.cfg.num_threads {
            let mut t = TState {
                tid,
                ctx: self.fresh_ctx(tid),
                phase: 0,
                dirty: false,
            };
            let sc = Scope {
                exec: CExec::Thread(tid as u32),
                lock: NO_LOCK,
                reduce: false,
                in_critical: false,
                ws: false,
            };
            let depth = self.segs.len();
            if self.walk_node(body, &mut t, sc, 0, 0).is_err() {
                self.segs.truncate(depth);
                break;
            }
        }
        self.emit_region(&region_path);
    }

    fn walk_node(
        &mut self,
        n: &Node,
        t: &mut TState,
        sc: Scope,
        idx: u32,
        loop_depth: u32,
    ) -> Result<(), Stop> {
        if let Node::Seq(v) = n {
            for (k, c) in v.iter().enumerate() {
                self.walk_node(c, t, sc, k as u32, loop_depth)?;
            }
            return Ok(());
        }
        self.spend()?;
        self.segs.push(PathSeg {
            kind: node_kind(n),
            index: idx,
        });
        let r = self.walk_inner(n, t, sc, loop_depth);
        self.segs.pop();
        r
    }

    fn walk_inner(
        &mut self,
        n: &Node,
        t: &mut TState,
        sc: Scope,
        loop_depth: u32,
    ) -> Result<(), Stop> {
        match n {
            Node::Seq(_) => unreachable!("Seq handled in walk_node"),
            Node::Compute(_) | Node::Flush | Node::Parallel { .. } | Node::SlipstreamSet(_) => {}
            Node::Load { array, index } => self.record_eval(t, sc, *array, index, false, false),
            Node::Store { array, index } => self.record_eval(t, sc, *array, index, true, false),
            Node::Atomic { array, index } => self.record_eval(t, sc, *array, index, true, true),
            Node::Io { .. } => {
                self.meta_mut(t.phase).io = true;
                t.dirty = true;
            }
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                let lo = begin.eval(&t.ctx);
                let hi = end.eval(&t.ctx);
                let step = (*step).max(1);
                // License-candidate bookkeeping: top-level serial loops
                // with thread-independent constant bounds whose body never
                // reads the induction variable.
                let nt = self.cfg.num_threads as i64;
                let cand = t.tid == 0
                    && !sc.ws
                    && loop_depth == 0
                    && begin.const_fold(Some(nt)).is_some()
                    && end.const_fold(Some(nt)).is_some()
                    && !body.reads_var(*var);
                let trip = wsloop::trip_count(lo, hi, step);
                let phase_start = t.phase;
                let mut aligned = !t.dirty;
                let mut ppi = 0u32;
                let mut v = lo;
                let mut first = true;
                while v < hi {
                    t.ctx.vars[var.0 as usize] = v;
                    self.walk_node(body, t, sc, 0, loop_depth + 1)?;
                    if first {
                        first = false;
                        if cand {
                            aligned &= !t.dirty;
                            ppi = t.phase - phase_start;
                        }
                    }
                    v += step as i64;
                }
                if cand && trip >= 1 {
                    self.candidates.push(Candidate {
                        path: self.path(),
                        var: var.0,
                        begin: lo,
                        end: hi,
                        step,
                        trip,
                        phase_start,
                        phase_end: t.phase,
                        ppi,
                        aligned,
                    });
                }
            }
            Node::ParFor {
                sched,
                var,
                begin,
                end,
                body,
                reduction,
                nowait,
            } => {
                let lo = begin.eval(&t.ctx);
                let hi = end.eval(&t.ctx);
                let spec = sched.unwrap_or_else(ScheduleSpec::static_default);
                let nt = self.cfg.num_threads;
                match spec.kind {
                    ScheduleKind::Static => {
                        let wsc = Scope {
                            exec: CExec::Thread(t.tid as u32),
                            ws: true,
                            ..sc
                        };
                        match spec.chunk {
                            None => {
                                let c = wsloop::static_block(lo, hi, 1, nt, t.tid);
                                self.static_chunk(c.lo, c.hi, *var, body, t, wsc, loop_depth)?;
                            }
                            Some(ch) => {
                                for c in wsloop::static_chunked(lo, hi, 1, nt, t.tid, ch.max(1)) {
                                    self.static_chunk(c.lo, c.hi, *var, body, t, wsc, loop_depth)?;
                                }
                            }
                        }
                    }
                    ScheduleKind::Dynamic
                    | ScheduleKind::Guided
                    | ScheduleKind::Affinity
                    | ScheduleKind::Runtime => {
                        // Chunk-to-thread assignment is runtime state: the
                        // phase is Opaque regardless, so summarize with
                        // whole-range interval over-approximations under a
                        // single work-item executor.
                        if t.tid == 0 {
                            self.meta_mut(t.phase).dynamic = true;
                            let exec = self.fresh_once();
                            let mut touched = Vec::new();
                            scan_accesses(body, &mut touched);
                            for (array, write) in touched {
                                let decl = &self.program.arrays[array.0 as usize];
                                if !decl.shared || decl.len == 0 {
                                    continue;
                                }
                                let prot = CProt {
                                    atomic: false,
                                    reduce: false,
                                    lock: NO_LOCK,
                                };
                                self.record_set(
                                    t,
                                    array,
                                    exec,
                                    prot,
                                    write,
                                    IndexSet::Interval {
                                        lo: 0,
                                        hi: decl.len as i64 - 1,
                                    },
                                );
                            }
                        }
                    }
                }
                if let Some(r) = reduction {
                    let rsc = Scope {
                        exec: CExec::Thread(t.tid as u32),
                        reduce: true,
                        ws: true,
                        ..sc
                    };
                    self.record_eval(t, rsc, r.target, &r.index, true, false);
                }
                if !*nowait {
                    self.end_phase(t)?;
                }
            }
            Node::Barrier => self.end_phase(t)?,
            Node::Single(body) => {
                if t.tid == 0 {
                    let wsc = Scope {
                        exec: self.fresh_once(),
                        ws: true,
                        ..sc
                    };
                    self.walk_node(body, t, wsc, 0, loop_depth)?;
                }
                self.end_phase(t)?;
            }
            Node::Master(body) => {
                if t.tid == 0 {
                    let wsc = Scope { ws: true, ..sc };
                    self.walk_node(body, t, wsc, 0, loop_depth)?;
                }
            }
            Node::Critical { name, body } => {
                let lock = self.lock_id(name);
                let wsc = Scope {
                    lock,
                    in_critical: true,
                    ws: true,
                    ..sc
                };
                self.walk_node(body, t, wsc, 0, loop_depth)?;
            }
            Node::Sections(secs) => {
                if t.tid == 0 {
                    for (k, s) in secs.iter().enumerate() {
                        let wsc = Scope {
                            exec: self.fresh_once(),
                            ws: true,
                            ..sc
                        };
                        self.walk_node(s, t, wsc, k as u32, loop_depth)?;
                    }
                }
                self.end_phase(t)?;
            }
        }
        Ok(())
    }

    /// One static chunk of a worksharing loop. Simple affine bodies are
    /// summarized in closed form straight from the chunk bounds (the
    /// engine's own `wsloop` arithmetic already produced `[lo, hi)`);
    /// anything else — nested loops, table lookups — is enumerated
    /// concretely, degrading to an interval past the point budget.
    #[allow(clippy::too_many_arguments)]
    fn static_chunk(
        &mut self,
        lo: i64,
        hi: i64,
        var: VarId,
        body: &Node,
        t: &mut TState,
        sc: Scope,
        loop_depth: u32,
    ) -> Result<(), Stop> {
        if lo >= hi {
            return Ok(());
        }
        if let Some(accs) = simple_affine_body(body, var, &t.ctx) {
            let count = (hi - lo) as u64;
            for (array, write, atomic, a, b) in accs {
                self.spend()?;
                let decl = &self.program.arrays[array.0 as usize];
                if !decl.shared || decl.len == 0 {
                    continue;
                }
                let prot = CProt {
                    atomic,
                    reduce: sc.reduce,
                    lock: sc.lock,
                };
                if write && sc.in_critical {
                    self.meta_mut(t.phase).critical_store = true;
                }
                let len = decl.len as i64;
                let first = (a as i128) * (lo as i128) + b as i128;
                let last = (a as i128) * (hi as i128 - 1) + b as i128;
                let (min, max) = (first.min(last), first.max(last));
                if min >= 0 && max < len as i128 {
                    self.record_set(
                        t,
                        array,
                        sc.exec,
                        prot,
                        write,
                        IndexSet::affine(first as i64, a, if a == 0 { 1 } else { count }),
                    );
                } else {
                    // Clamping (or i64 wrap) breaks the progression shape:
                    // enumerate with the runtime's clamp semantics.
                    for v in lo..hi {
                        let raw = a.wrapping_mul(v).wrapping_add(b);
                        self.record_point(t, array, sc.exec, prot, write, raw.clamp(0, len - 1));
                    }
                }
            }
            return Ok(());
        }
        let mut v = lo;
        while v < hi {
            t.ctx.vars[var.0 as usize] = v;
            self.walk_node(body, t, sc, 0, loop_depth + 1)?;
            v += 1;
        }
        Ok(())
    }

    // ---- access recording ------------------------------------------------

    fn record_eval(
        &mut self,
        t: &mut TState,
        sc: Scope,
        array: ArrayId,
        index: &omp_ir::expr::Expr,
        write: bool,
        atomic: bool,
    ) {
        let decl = &self.program.arrays[array.0 as usize];
        if !decl.shared || decl.len == 0 {
            return;
        }
        let raw = index.eval(&t.ctx);
        let elem = raw.clamp(0, decl.len as i64 - 1);
        let prot = CProt {
            atomic,
            reduce: sc.reduce,
            lock: sc.lock,
        };
        if write && sc.in_critical {
            self.meta_mut(t.phase).critical_store = true;
        }
        self.record_point(t, array, sc.exec, prot, write, elem);
    }

    fn record_point(
        &mut self,
        t: &mut TState,
        array: ArrayId,
        exec: CExec,
        prot: CProt,
        write: bool,
        elem: i64,
    ) {
        t.dirty = true;
        let key = (t.phase, array.0, exec, prot, write);
        self.acc
            .entry(key)
            .or_insert_with(|| SetBuilder::new(POINT_CAP))
            .add_point(elem);
    }

    fn record_set(
        &mut self,
        t: &mut TState,
        array: ArrayId,
        exec: CExec,
        prot: CProt,
        write: bool,
        set: IndexSet,
    ) {
        if set.is_empty() {
            return;
        }
        t.dirty = true;
        let key = (t.phase, array.0, exec, prot, write);
        self.acc
            .entry(key)
            .or_insert_with(|| SetBuilder::new(POINT_CAP))
            .add_set(set);
    }

    fn end_phase(&mut self, t: &mut TState) -> Result<(), Stop> {
        if t.tid == 0 {
            let p = self.path();
            self.meta_mut(t.phase).end_path = Some(p);
        }
        t.phase += 1;
        t.dirty = false;
        if t.phase as usize >= MAX_PHASES {
            self.truncated = true;
            return Err(Stop);
        }
        self.ensure_meta(t.phase);
        Ok(())
    }

    // ---- classification --------------------------------------------------

    fn emit_region(&mut self, region_path: &NodePath) {
        struct Entry {
            array: u32,
            exec: CExec,
            prot: CProt,
            write: bool,
            sets: Vec<IndexSet>,
            exact: bool,
        }
        // Group finished builders per phase, deterministically ordered.
        let mut keys: Vec<AccKey> = self.acc.keys().copied().collect();
        keys.sort_by_key(|&(p, a, e, pr, w)| {
            let ek = match e {
                CExec::Thread(i) => (0u8, i),
                CExec::Once(i) => (1u8, i),
            };
            (p, a, ek, pr.lock, pr.atomic, pr.reduce, w)
        });
        let mut per_phase: Vec<Vec<Entry>> = (0..self.meta.len()).map(|_| Vec::new()).collect();
        for key in keys {
            let (phase, array, exec, prot, write) = key;
            let b = self.acc.remove(&key).expect("keyed");
            let (sets, exact) = b.finish();
            if (phase as usize) < per_phase.len() {
                per_phase[phase as usize].push(Entry {
                    array,
                    exec,
                    prot,
                    write,
                    sets,
                    exact,
                });
            }
        }

        let region = self.region_idx;
        let mut classes: Vec<PhaseClass> = Vec::with_capacity(self.meta.len());
        for (phase, entries) in per_phase.iter().enumerate() {
            let m = &self.meta[phase];
            let mut reasons: Vec<String> = Vec::new();
            let mut exact = entries.iter().all(|e| e.exact);
            let arrays = {
                let mut a: Vec<u32> = entries.iter().map(|e| e.array).collect();
                a.sort_unstable();
                a.dedup();
                a.len() as u32
            };
            let writes: u64 = entries
                .iter()
                .filter(|e| e.write)
                .flat_map(|e| e.sets.iter())
                .fold(0u64, |s, x| s.saturating_add(x.len()));

            if self.truncated {
                reasons.push("analysis truncated before certification completed".into());
                exact = false;
            }
            if m.io {
                reasons.push("phase performs I/O".into());
            }
            if m.dynamic {
                reasons.push(
                    "dynamic-family worksharing schedule: chunk-to-thread assignment and \
                     per-encounter scheduler state are runtime-dependent"
                        .into(),
                );
            }
            if m.critical_store {
                reasons
                    .push("critical-section store: writer order is arrival-time-dependent".into());
            }
            // Dependence tests: every cross-executor (write × access)
            // pair must be protected or provably disjoint.
            let mut conflicts = 0usize;
            'outer: for (i, w) in entries.iter().enumerate() {
                if !w.write {
                    continue;
                }
                for (j, o) in entries.iter().enumerate() {
                    if i == j || w.array != o.array || w.exec == o.exec || covered(w.prot, o.prot) {
                        continue;
                    }
                    if lists_intersect(&w.sets, &o.sets) {
                        conflicts += 1;
                        if reasons.len() < 8 {
                            let name = &self.program.arrays[w.array as usize].name;
                            reasons.push(format!(
                                "unprotected overlapping {} of {name} by {} and {}",
                                if o.write { "writes" } else { "write/read" },
                                exec_label(w.exec),
                                exec_label(o.exec),
                            ));
                        }
                        if conflicts >= 64 {
                            break 'outer;
                        }
                    }
                }
            }

            let class = if self.truncated || m.io || m.dynamic || m.critical_store || conflicts > 0
            {
                PhaseClass::Opaque
            } else if writes == 0 {
                PhaseClass::Pure
            } else {
                PhaseClass::ReplaySafe
            };
            classes.push(class);

            let path = self.meta[phase]
                .end_path
                .clone()
                .unwrap_or_else(|| region_path.clone());
            let mut cert = PhaseCertificate {
                region,
                phase: phase as u32,
                class,
                path,
                exact,
                arrays,
                writes,
                reasons,
                fingerprint: 0,
            };
            cert.fingerprint = fnv1a64(
                format!(
                    "phase-cert|{}|r{}|p{}|{}|{}|exact={}|arrays={}|writes={}|{}",
                    self.program.name,
                    cert.region,
                    cert.phase,
                    cert.class.label(),
                    cert.path,
                    cert.exact,
                    cert.arrays,
                    cert.writes,
                    cert.reasons.join(";"),
                )
                .as_bytes(),
            );
            self.certificates.push(cert);
        }

        // Licenses: candidates whose body is phase-aligned, passes at
        // least one barrier per iteration, and contains only
        // Pure/ReplaySafe phases.
        if !self.truncated {
            for c in std::mem::take(&mut self.candidates) {
                let span = c.phase_end - c.phase_start;
                let whole = c.ppi >= 1 && span as u64 == c.ppi as u64 * c.trip;
                let all_safe = (c.phase_start..c.phase_end).all(|p| {
                    classes.get(p as usize).copied() == Some(PhaseClass::ReplaySafe)
                        || classes.get(p as usize).copied() == Some(PhaseClass::Pure)
                });
                if c.aligned && whole && all_safe {
                    let guard = guard_checksum(c.var, c.begin, c.end, c.step);
                    let mut rl = ReplayLoop {
                        region,
                        path: c.path,
                        var: c.var,
                        begin: c.begin,
                        end: c.end,
                        step: c.step,
                        trip_count: c.trip,
                        phase_start: c.phase_start,
                        phases_per_iteration: c.ppi,
                        guard_checksum: guard,
                        fingerprint: 0,
                    };
                    rl.fingerprint = fnv1a64(
                        format!(
                            "replay-loop|{}|r{}|{}|var={}|{}..{}|step={}|trip={}|ppi={}",
                            self.program.name,
                            rl.region,
                            rl.path,
                            rl.var,
                            rl.begin,
                            rl.end,
                            rl.step,
                            rl.trip_count,
                            rl.phases_per_iteration,
                        )
                        .as_bytes(),
                    );
                    self.replay_loops.push(rl);
                }
            }
        }
        self.candidates.clear();
    }
}

/// One straight-line access with an index affine in the loop variable:
/// `(array, write, atomic, a, b)` with `index = a·var + b`.
type AffineAccess = (ArrayId, bool, bool, i64, i64);

/// A worksharing body consisting only of straight-line accesses whose
/// indices are affine in the loop variable.
fn simple_affine_body(body: &Node, var: VarId, ctx: &SimpleCtx) -> Option<Vec<AffineAccess>> {
    fn go(n: &Node, var: VarId, ctx: &SimpleCtx, out: &mut Vec<AffineAccess>) -> bool {
        match n {
            Node::Seq(v) => v.iter().all(|c| go(c, var, ctx, out)),
            Node::Compute(_) | Node::Flush => true,
            Node::Load { array, index } => match linear_in(index, var, ctx) {
                Some((a, b)) => {
                    out.push((*array, false, false, a, b));
                    true
                }
                None => false,
            },
            Node::Store { array, index } => match linear_in(index, var, ctx) {
                Some((a, b)) => {
                    out.push((*array, true, false, a, b));
                    true
                }
                None => false,
            },
            Node::Atomic { array, index } => match linear_in(index, var, ctx) {
                Some((a, b)) => {
                    out.push((*array, true, true, a, b));
                    true
                }
                None => false,
            },
            _ => false,
        }
    }
    let mut out = Vec::new();
    if go(body, var, ctx, &mut out) {
        Some(out)
    } else {
        None
    }
}

/// Static scan: every (array, is_write) access under a node.
fn scan_accesses(n: &Node, out: &mut Vec<(ArrayId, bool)>) {
    match n {
        Node::Load { array, .. } => push_unique(out, (*array, false)),
        Node::Store { array, .. } | Node::Atomic { array, .. } => push_unique(out, (*array, true)),
        Node::Seq(v) | Node::Sections(v) => {
            for c in v {
                scan_accesses(c, out);
            }
        }
        Node::For { body, .. }
        | Node::Parallel { body, .. }
        | Node::ParFor { body, .. }
        | Node::Single(body)
        | Node::Master(body)
        | Node::Critical { body, .. } => scan_accesses(body, out),
        _ => {}
    }
    if let Node::ParFor {
        reduction: Some(r), ..
    } = n
    {
        push_unique(out, (r.target, true));
    }
}

fn push_unique(v: &mut Vec<(ArrayId, bool)>, x: (ArrayId, bool)) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use omp_ir::expr::Expr;
    use omp_ir::node::{ArrayDecl, Node};

    fn arr(name: &str, len: u64) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            shared: true,
            len,
            elem_bytes: 8,
        }
    }

    fn prog(name: &str, arrays: Vec<ArrayDecl>, num_vars: u32, body: Node) -> Program {
        Program {
            name: name.into(),
            arrays,
            tables: vec![],
            num_vars,
            body,
        }
    }

    fn cfg4() -> AnalyzeConfig {
        AnalyzeConfig::paper().with_threads(4)
    }

    fn parfor(sched: Option<ScheduleSpec>, end: i64, body: Node) -> Node {
        Node::ParFor {
            sched,
            var: VarId(0),
            begin: Expr::c(0),
            end: Expr::c(end),
            body: Box::new(body),
            reduction: None,
            nowait: false,
        }
    }

    fn region(body: Node) -> Node {
        Node::Parallel {
            body: Box::new(body),
            slipstream: None,
        }
    }

    fn store(a: u32, idx: Expr) -> Node {
        Node::Store {
            array: ArrayId(a),
            index: idx,
        }
    }

    #[test]
    fn class_labels_round_trip() {
        for c in [PhaseClass::Pure, PhaseClass::ReplaySafe, PhaseClass::Opaque] {
            assert_eq!(PhaseClass::from_label(c.label()), Some(c));
            assert_eq!(c.to_string(), c.label());
        }
        assert_eq!(PhaseClass::from_label("nope"), None);
    }

    #[test]
    fn disjoint_static_writes_are_replay_safe_and_exact() {
        let p = prog(
            "rs",
            vec![arr("a", 64)],
            1,
            region(parfor(None, 64, store(0, Expr::v(VarId(0))))),
        );
        let r = analyze(&p, &cfg4());
        // Phase 0: the parfor (writes, disjoint); phase 1: trailing (empty).
        assert_eq!(r.certificates.len(), 2, "{}", r.render_text());
        let c0 = &r.certificates[0];
        assert_eq!(c0.class, PhaseClass::ReplaySafe);
        assert!(c0.exact);
        assert_eq!(c0.writes, 64);
        assert!(c0.reasons.is_empty());
        assert!(c0.path.to_string().contains("parfor[0]"));
        assert_eq!(r.certificates[1].class, PhaseClass::Pure);
        assert_ne!(c0.fingerprint, r.certificates[1].fingerprint);
    }

    #[test]
    fn read_only_phase_is_pure() {
        let p = prog(
            "pure",
            vec![arr("a", 64)],
            1,
            region(parfor(
                None,
                64,
                Node::Load {
                    array: ArrayId(0),
                    index: Expr::v(VarId(0)),
                },
            )),
        );
        let r = analyze(&p, &cfg4());
        assert!(r.certificates.iter().all(|c| c.class == PhaseClass::Pure));
    }

    #[test]
    fn racing_writes_are_opaque_with_evidence() {
        let p = prog(
            "race",
            vec![arr("a", 64)],
            1,
            region(parfor(None, 64, store(0, Expr::c(0)))),
        );
        let r = analyze(&p, &cfg4());
        let c0 = &r.certificates[0];
        assert_eq!(c0.class, PhaseClass::Opaque);
        assert!(
            c0.reasons.iter().any(|m| m.contains("overlapping")),
            "{c0:?}"
        );
    }

    #[test]
    fn dynamic_schedule_is_opaque_interval_summary() {
        let p = prog(
            "dyn",
            vec![arr("a", 64)],
            1,
            region(parfor(
                Some(ScheduleSpec::dynamic(2)),
                64,
                store(0, Expr::v(VarId(0))),
            )),
        );
        let r = analyze(&p, &cfg4());
        let c0 = &r.certificates[0];
        assert_eq!(c0.class, PhaseClass::Opaque);
        assert!(!c0.exact);
        assert!(c0.reasons.iter().any(|m| m.contains("dynamic-family")));
    }

    #[test]
    fn io_phase_is_opaque() {
        let p = prog(
            "io",
            vec![],
            0,
            region(Node::Seq(vec![
                Node::Master(Box::new(Node::Io {
                    input: false,
                    bytes: 4096,
                })),
                Node::Barrier,
            ])),
        );
        let r = analyze(&p, &cfg4());
        assert_eq!(r.certificates[0].class, PhaseClass::Opaque);
        assert!(r.certificates[0].reasons.iter().any(|m| m.contains("I/O")));
    }

    #[test]
    fn critical_store_is_opaque_even_though_race_free() {
        let p = prog(
            "crit",
            vec![arr("a", 8)],
            0,
            region(Node::Seq(vec![
                Node::Critical {
                    name: "sum".into(),
                    body: Box::new(store(0, Expr::c(0))),
                },
                Node::Barrier,
            ])),
        );
        let r = analyze(&p, &cfg4());
        // The race checker accepts it (same lock)...
        assert_eq!(r.deny_count(), 0, "{}", r.render_text());
        // ...but replay must not: writer order is arrival-time-dependent.
        assert_eq!(r.certificates[0].class, PhaseClass::Opaque);
        assert!(r.certificates[0]
            .reasons
            .iter()
            .any(|m| m.contains("critical-section store")));
    }

    #[test]
    fn atomic_and_reduction_writes_stay_replay_safe() {
        let p = prog(
            "atomic",
            vec![arr("a", 8)],
            1,
            region(parfor(
                None,
                64,
                Node::Atomic {
                    array: ArrayId(0),
                    index: Expr::c(0),
                },
            )),
        );
        let r = analyze(&p, &cfg4());
        assert_eq!(r.certificates[0].class, PhaseClass::ReplaySafe);
    }

    #[test]
    fn constant_bound_phase_aligned_loop_is_licensed() {
        // for it in 0..6 { parfor static disjoint } — the NPB shape.
        let body = Node::For {
            var: VarId(1),
            begin: Expr::c(0),
            end: Expr::c(6),
            step: 1,
            body: Box::new(parfor(None, 64, store(0, Expr::v(VarId(0))))),
        };
        let p = prog("lic", vec![arr("a", 64)], 2, region(body));
        let r = analyze(&p, &cfg4());
        assert_eq!(r.replay_loops.len(), 1, "{}", r.render_text());
        let l = &r.replay_loops[0];
        assert_eq!((l.begin, l.end, l.step, l.trip_count), (0, 6, 1, 6));
        assert_eq!(l.var, 1);
        assert_eq!(l.phase_start, 0);
        assert_eq!(l.phases_per_iteration, 1);
        assert!(l.path.to_string().contains("for[0]"));
        assert_eq!(
            l.guard_checksum,
            guard_checksum(l.var, l.begin, l.end, l.step)
        );
        // 6 parfor phases + trailing phase, all certified.
        assert_eq!(r.certificates.len(), 7);
    }

    #[test]
    fn thread_dependent_bound_revokes_license() {
        let body = Node::For {
            var: VarId(1),
            begin: Expr::c(0),
            end: Expr::Bin(
                omp_ir::expr::BinOp::Add,
                Box::new(Expr::ThreadId),
                Box::new(Expr::c(4)),
            ),
            step: 1,
            body: Box::new(Node::Seq(vec![Node::Barrier])),
        };
        // Unbalanced per-thread trips: also a deny finding, but the point
        // here is the certifier independently refuses the license.
        let p = prog("tid", vec![], 2, region(body));
        let r = analyze(&p, &cfg4());
        assert!(r.replay_loops.is_empty());
    }

    #[test]
    fn body_reading_loop_var_revokes_license() {
        let body = Node::For {
            var: VarId(1),
            begin: Expr::c(0),
            end: Expr::c(4),
            step: 1,
            body: Box::new(parfor(
                None,
                64,
                store(
                    0,
                    Expr::Bin(
                        omp_ir::expr::BinOp::Add,
                        Box::new(Expr::v(VarId(0))),
                        Box::new(Expr::v(VarId(1))),
                    ),
                ),
            )),
        };
        let p = prog("rdvar", vec![arr("a", 128)], 2, region(body));
        let r = analyze(&p, &cfg4());
        assert!(r.replay_loops.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn opaque_phase_inside_loop_revokes_license() {
        let body = Node::For {
            var: VarId(1),
            begin: Expr::c(0),
            end: Expr::c(4),
            step: 1,
            body: Box::new(Node::Seq(vec![
                parfor(None, 64, store(0, Expr::v(VarId(0)))),
                Node::Critical {
                    name: "c".into(),
                    body: Box::new(store(0, Expr::c(0))),
                },
                Node::Barrier,
            ])),
        };
        let p = prog("opq", vec![arr("a", 64)], 2, region(body));
        let r = analyze(&p, &cfg4());
        assert!(r.replay_loops.is_empty(), "{}", r.render_text());
        assert!(r.certificates.iter().any(|c| c.class == PhaseClass::Opaque));
    }

    #[test]
    fn misaligned_loop_body_revokes_license() {
        // Store before the parfor: accesses bleed across the iteration
        // boundary (not phase-aligned at entry of each iteration).
        let body = Node::For {
            var: VarId(1),
            begin: Expr::c(0),
            end: Expr::c(4),
            step: 1,
            body: Box::new(Node::Seq(vec![
                parfor(None, 64, store(0, Expr::v(VarId(0)))),
                Node::Master(Box::new(store(0, Expr::c(0)))),
            ])),
        };
        let p = prog("dirty", vec![arr("a", 64)], 2, region(body));
        let r = analyze(&p, &cfg4());
        assert!(r.replay_loops.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn chunked_static_schedule_certifies_exactly() {
        let p = prog(
            "chunked",
            vec![arr("a", 64)],
            1,
            region(parfor(
                Some(ScheduleSpec {
                    kind: ScheduleKind::Static,
                    chunk: Some(3),
                }),
                64,
                store(0, Expr::v(VarId(0))),
            )),
        );
        let r = analyze(&p, &cfg4());
        assert_eq!(r.certificates[0].class, PhaseClass::ReplaySafe);
        assert!(r.certificates[0].exact);
        assert_eq!(r.certificates[0].writes, 64);
    }

    #[test]
    fn fingerprints_are_stable_across_reanalysis() {
        let p = prog(
            "stable",
            vec![arr("a", 64)],
            1,
            region(parfor(None, 64, store(0, Expr::v(VarId(0))))),
        );
        let a = analyze(&p, &cfg4());
        let b = analyze(&p, &cfg4());
        let fa: Vec<u64> = a.certificates.iter().map(|c| c.fingerprint).collect();
        let fb: Vec<u64> = b.certificates.iter().map(|c| c.fingerprint).collect();
        assert_eq!(fa, fb);
    }
}
