//! The symbolic per-thread walker.
//!
//! The analyzer evaluates the program the same way the reference tracer
//! (`omp_ir::trace`) does — index expressions read only private state, so
//! every address and trip count is computable without running the memory
//! simulation. Each parallel region is walked once per modeled thread:
//! static schedules with that thread's own chunks, dynamic-family
//! schedules once (on the thread-0 pass) with chunk-grained "work item"
//! executor labels, since chunk *boundaries* are deterministic but the
//! chunk-to-thread assignment is not.
//!
//! Three passes share the walk:
//!
//! 1. **Conflict detection.** Accesses to the same shared element within
//!    one barrier phase by different executors race unless both are
//!    atomic, both hold the same critical lock, or both are reduction
//!    combines.
//! 2. **Skip-set / divergence hazards.** Stores the A-stream skips
//!    without conversion are recorded; a later-phase load of the element
//!    means the A-stream runs on stale data. Skipped construct bodies
//!    with shared side effects, and thread-dependent loops around
//!    synchronization, are flagged.
//! 3. **Lead bound.** Per-phase shared-line footprints are accumulated;
//!    the largest union over the window of phases the A-stream may lead
//!    (tokens + 1 for global sync, tokens + 2 for local) is compared
//!    against L2 capacity.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use dsm_sim::{layout_spans, ArraySpan};
use omp_ir::expr::{Expr, SimpleCtx, VarId};
use omp_ir::node::{
    ArrayId, Node, Program, ScheduleKind, ScheduleSpec, SlipSyncType, SlipstreamClause,
};
use omp_ir::path::{node_kind, NodePath, PathSeg};
use omp_ir::wsloop;

use crate::finding::{Finding, Hazard};
use crate::report::{RegionReport, SkipSet};
use crate::AnalyzeConfig;

/// Minimal FNV-style hasher so the hot maps don't pay SipHash costs
/// (the workspace is dependency-free, so no external fast-hash crate).
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
type FxSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Who executes an access: a fixed thread (static schedules, region
/// code), or a one-shot work item whose thread assignment is
/// non-deterministic (dynamic-family chunks, `single`, sections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exec {
    Thread(u32),
    Once(u32),
}

fn exec_label(e: Exec) -> String {
    match e {
        Exec::Thread(t) => format!("thread {t}"),
        Exec::Once(i) => format!("work item {i}"),
    }
}

const NO_LOCK: u32 = u32::MAX;

/// Ordering protection an access carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Prot {
    atomic: bool,
    reduce: bool,
    lock: u32,
}

fn covered(a: Prot, b: Prot) -> bool {
    (a.atomic && b.atomic) || (a.reduce && b.reduce) || (a.lock != NO_LOCK && a.lock == b.lock)
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    exec: Exec,
    prot: Prot,
    path: u32,
}

/// Compact per-(phase, element) access record: up to two distinct
/// (executor, protection) representatives per side. A third distinct
/// writer/reader sets the overflow flag; conflicts against the stored
/// representatives are still detected, conflicts purely among overflowed
/// slots are not (a deliberate memory bound).
#[derive(Debug, Clone, Copy, Default)]
struct ElemState {
    w: [Option<Slot>; 2],
    r: [Option<Slot>; 2],
}

fn insert_slot(slots: &mut [Option<Slot>; 2], s: Slot) {
    for o in slots.iter_mut() {
        match o {
            Some(e) if e.exec == s.exec && e.prot == s.prot => return,
            None => {
                *o = Some(s);
                return;
            }
            _ => {}
        }
    }
}

#[derive(Clone, Copy)]
struct Scope {
    exec: Exec,
    lock: u32,
    reduce: bool,
    /// The A-stream does not execute this code at all (skipped construct
    /// body under the configured skip model).
    skipped: bool,
    /// Inside a worksharing/construct body: no barriers possible here.
    ws: bool,
}

struct TState {
    tid: u64,
    ctx: SimpleCtx,
    phase: u32,
    barriers: u64,
}

enum AccessOp {
    Load,
    Store,
    Atomic,
}

/// Walk aborted: visit budget exhausted.
struct Stop;

pub(crate) struct WalkOutput {
    pub findings: Vec<Finding>,
    pub regions: Vec<RegionReport>,
    pub suppressed: u64,
    pub truncated: bool,
    pub visits: u64,
}

struct Walker<'p> {
    program: &'p Program,
    cfg: &'p AnalyzeConfig,
    spans: Vec<ArraySpan>,
    // Structural path interning: each id names one (parent, segment) pair.
    paths: Vec<(Option<u32>, PathSeg)>,
    path_index: FxMap<(Option<u32>, PathSeg), u32>,
    id_stack: Vec<u32>,
    // Findings.
    findings: Vec<Finding>,
    reported: FxSet<(&'static str, u32, u32)>,
    per_hazard: HashMap<&'static str, usize>,
    suppressed: u64,
    // Program-wide state.
    locks: HashMap<String, u32>,
    regions: Vec<RegionReport>,
    prevailing: Option<SlipstreamClause>,
    region_idx: u32,
    budget: u64,
    truncated: bool,
    once_ctr: u32,
    side_effects: u64,
    has_sync_memo: FxMap<u32, bool>,
    // Per-region scratch.
    elems: FxMap<(u32, u32, u64), ElemState>,
    skipped_stores: FxMap<(u32, u64), (u32, u32)>,
    phase_lines: Vec<FxSet<u64>>,
    barrier_counts: Vec<u64>,
    for_trips: FxMap<u32, Vec<u64>>,
    skip: SkipSet,
}

pub(crate) fn walk(program: &Program, cfg: &AnalyzeConfig) -> WalkOutput {
    let (spans, _) = layout_spans(
        program
            .arrays
            .iter()
            .map(|d| (d.shared, d.len, d.elem_bytes)),
        0,
        cfg.line_bytes,
    );
    let mut w = Walker {
        program,
        cfg,
        spans,
        paths: Vec::new(),
        path_index: FxMap::default(),
        id_stack: Vec::new(),
        findings: Vec::new(),
        reported: FxSet::default(),
        per_hazard: HashMap::new(),
        suppressed: 0,
        locks: HashMap::new(),
        regions: Vec::new(),
        prevailing: None,
        region_idx: 0,
        budget: cfg.visit_budget,
        truncated: false,
        once_ctr: 0,
        side_effects: 0,
        has_sync_memo: FxMap::default(),
        elems: FxMap::default(),
        skipped_stores: FxMap::default(),
        phase_lines: Vec::new(),
        barrier_counts: Vec::new(),
        for_trips: FxMap::default(),
        skip: SkipSet::default(),
    };
    w.top(&program.body, 0);
    WalkOutput {
        findings: w.findings,
        regions: w.regions,
        suppressed: w.suppressed,
        truncated: w.truncated,
        visits: cfg.visit_budget - w.budget,
    }
}

impl<'p> Walker<'p> {
    // ---- path interning -------------------------------------------------

    fn push_seg(&mut self, kind: &'static str, index: u32) {
        let parent = self.id_stack.last().copied();
        let key = (parent, PathSeg { kind, index });
        let id = match self.path_index.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.paths.len() as u32;
                self.paths.push(key);
                self.path_index.insert(key, id);
                id
            }
        };
        self.id_stack.push(id);
    }

    fn pop_seg(&mut self) {
        self.id_stack.pop();
    }

    fn cur_path(&self) -> u32 {
        *self
            .id_stack
            .last()
            .expect("path stack is non-empty inside a region")
    }

    fn node_path(&self, mut id: u32) -> NodePath {
        let mut segs = Vec::new();
        loop {
            let (parent, seg) = self.paths[id as usize];
            segs.push(seg);
            match parent {
                Some(p) => id = p,
                None => break,
            }
        }
        segs.reverse();
        NodePath::from_segs(&segs)
    }

    // ---- findings -------------------------------------------------------

    fn report(
        &mut self,
        hazard: Hazard,
        path: u32,
        related: Option<u32>,
        phase: Option<u32>,
        message: String,
    ) {
        // Dedup structurally: one finding per (hazard, unordered path
        // pair), regardless of phase or element, so loops don't flood the
        // report.
        let (ka, kb) = match related {
            Some(r) => (path.min(r), path.max(r)),
            None => (path, u32::MAX),
        };
        if !self.reported.insert((hazard.key(), ka, kb)) {
            return;
        }
        let cnt = self.per_hazard.entry(hazard.key()).or_insert(0);
        if *cnt >= self.cfg.max_reported_per_hazard {
            self.suppressed += 1;
            return;
        }
        *cnt += 1;
        let f = Finding {
            hazard,
            severity: hazard.default_severity(),
            path: self.node_path(path),
            related: related.map(|r| self.node_path(r)),
            region: Some(self.region_idx),
            phase,
            message,
        };
        self.findings.push(f);
    }

    // ---- bookkeeping ----------------------------------------------------

    fn spend(&mut self) -> Result<(), Stop> {
        if self.budget == 0 {
            self.truncated = true;
            return Err(Stop);
        }
        self.budget -= 1;
        Ok(())
    }

    fn fresh_once(&mut self) -> Exec {
        let e = Exec::Once(self.once_ctr);
        self.once_ctr += 1;
        e
    }

    fn fresh_ctx(&self, tid: u64) -> SimpleCtx {
        let mut c = SimpleCtx::new(
            self.program.num_vars as usize,
            tid as i64,
            self.cfg.num_threads as i64,
        );
        c.tables = self.program.tables.clone();
        c
    }

    fn lock_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.locks.get(name) {
            return id;
        }
        let id = self.locks.len() as u32;
        self.locks.insert(name.to_string(), id);
        id
    }

    fn ensure_phase(&mut self, phase: u32) {
        while self.phase_lines.len() <= phase as usize {
            self.phase_lines.push(FxSet::default());
        }
    }

    fn for_has_sync(&mut self, fid: u32, body: &Node) -> bool {
        if let Some(&b) = self.has_sync_memo.get(&fid) {
            return b;
        }
        let b = contains_sync(body);
        self.has_sync_memo.insert(fid, b);
        b
    }

    // ---- serial (top-level) walk ----------------------------------------

    fn top(&mut self, n: &Node, idx: u32) {
        match n {
            Node::Seq(v) => {
                for (k, c) in v.iter().enumerate() {
                    self.top(c, k as u32);
                }
            }
            Node::SlipstreamSet(c) => self.prevailing = Some(*c),
            Node::For { body, .. } => {
                // Region bodies start from fresh per-thread contexts, so
                // serial loop variables cannot reach them; scanning the
                // body once finds every syntactic region / directive.
                self.push_seg("for", idx);
                self.top(body, 0);
                self.pop_seg();
            }
            Node::Parallel { body, slipstream } => {
                self.push_seg("parallel", idx);
                let clause = slipstream.or(self.prevailing).unwrap_or(SlipstreamClause {
                    sync: self.cfg.default_sync,
                    tokens: self.cfg.default_tokens,
                });
                self.region(body, clause);
                self.pop_seg();
                self.region_idx += 1;
            }
            // Serial code runs on the master only; no cross-thread hazards.
            _ => {}
        }
    }

    // ---- region walk ----------------------------------------------------

    fn region(&mut self, body: &Node, clause: SlipstreamClause) {
        self.elems.clear();
        self.skipped_stores.clear();
        self.phase_lines.clear();
        self.phase_lines.push(FxSet::default());
        self.barrier_counts.clear();
        self.for_trips.clear();
        self.skip = SkipSet::default();
        let region_path = self.cur_path();

        let mut stopped = false;
        for tid in 0..self.cfg.num_threads {
            let mut t = TState {
                tid,
                ctx: self.fresh_ctx(tid),
                phase: 0,
                barriers: 0,
            };
            let sc = Scope {
                exec: Exec::Thread(tid as u32),
                lock: NO_LOCK,
                reduce: false,
                skipped: false,
                ws: false,
            };
            let depth = self.id_stack.len();
            if self.walk_node(body, &mut t, sc, 0).is_err() {
                self.id_stack.truncate(depth);
                stopped = true;
                break;
            }
            self.barrier_counts.push(t.barriers);
        }
        if !stopped {
            self.check_balance(region_path);
        }
        let rr = self.lead_pass(region_path, clause, stopped);
        self.regions.push(rr);
    }

    fn walk_node(&mut self, n: &Node, t: &mut TState, sc: Scope, idx: u32) -> Result<(), Stop> {
        if let Node::Seq(v) = n {
            for (k, c) in v.iter().enumerate() {
                self.walk_node(c, t, sc, k as u32)?;
            }
            return Ok(());
        }
        self.spend()?;
        self.push_seg(node_kind(n), idx);
        let r = self.walk_inner(n, t, sc);
        self.pop_seg();
        r
    }

    fn walk_inner(&mut self, n: &Node, t: &mut TState, sc: Scope) -> Result<(), Stop> {
        match n {
            Node::Seq(_) => unreachable!("Seq handled in walk_node"),
            Node::Compute(_) => {}
            Node::Load { array, index } => self.access(t, sc, *array, index, AccessOp::Load),
            Node::Store { array, index } => self.access(t, sc, *array, index, AccessOp::Store),
            Node::Atomic { array, index } => self.access(t, sc, *array, index, AccessOp::Atomic),
            Node::Flush => {
                if t.tid == 0 {
                    self.skip.flushes_dropped += 1;
                }
            }
            Node::Io { .. } => {
                if t.tid == 0 {
                    self.skip.io_skipped += 1;
                }
                if sc.skipped {
                    self.side_effects += 1;
                }
            }
            Node::For {
                var,
                begin,
                end,
                step,
                body,
            } => {
                let lo = begin.eval(&t.ctx);
                let hi = end.eval(&t.ctx);
                if !sc.ws {
                    let fid = self.cur_path();
                    if self.for_has_sync(fid, body) {
                        let trips = wsloop::trip_count(lo, hi, *step);
                        let nt = self.cfg.num_threads as usize;
                        let e = self.for_trips.entry(fid).or_insert_with(|| vec![0; nt]);
                        e[t.tid as usize] += trips;
                    }
                }
                let mut v = lo;
                while v < hi {
                    t.ctx.vars[var.0 as usize] = v;
                    self.walk_node(body, t, sc, 0)?;
                    v += *step as i64;
                }
            }
            Node::ParFor {
                sched,
                var,
                begin,
                end,
                body,
                reduction,
                nowait,
            } => {
                let lo = begin.eval(&t.ctx);
                let hi = end.eval(&t.ctx);
                let spec = sched.unwrap_or_else(ScheduleSpec::static_default);
                let nt = self.cfg.num_threads;
                match spec.kind {
                    ScheduleKind::Static => {
                        let wsc = Scope {
                            exec: Exec::Thread(t.tid as u32),
                            ws: true,
                            ..sc
                        };
                        match spec.chunk {
                            None => {
                                let c = wsloop::static_block(lo, hi, 1, nt, t.tid);
                                self.run_iters(c.lo, c.hi, *var, body, t, wsc)?;
                            }
                            Some(ch) => {
                                for c in wsloop::static_chunked(lo, hi, 1, nt, t.tid, ch.max(1)) {
                                    self.run_iters(c.lo, c.hi, *var, body, t, wsc)?;
                                }
                            }
                        }
                    }
                    // Dynamic and guided chunk *boundaries* are
                    // deterministic functions of the remaining count, only
                    // the chunk-to-thread assignment varies: label each
                    // chunk as its own work item and walk on the thread-0
                    // pass.
                    ScheduleKind::Dynamic => {
                        if t.tid == 0 {
                            let ch = spec.chunk.unwrap_or(1).max(1);
                            let mut rem = 0u64;
                            while let Some((c, next)) = wsloop::dynamic_next(lo, hi, 1, rem, ch) {
                                rem = next;
                                let wsc = Scope {
                                    exec: self.fresh_once(),
                                    ws: true,
                                    ..sc
                                };
                                self.run_iters(c.lo, c.hi, *var, body, t, wsc)?;
                            }
                        }
                    }
                    ScheduleKind::Guided => {
                        if t.tid == 0 {
                            let min = spec.chunk.unwrap_or(1).max(1);
                            let mut rem = 0u64;
                            while let Some((c, next)) = wsloop::guided_next(lo, hi, 1, rem, nt, min)
                            {
                                rem = next;
                                let wsc = Scope {
                                    exec: self.fresh_once(),
                                    ws: true,
                                    ..sc
                                };
                                self.run_iters(c.lo, c.hi, *var, body, t, wsc)?;
                            }
                        }
                    }
                    // Affinity steals chunks at unpredictable boundaries
                    // and Runtime defers the choice entirely; assume
                    // nothing and give every iteration its own work item.
                    ScheduleKind::Affinity | ScheduleKind::Runtime => {
                        if t.tid == 0 {
                            let mut v = lo;
                            while v < hi {
                                let wsc = Scope {
                                    exec: self.fresh_once(),
                                    ws: true,
                                    ..sc
                                };
                                self.run_iters(v, v + 1, *var, body, t, wsc)?;
                                v += 1;
                            }
                        }
                    }
                }
                if let Some(r) = reduction {
                    if t.tid == 0 {
                        self.skip.reduction_combines += 1;
                    }
                    // Each team member combines its private partial into
                    // the shared cell; the combines order via the
                    // reduction lock, and the A-stream skips them by
                    // design (its private partial stands in), so they are
                    // exempt from stale-store tracking.
                    let rsc = Scope {
                        exec: Exec::Thread(t.tid as u32),
                        reduce: true,
                        ws: true,
                        ..sc
                    };
                    self.access(t, rsc, r.target, &r.index, AccessOp::Store);
                }
                if !*nowait {
                    t.phase += 1;
                    t.barriers += 1;
                    self.ensure_phase(t.phase);
                }
            }
            Node::Barrier => {
                t.phase += 1;
                t.barriers += 1;
                self.ensure_phase(t.phase);
            }
            Node::Single(body) => {
                if t.tid == 0 {
                    self.skip.singles += 1;
                    let skipping = self.cfg.skip.skip_single;
                    let wsc = Scope {
                        exec: self.fresh_once(),
                        skipped: sc.skipped || skipping,
                        ws: true,
                        ..sc
                    };
                    let before = self.side_effects;
                    self.walk_node(body, t, wsc, 0)?;
                    if skipping && self.side_effects > before {
                        let p = self.cur_path();
                        let d = self.side_effects - before;
                        self.report(
                            Hazard::RStreamOnlySideEffect,
                            p,
                            None,
                            Some(t.phase),
                            format!(
                                "the A-stream skips this `single` body, which performs {d} shared update(s)/IO; those effects appear only once the R-stream executes it"
                            ),
                        );
                    }
                }
                t.phase += 1;
                t.barriers += 1;
                self.ensure_phase(t.phase);
            }
            Node::Master(body) => {
                if t.tid == 0 {
                    self.skip.masters += 1;
                    let executes = self.cfg.skip.execute_master;
                    let wsc = Scope {
                        skipped: sc.skipped || !executes,
                        ws: true,
                        ..sc
                    };
                    let before = self.side_effects;
                    self.walk_node(body, t, wsc, 0)?;
                    if !executes && self.side_effects > before {
                        let p = self.cur_path();
                        let d = self.side_effects - before;
                        self.report(
                            Hazard::RStreamOnlySideEffect,
                            p,
                            None,
                            Some(t.phase),
                            format!(
                                "the A-stream skips this `master` body, which performs {d} shared update(s)/IO; those effects appear only once the R-stream executes it"
                            ),
                        );
                    }
                }
            }
            Node::Critical { name, body } => {
                let lock = self.lock_id(name);
                if t.tid == 0 && !sc.ws {
                    self.skip.criticals += 1;
                }
                let skipping = self.cfg.skip.skip_critical;
                let wsc = Scope {
                    lock,
                    skipped: sc.skipped || skipping,
                    ws: true,
                    ..sc
                };
                let before = self.side_effects;
                self.walk_node(body, t, wsc, 0)?;
                if skipping && self.side_effects > before {
                    let p = self.cur_path();
                    let d = self.side_effects - before;
                    self.report(
                        Hazard::RStreamOnlySideEffect,
                        p,
                        None,
                        Some(t.phase),
                        format!(
                            "the A-stream skips this `critical` body, which performs {d} shared update(s)/IO; those effects appear only once the R-stream executes it"
                        ),
                    );
                }
            }
            Node::Sections(secs) => {
                if t.tid == 0 {
                    for (k, s) in secs.iter().enumerate() {
                        self.skip.sections += 1;
                        let wsc = Scope {
                            exec: self.fresh_once(),
                            ws: true,
                            ..sc
                        };
                        self.walk_node(s, t, wsc, k as u32)?;
                    }
                }
                t.phase += 1;
                t.barriers += 1;
                self.ensure_phase(t.phase);
            }
            // validate() rejects these in region context; analyze() only
            // walks validated programs.
            Node::Parallel { .. } | Node::SlipstreamSet(_) => {}
        }
        Ok(())
    }

    fn run_iters(
        &mut self,
        lo: i64,
        hi: i64,
        var: VarId,
        body: &Node,
        t: &mut TState,
        sc: Scope,
    ) -> Result<(), Stop> {
        let mut v = lo;
        while v < hi {
            t.ctx.vars[var.0 as usize] = v;
            self.walk_node(body, t, sc, 0)?;
            v += 1;
        }
        Ok(())
    }

    // ---- access recording ------------------------------------------------

    fn access(&mut self, t: &mut TState, sc: Scope, array: ArrayId, index: &Expr, op: AccessOp) {
        let span = self.spans[array.0 as usize];
        if !span.shared || span.len == 0 {
            return;
        }
        let raw = index.eval(&t.ctx);
        let elem = raw.clamp(0, span.len as i64 - 1) as u64;
        self.ensure_phase(t.phase);
        self.phase_lines[t.phase as usize].insert(span.element_line(self.cfg.line_bytes, raw));
        let path = self.cur_path();
        let atomic = matches!(op, AccessOp::Atomic);
        let write = !matches!(op, AccessOp::Load);
        let prot = Prot {
            atomic,
            reduce: sc.reduce,
            lock: sc.lock,
        };

        // Skip-set census + stale-store tracking.
        if write && !sc.reduce {
            let a_skips = sc.skipped
                || (!atomic && !self.cfg.skip.convert_shared_stores)
                || (atomic && !self.cfg.skip.execute_atomic);
            if a_skips {
                self.skip.shared_stores_skipped += 1;
                self.skipped_stores
                    .entry((array.0, elem))
                    .or_insert((t.phase, path));
            } else if atomic {
                self.skip.atomics_executed += 1;
            } else {
                self.skip.shared_stores_converted += 1;
            }
            if sc.skipped {
                self.side_effects += 1;
            }
        }
        if !write {
            if let Some(&(sp, spath)) = self.skipped_stores.get(&(array.0, elem)) {
                if sp < t.phase {
                    let name = &self.program.arrays[array.0 as usize].name;
                    let msg = format!(
                        "the A-stream skips the store to {name}[{elem}] (phase {sp}) but the element is read here in phase {}; the A-stream computes with stale data until recovery",
                        t.phase
                    );
                    self.report(
                        Hazard::SkippedStoreStale,
                        spath,
                        Some(path),
                        Some(t.phase),
                        msg,
                    );
                }
            }
        }

        // Conflict detection.
        let key = (t.phase, array.0, elem);
        if !self.elems.contains_key(&key) {
            if self.elems.len() >= self.cfg.max_state_entries {
                self.truncated = true;
                return;
            }
            self.elems.insert(key, ElemState::default());
        }
        let entry = self.elems.get_mut(&key).expect("just inserted");
        let slot = Slot {
            exec: sc.exec,
            prot,
            path,
        };
        let mut conflicts: Vec<(u32, Exec, Hazard)> = Vec::new();
        if write {
            for s in entry.w.iter().flatten() {
                if s.exec != sc.exec && !covered(s.prot, prot) {
                    conflicts.push((s.path, s.exec, Hazard::RaceWriteWrite));
                }
            }
            for s in entry.r.iter().flatten() {
                if s.exec != sc.exec && !covered(s.prot, prot) {
                    conflicts.push((s.path, s.exec, Hazard::RaceReadWrite));
                }
            }
            insert_slot(&mut entry.w, slot);
        } else {
            for s in entry.w.iter().flatten() {
                if s.exec != sc.exec && !covered(s.prot, prot) {
                    conflicts.push((s.path, s.exec, Hazard::RaceReadWrite));
                }
            }
            insert_slot(&mut entry.r, slot);
        }
        for (opath, oexec, hz) in conflicts {
            let name = self.program.arrays[array.0 as usize].name.clone();
            let msg = match hz {
                Hazard::RaceWriteWrite => format!(
                    "{} and {} both store to {name}[{elem}] in barrier phase {} with no ordering (not atomic, not in the same critical section, not a reduction)",
                    exec_label(sc.exec),
                    exec_label(oexec),
                    t.phase
                ),
                _ => format!(
                    "unordered read/write of {name}[{elem}] by {} and {} in barrier phase {}",
                    exec_label(sc.exec),
                    exec_label(oexec),
                    t.phase
                ),
            };
            self.report(hz, path, Some(opath), Some(t.phase), msg);
        }
    }

    // ---- post-region passes ----------------------------------------------

    fn check_balance(&mut self, region_path: u32) {
        let mut flagged = false;
        let trips: Vec<(u32, Vec<u64>)> = self.for_trips.drain().collect();
        for (fid, v) in trips {
            let mn = v.iter().copied().min().unwrap_or(0);
            let mx = v.iter().copied().max().unwrap_or(0);
            if mn != mx {
                flagged = true;
                self.report(
                    Hazard::UnbalancedSync,
                    fid,
                    None,
                    None,
                    format!(
                        "loop trip count varies across threads (min {mn}, max {mx}) and the body contains synchronization; threads would execute different barrier sequences, deadlocking the team and desynchronizing the slipstream token protocol"
                    ),
                );
            }
        }
        if !flagged && !self.barrier_counts.is_empty() {
            let mn = *self.barrier_counts.iter().min().expect("non-empty");
            let mx = *self.barrier_counts.iter().max().expect("non-empty");
            if mn != mx {
                self.report(
                    Hazard::UnbalancedSync,
                    region_path,
                    None,
                    None,
                    format!(
                        "threads pass different numbers of barriers in this region (min {mn}, max {mx})"
                    ),
                );
            }
        }
    }

    fn lead_pass(
        &mut self,
        region_path: u32,
        clause: SlipstreamClause,
        stopped: bool,
    ) -> RegionReport {
        let resolved = match clause.sync {
            SlipSyncType::RuntimeSync => SlipstreamClause {
                sync: self.cfg.default_sync,
                tokens: self.cfg.default_tokens,
            },
            _ => clause,
        };
        let (label, window): (&'static str, u32) = match resolved.sync {
            SlipSyncType::GlobalSync => ("global", resolved.tokens as u32 + 1),
            SlipSyncType::LocalSync => ("local", resolved.tokens as u32 + 2),
            SlipSyncType::None => ("off", 0),
            SlipSyncType::RuntimeSync => ("global", resolved.tokens as u32 + 1),
        };
        let max_phase_lines = self
            .phase_lines
            .iter()
            .map(|s| s.len() as u64)
            .max()
            .unwrap_or(0);
        let mut max_window_lines = max_phase_lines;
        if window > 1 && !stopped {
            for i in 0..self.phase_lines.len() {
                let hi = (i + window as usize).min(self.phase_lines.len());
                let mut u = self.phase_lines[i].clone();
                for s in &self.phase_lines[i + 1..hi] {
                    u.extend(s.iter().copied());
                }
                max_window_lines = max_window_lines.max(u.len() as u64);
            }
        }
        if window > 0 && !stopped && max_window_lines > self.cfg.l2_lines {
            self.report(
                Hazard::StalePrefetch,
                region_path,
                None,
                None,
                format!(
                    "the A-stream may run up to {window} barrier phase(s) ahead (sync={label}, tokens={}); the worst {window}-phase shared footprint is {max_window_lines} lines but the L2 holds {} — prefetched lines risk eviction before the R-stream uses them (consider fewer tokens or global sync)",
                    resolved.tokens, self.cfg.l2_lines
                ),
            );
        }
        RegionReport {
            path: self.node_path(region_path),
            phases: self.phase_lines.len() as u32,
            sync: label,
            tokens: resolved.tokens,
            lead_phases: window,
            max_phase_lines,
            max_window_lines,
            skips: std::mem::take(&mut self.skip),
        }
    }
}

fn contains_sync(n: &Node) -> bool {
    match n {
        Node::Barrier | Node::ParFor { .. } | Node::Single(_) | Node::Sections(_) => true,
        Node::Seq(v) => v.iter().any(contains_sync),
        Node::For { body, .. } => contains_sync(body),
        _ => false,
    }
}
