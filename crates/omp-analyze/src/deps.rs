//! Closed-form access-index sets and dependence tests.
//!
//! The certification pass (see [`crate::cert`]) summarizes what every
//! executor reads and writes per (barrier phase, array) as an
//! [`IndexSet`]: an arithmetic progression in closed form when the index
//! expression is affine in the worksharing variable (computed with the
//! engine's own `omp_ir::wsloop` chunk arithmetic), an explicit point set
//! when table lookups or nested loops make the indices irregular, or an
//! interval over-approximation when the schedule is dynamic-family or an
//! enumeration budget is exceeded.
//!
//! Two sets are then compared with the classic dependence tests:
//!
//! * **GCD test** — progressions `{b1 + i·s1}` and `{b2 + j·s2}` can only
//!   meet when `gcd(s1, s2)` divides `b2 − b1`.
//! * **Banerjee-style bounds test** — sets whose `[min, max]` ranges do
//!   not overlap are independent.
//! * **Exact CRT refinement** — when both tests pass for two
//!   progressions, the smallest common element is computed with the
//!   extended Euclidean algorithm and checked against both ranges, so
//!   affine/affine queries are *exact*, not just conservative.
//!
//! Interval sets answer conservatively (overlap ⇒ may intersect), which
//! can only demote a certificate, never wrongly license one.

use omp_ir::expr::{BinOp, Expr, SimpleCtx, VarId};

/// A set of element indices one executor touches in one array during one
/// barrier phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexSet {
    /// No elements.
    Empty,
    /// Arithmetic progression `{base + i·stride | 0 ≤ i < count}` with
    /// `stride ≥ 1` (a single element is `count == 1`).
    Affine {
        /// First element.
        base: i64,
        /// Distance between consecutive elements (≥ 1 when `count > 1`).
        stride: i64,
        /// Number of elements (≥ 1).
        count: u64,
    },
    /// Explicit sorted, deduplicated element list.
    Points(Vec<i64>),
    /// Over-approximation: every element in `[lo, hi]` may be touched.
    Interval {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl IndexSet {
    /// Build a progression, normalizing degenerate shapes.
    pub fn affine(base: i64, stride: i64, count: u64) -> IndexSet {
        if count == 0 {
            IndexSet::Empty
        } else if count == 1 || stride == 0 {
            IndexSet::Affine {
                base,
                stride: 1,
                count: 1,
            }
        } else if stride < 0 {
            // Normalize to ascending order.
            let span = (stride as i128) * (count as i128 - 1);
            IndexSet::Affine {
                base: (base as i128 + span) as i64,
                stride: -stride,
                count,
            }
        } else {
            IndexSet::Affine {
                base,
                stride,
                count,
            }
        }
    }

    /// Build from an unsorted point list.
    pub fn points(mut v: Vec<i64>) -> IndexSet {
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            IndexSet::Empty
        } else {
            IndexSet::Points(v)
        }
    }

    /// Smallest element, if any.
    pub fn min(&self) -> Option<i64> {
        match self {
            IndexSet::Empty => None,
            IndexSet::Affine { base, .. } => Some(*base),
            IndexSet::Points(v) => v.first().copied(),
            IndexSet::Interval { lo, .. } => Some(*lo),
        }
    }

    /// Largest element, if any.
    pub fn max(&self) -> Option<i64> {
        match self {
            IndexSet::Empty => None,
            IndexSet::Affine {
                base,
                stride,
                count,
            } => Some((*base as i128 + *stride as i128 * (*count as i128 - 1)) as i64),
            IndexSet::Points(v) => v.last().copied(),
            IndexSet::Interval { hi, .. } => Some(*hi),
        }
    }

    /// Number of elements (interval sets count every element in range).
    pub fn len(&self) -> u64 {
        match self {
            IndexSet::Empty => 0,
            IndexSet::Affine { count, .. } => *count,
            IndexSet::Points(v) => v.len() as u64,
            IndexSet::Interval { lo, hi } => (*hi as i128 - *lo as i128 + 1).max(0) as u64,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the set is exact (not an interval over-approximation).
    pub fn is_exact(&self) -> bool {
        !matches!(self, IndexSet::Interval { .. })
    }

    /// Membership test (exact for exact sets, conservative for intervals).
    pub fn contains(&self, x: i64) -> bool {
        match self {
            IndexSet::Empty => false,
            IndexSet::Affine {
                base,
                stride,
                count,
            } => {
                let d = x as i128 - *base as i128;
                d >= 0 && d % (*stride as i128) == 0 && (d / *stride as i128) < *count as i128
            }
            IndexSet::Points(v) => v.binary_search(&x).is_ok(),
            IndexSet::Interval { lo, hi } => (*lo..=*hi).contains(&x),
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclid: returns `(g, x)` with `g = gcd(a, b)` and
/// `a·x ≡ g (mod b)` (for `a, b > 0`).
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Exact intersection test for two arithmetic progressions: solves
/// `b1 + i·s1 = b2 + j·s2` with the GCD test, then the CRT, then checks
/// the smallest solution against both ranges (Banerjee-style bounds).
fn affine_affine(b1: i64, s1: i64, n1: u64, b2: i64, s2: i64, n2: u64) -> bool {
    let (b1, s1, n1) = (b1 as i128, s1 as i128, n1 as i128);
    let (b2, s2, n2) = (b2 as i128, s2 as i128, n2 as i128);
    let hi1 = b1 + s1 * (n1 - 1);
    let hi2 = b2 + s2 * (n2 - 1);
    // Bounds (Banerjee) test: disjoint ranges cannot meet.
    let lo = b1.max(b2);
    let hi = hi1.min(hi2);
    if lo > hi {
        return false;
    }
    // GCD test: gcd(s1, s2) must divide the base difference.
    let g = gcd(s1, s2);
    if (b2 - b1) % g != 0 {
        return false;
    }
    // Exact refinement: x ≡ b1 (mod s1), x ≡ b2 (mod s2) has solutions
    // x ≡ x0 (mod l), l = lcm(s1, s2). Find the smallest x ≥ lo and check
    // x ≤ hi.
    let (_, inv, _) = egcd(s1 / g, s2 / g);
    let l = s1 / g * s2;
    // x0 = b1 + s1 * ((b2 - b1) / g * inv mod (s2/g))
    let m = s2 / g;
    let t = ((b2 - b1) / g % m * (inv % m)) % m;
    let t = (t + m) % m;
    let x0 = b1 + s1 * t;
    // Smallest solution ≥ lo.
    let x = if x0 >= lo {
        x0 - (x0 - lo) / l * l
    } else {
        x0 + (lo - x0 + l - 1) / l * l
    };
    x <= hi
}

fn points_points(a: &[i64], b: &[i64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// May two index sets share an element? Exact for exact-set pairs,
/// conservative (range overlap) when either side is an interval.
pub fn may_intersect(a: &IndexSet, b: &IndexSet) -> bool {
    use IndexSet::*;
    match (a, b) {
        (Empty, _) | (_, Empty) => false,
        (
            Affine {
                base: b1,
                stride: s1,
                count: n1,
            },
            Affine {
                base: b2,
                stride: s2,
                count: n2,
            },
        ) => affine_affine(*b1, *s1, *n1, *b2, *s2, *n2),
        (Affine { .. }, Points(v)) | (Points(v), Affine { .. }) => {
            let aff = if matches!(a, Affine { .. }) { a } else { b };
            v.iter().any(|&x| aff.contains(x))
        }
        (Points(x), Points(y)) => points_points(x, y),
        // Interval on either side: bounds test only.
        _ => {
            let (Some(lo1), Some(hi1)) = (a.min(), a.max()) else {
                return false;
            };
            let (Some(lo2), Some(hi2)) = (b.min(), b.max()) else {
                return false;
            };
            lo1.max(lo2) <= hi1.min(hi2)
        }
    }
}

/// Decompose `e` as `a·var + b` where `a` and `b` are independent of
/// `var` (they may read other context state, which `ctx` supplies).
/// Returns `None` when `e` is not affine in `var` — a multiplication of
/// two var-dependent factors, or `var` under div/mod/min/max/table.
/// Wrapping add/sub/mul distribute over the IR's wrapping evaluation
/// semantics, so the decomposition is exact where it succeeds.
pub fn linear_in(e: &Expr, var: VarId, ctx: &SimpleCtx) -> Option<(i64, i64)> {
    if !e.references_var(var) {
        return Some((0, e.eval(ctx)));
    }
    match e {
        Expr::Var(w) if *w == var => Some((1, 0)),
        Expr::Bin(op, x, y) => {
            let (a1, b1) = linear_in(x, var, ctx)?;
            let (a2, b2) = linear_in(y, var, ctx)?;
            match op {
                BinOp::Add => Some((a1.wrapping_add(a2), b1.wrapping_add(b2))),
                BinOp::Sub => Some((a1.wrapping_sub(a2), b1.wrapping_sub(b2))),
                BinOp::Mul => {
                    // Only const × linear stays linear.
                    if a1 == 0 {
                        Some((b1.wrapping_mul(a2), b1.wrapping_mul(b2)))
                    } else if a2 == 0 {
                        Some((a1.wrapping_mul(b2), b1.wrapping_mul(b2)))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Accumulates one executor's indices into one array during one phase.
/// Concrete points accumulate until `cap` is hit, after which the
/// builder degrades to a min/max interval (`exact` turns false); affine
/// closed forms are stored as-is and never count against the cap.
#[derive(Debug)]
pub struct SetBuilder {
    sets: Vec<IndexSet>,
    points: Vec<i64>,
    range: Option<(i64, i64)>,
    cap: usize,
    exact: bool,
}

impl SetBuilder {
    /// New builder with a concrete-point budget.
    pub fn new(cap: usize) -> SetBuilder {
        SetBuilder {
            sets: Vec::new(),
            points: Vec::new(),
            range: None,
            cap,
            exact: true,
        }
    }

    /// Record one concrete element index.
    pub fn add_point(&mut self, x: i64) {
        if self.exact && self.points.len() < self.cap {
            self.points.push(x);
        } else {
            self.degrade();
            let (lo, hi) = self.range.get_or_insert((x, x));
            *lo = (*lo).min(x);
            *hi = (*hi).max(x);
        }
    }

    /// Record a whole closed-form set.
    pub fn add_set(&mut self, s: IndexSet) {
        if s.is_empty() {
            return;
        }
        if !s.is_exact() {
            self.exact = false;
        }
        self.sets.push(s);
    }

    fn degrade(&mut self) {
        if self.exact {
            self.exact = false;
            let mut range = self.range;
            for &x in &self.points {
                let (lo, hi) = range.get_or_insert((x, x));
                *lo = (*lo).min(x);
                *hi = (*hi).max(x);
            }
            self.points.clear();
            self.range = range;
        }
    }

    /// True while no concrete-point overflow has occurred and no interval
    /// set was added.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Finish: the list of disjoint-testable sets this executor produced.
    pub fn finish(mut self) -> (Vec<IndexSet>, bool) {
        if !self.points.is_empty() {
            let pts = std::mem::take(&mut self.points);
            self.sets.push(IndexSet::points(pts));
        }
        if let Some((lo, hi)) = self.range {
            self.sets.push(IndexSet::Interval { lo, hi });
        }
        (self.sets, self.exact)
    }
}

/// Any-pair intersection test over two set lists.
pub fn lists_intersect(a: &[IndexSet], b: &[IndexSet]) -> bool {
    a.iter().any(|x| b.iter().any(|y| may_intersect(x, y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::expr::Expr;

    #[test]
    fn affine_normalizes() {
        assert_eq!(IndexSet::affine(0, 4, 0), IndexSet::Empty);
        assert_eq!(
            IndexSet::affine(7, -3, 3),
            IndexSet::Affine {
                base: 1,
                stride: 3,
                count: 3
            }
        );
        let single = IndexSet::affine(5, 0, 1);
        assert_eq!(single.min(), Some(5));
        assert_eq!(single.max(), Some(5));
    }

    #[test]
    fn gcd_test_separates_interleaved_strides() {
        // Evens vs odds: gcd(2,2)=2 does not divide 1.
        let evens = IndexSet::affine(0, 2, 100);
        let odds = IndexSet::affine(1, 2, 100);
        assert!(!may_intersect(&evens, &odds));
        assert!(may_intersect(&evens, &IndexSet::affine(0, 2, 100)));
    }

    #[test]
    fn bounds_test_separates_disjoint_blocks() {
        // Two static chunks of the same loop: [0,16) and [16,32).
        let a = IndexSet::affine(0, 1, 16);
        let b = IndexSet::affine(16, 1, 16);
        assert!(!may_intersect(&a, &b));
        assert!(may_intersect(&a, &IndexSet::affine(15, 1, 16)));
    }

    #[test]
    fn crt_refinement_is_exact_where_gcd_and_bounds_pass() {
        // {0,6,12,...} vs {3,7,11,...}: gcd(6,4)=2 divides 3-0=3? No → no
        // intersection via GCD. Use strides 6 and 4, bases 0 and 2:
        // gcd=2 divides 2, ranges overlap, smallest common is 6·x ≡ 2
        // (mod 4) → x=1 → 6? 6 mod 4 = 2 ✓ so 6 is common.
        let a = IndexSet::affine(0, 6, 10);
        let b = IndexSet::affine(2, 4, 10);
        assert!(may_intersect(&a, &b));
        // Same congruences but ranges trimmed so the first common element
        // (6) is excluded from `b`'s range: b covers only {2} .. no wait,
        // count 1 means {2}; 2 is not a multiple of 6.
        let b_short = IndexSet::affine(2, 4, 1);
        assert!(!may_intersect(&a, &b_short));
    }

    #[test]
    fn points_and_intervals() {
        let p1 = IndexSet::points(vec![3, 9, 1]);
        let p2 = IndexSet::points(vec![2, 9]);
        assert!(may_intersect(&p1, &p2));
        assert!(!may_intersect(&p1, &IndexSet::points(vec![0, 2, 4])));
        let aff = IndexSet::affine(0, 3, 4); // {0,3,6,9}
        assert!(may_intersect(&aff, &p1));
        assert!(!may_intersect(&aff, &IndexSet::points(vec![1, 2, 4])));
        let iv = IndexSet::Interval { lo: 10, hi: 20 };
        assert!(!may_intersect(&iv, &aff));
        assert!(may_intersect(&iv, &IndexSet::affine(0, 5, 3))); // max 10
        assert!(!iv.is_exact());
    }

    #[test]
    fn linear_decomposition() {
        let v = VarId(0);
        let ctx = SimpleCtx::new(2, 3, 8);
        // 4*i + 2
        let e = Expr::v(v) * 4 + 2;
        assert_eq!(linear_in(&e, v, &ctx), Some((4, 2)));
        // tid-dependent offset folds through the context.
        let e2 = Expr::v(v) + Expr::ThreadId;
        assert_eq!(linear_in(&e2, v, &ctx), Some((1, 3)));
        // i*i is not linear.
        let e3 = Expr::v(v) * Expr::v(v);
        assert_eq!(linear_in(&e3, v, &ctx), None);
        // i under mod is not linear.
        let e4 = Expr::v(v).rem(Expr::c(4));
        assert_eq!(linear_in(&e4, v, &ctx), None);
        // independent of var.
        let e5 = Expr::NumThreads * 2;
        assert_eq!(linear_in(&e5, v, &ctx), Some((0, 16)));
    }

    #[test]
    fn set_builder_degrades_to_interval_past_cap() {
        let mut b = SetBuilder::new(4);
        for x in [5, 1, 9, 3] {
            b.add_point(x);
        }
        assert!(b.is_exact());
        b.add_point(100);
        assert!(!b.is_exact());
        let (sets, exact) = b.finish();
        assert!(!exact);
        assert_eq!(sets, vec![IndexSet::Interval { lo: 1, hi: 100 }]);
    }

    #[test]
    fn set_builder_exact_finish() {
        let mut b = SetBuilder::new(16);
        b.add_point(3);
        b.add_point(1);
        b.add_point(3);
        b.add_set(IndexSet::affine(10, 2, 3));
        let (sets, exact) = b.finish();
        assert!(exact);
        assert!(sets.contains(&IndexSet::Points(vec![1, 3])));
        assert!(lists_intersect(&sets, &[IndexSet::points(vec![12])]));
        assert!(!lists_intersect(&sets, &[IndexSet::points(vec![13])]));
    }
}
