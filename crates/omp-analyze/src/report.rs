//! Analysis reports: per-region summaries plus the full finding list,
//! rendered as human text or machine JSON (hand-rolled; the workspace is
//! dependency-free).

use crate::cert::{PhaseCertificate, PhaseClass, ReplayLoop};
use crate::finding::{Finding, Severity};
use omp_ir::NodePath;
use std::fmt::Write as _;

/// Census of what the A-stream skips/executes in a region under the
/// configured [`SkipModel`](crate::SkipModel). Counts are dynamic events
/// over the analyzed walk (worksharing bodies are walked once per chunk,
/// constructs once per encountering thread-0 visit), so they are a
/// census of the modeled execution, not an exact runtime count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkipSet {
    /// `single` constructs encountered (A-stream skips them under the
    /// paper policy).
    pub singles: u64,
    /// `master` constructs encountered (A-stream executes them under the
    /// paper policy).
    pub masters: u64,
    /// `critical` sections encountered (A-stream skips them under the
    /// paper policy).
    pub criticals: u64,
    /// `sections` children encountered (A-stream executes them in sync
    /// with the R-stream).
    pub sections: u64,
    /// Reduction combines at worksharing-loop ends (A-stream skips the
    /// shared combine).
    pub reduction_combines: u64,
    /// Shared stores the A-stream converts to read-exclusive prefetches.
    pub shared_stores_converted: u64,
    /// Shared stores the A-stream skips outright (inside skipped
    /// constructs, or all of them when conversion is disabled).
    pub shared_stores_skipped: u64,
    /// Atomic updates the A-stream executes.
    pub atomics_executed: u64,
    /// `flush` directives dropped by the A-stream.
    pub flushes_dropped: u64,
    /// I/O operations never performed by the A-stream.
    pub io_skipped: u64,
}

/// Per-parallel-region analysis summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReport {
    /// Path of the `parallel` node.
    pub path: NodePath,
    /// Barrier phases the region body spans (implicit and explicit).
    pub phases: u32,
    /// Resolved slipstream sync type label: `"global"`, `"local"`, or
    /// `"off"`.
    pub sync: &'static str,
    /// Resolved initial token count.
    pub tokens: u64,
    /// Static bound on the A-stream lead, in barrier phases: the number
    /// of phases whose working sets can be co-resident (0 when slipstream
    /// is off).
    pub lead_phases: u32,
    /// Largest single-phase shared footprint, in cache lines.
    pub max_phase_lines: u64,
    /// Largest footprint of any `lead_phases`-wide phase window, in cache
    /// lines — what must fit in L2 for prefetches to survive.
    pub max_window_lines: u64,
    /// A-stream skip-set census for the region.
    pub skips: SkipSet,
}

/// Expected slipstream-vs-single equivalence class of a program, decided
/// from its analysis report. This is the contract the differential
/// fuzzer checks the engine against:
///
/// * [`Exact`](Equivalence::Exact) — the analysis completed clean. The
///   R-stream must match the single-mode oracle's op totals *and* the
///   run must need no divergence recoveries or pair demotions: slipstream
///   is pure speedup here.
/// * [`ConvergeOnly`](Equivalence::ConvergeOnly) — warn/info findings
///   (stale-prefetch risk, lead-bound pressure, skipped side effects) or
///   a truncated walk. The A-stream may wander and recover, but the
///   architecturally-exact R-stream must still match the oracle.
/// * [`Deny`](Equivalence::Deny) — deny findings (data races, unbalanced
///   synchronization, invalid IR). The program has no defined semantics;
///   a [`GateMode::Deny`](crate::GateMode) gate must refuse to run it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Equivalence {
    /// Bit-equivalent stats and a recovery-free run are required.
    Exact,
    /// Only final R-stream totals are required to match the oracle.
    ConvergeOnly,
    /// The gate must refuse to run the program.
    Deny,
}

impl Equivalence {
    /// Stable lowercase label (artifact JSON, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Equivalence::Exact => "exact",
            Equivalence::ConvergeOnly => "converge-only",
            Equivalence::Deny => "deny",
        }
    }

    /// Parse a [`label`](Self::label) back.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(Equivalence::Exact),
            "converge-only" => Some(Equivalence::ConvergeOnly),
            "deny" => Some(Equivalence::Deny),
            _ => None,
        }
    }
}

impl std::fmt::Display for Equivalence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The full result of [`analyze`](crate::analyze) on one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Program name.
    pub program: String,
    /// Team size the analysis modeled.
    pub num_threads: u64,
    /// L2 capacity (lines) used for the lead-bound check.
    pub l2_lines: u64,
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// One entry per parallel region, in program order.
    pub regions: Vec<RegionReport>,
    /// Phase-purity certificates, one per barrier phase per region (see
    /// [`crate::cert`]).
    pub certificates: Vec<PhaseCertificate>,
    /// Serial loops licensed for memoized phase replay.
    pub replay_loops: Vec<ReplayLoop>,
    /// Findings dropped by the per-hazard report cap.
    pub suppressed: u64,
    /// True when the walk hit its visit or state budget; the analysis is
    /// then incomplete (but never reports spurious findings).
    pub truncated: bool,
    /// IR node visits the walk performed.
    pub visits: u64,
}

impl AnalysisReport {
    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Deny-severity finding count.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Warn-severity finding count.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Info-severity finding count.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    /// True when the analysis completed with no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && !self.truncated
    }

    /// The expected equivalence class this report implies (see
    /// [`Equivalence`]). Deny findings dominate; any other finding or a
    /// truncated walk demotes the program to converge-only; a clean
    /// report promises exact equivalence.
    pub fn equivalence(&self) -> Equivalence {
        if self.deny_count() > 0 {
            Equivalence::Deny
        } else if self.is_clean() {
            Equivalence::Exact
        } else {
            Equivalence::ConvergeOnly
        }
    }

    /// Highest severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Count certificates of one class.
    pub fn cert_count(&self, class: PhaseClass) -> usize {
        self.certificates
            .iter()
            .filter(|c| c.class == class)
            .count()
    }

    /// Multi-line human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "analyze {}: {} finding(s) ({} deny, {} warn, {} info), {} region(s), {} visits{}{}",
            self.program,
            self.findings.len(),
            self.deny_count(),
            self.warn_count(),
            self.info_count(),
            self.regions.len(),
            self.visits,
            if self.suppressed > 0 {
                format!(", {} suppressed", self.suppressed)
            } else {
                String::new()
            },
            if self.truncated {
                " [TRUNCATED: budget exhausted, analysis incomplete]"
            } else {
                ""
            },
        );
        for f in &self.findings {
            let _ = writeln!(s, "  {f}");
        }
        for r in &self.regions {
            let _ = writeln!(
                s,
                "  region {}: {} phase(s), sync={} tokens={} lead<={} phase(s), footprint max {} lines/phase, {} lines/window (l2 {} lines)",
                r.path,
                r.phases,
                r.sync,
                r.tokens,
                r.lead_phases,
                r.max_phase_lines,
                r.max_window_lines,
                self.l2_lines,
            );
            let k = &r.skips;
            let _ = writeln!(
                s,
                "    a-stream skip set: {} store(s) converted, {} skipped, {} reduction combine(s), {} single(s), {} critical(s), {} master(s), {} section(s), {} atomic(s) executed, {} flush(es), {} io",
                k.shared_stores_converted,
                k.shared_stores_skipped,
                k.reduction_combines,
                k.singles,
                k.criticals,
                k.masters,
                k.sections,
                k.atomics_executed,
                k.flushes_dropped,
                k.io_skipped,
            );
        }
        if !self.certificates.is_empty() {
            let _ = writeln!(
                s,
                "  certificates: {} pure, {} replay-safe, {} opaque; {} replay loop(s) licensed",
                self.cert_count(PhaseClass::Pure),
                self.cert_count(PhaseClass::ReplaySafe),
                self.cert_count(PhaseClass::Opaque),
                self.replay_loops.len(),
            );
            for c in &self.certificates {
                let _ = writeln!(
                    s,
                    "    region {} phase {} @ {}: {}{}{}",
                    c.region,
                    c.phase,
                    c.path,
                    c.class,
                    if c.exact { "" } else { " (approx)" },
                    if c.reasons.is_empty() {
                        String::new()
                    } else {
                        format!(" — {}", c.reasons.join("; "))
                    },
                );
            }
            for l in &self.replay_loops {
                let _ = writeln!(
                    s,
                    "    replay loop region {} @ {}: var v{} in {}..{} step {} ({} iter(s), {} phase(s)/iter, guard {:016x})",
                    l.region,
                    l.path,
                    l.var,
                    l.begin,
                    l.end,
                    l.step,
                    l.trip_count,
                    l.phases_per_iteration,
                    l.guard_checksum,
                );
            }
        }
        s
    }

    /// Machine-readable JSON object (single line).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(
            s,
            "\"program\":\"{}\",\"num_threads\":{},\"l2_lines\":{},\"clean\":{},\"deny\":{},\"warn\":{},\"info\":{},\"suppressed\":{},\"truncated\":{},\"visits\":{}",
            json_escape(&self.program),
            self.num_threads,
            self.l2_lines,
            self.is_clean(),
            self.deny_count(),
            self.warn_count(),
            self.info_count(),
            self.suppressed,
            self.truncated,
            self.visits,
        );
        s.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"hazard\":\"{}\",\"severity\":\"{}\",\"fingerprint\":\"{:016x}\",\"path\":\"{}\"",
                f.hazard.key(),
                f.severity.as_str(),
                f.fingerprint(),
                json_escape(&f.path.to_string()),
            );
            if let Some(r) = &f.related {
                let _ = write!(s, ",\"related\":\"{}\"", json_escape(&r.to_string()));
            }
            if let Some(reg) = f.region {
                let _ = write!(s, ",\"region\":{reg}");
            }
            if let Some(p) = f.phase {
                let _ = write!(s, ",\"phase\":{p}");
            }
            let _ = write!(s, ",\"message\":\"{}\"}}", json_escape(&f.message));
        }
        s.push_str("],\"regions\":[");
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let k = &r.skips;
            let _ = write!(
                s,
                "{{\"path\":\"{}\",\"phases\":{},\"sync\":\"{}\",\"tokens\":{},\"lead_phases\":{},\"max_phase_lines\":{},\"max_window_lines\":{},\"skips\":{{\"singles\":{},\"masters\":{},\"criticals\":{},\"sections\":{},\"reduction_combines\":{},\"shared_stores_converted\":{},\"shared_stores_skipped\":{},\"atomics_executed\":{},\"flushes_dropped\":{},\"io_skipped\":{}}}}}",
                json_escape(&r.path.to_string()),
                r.phases,
                r.sync,
                r.tokens,
                r.lead_phases,
                r.max_phase_lines,
                r.max_window_lines,
                k.singles,
                k.masters,
                k.criticals,
                k.sections,
                k.reduction_combines,
                k.shared_stores_converted,
                k.shared_stores_skipped,
                k.atomics_executed,
                k.flushes_dropped,
                k.io_skipped,
            );
        }
        s.push_str("],\"certificates\":[");
        for (i, c) in self.certificates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"region\":{},\"phase\":{},\"class\":\"{}\",\"path\":\"{}\",\"exact\":{},\"arrays\":{},\"writes\":{},\"fingerprint\":\"{:016x}\",\"reasons\":[",
                c.region,
                c.phase,
                c.class.label(),
                json_escape(&c.path.to_string()),
                c.exact,
                c.arrays,
                c.writes,
                c.fingerprint,
            );
            for (j, r) in c.reasons.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", json_escape(r));
            }
            s.push_str("]}");
        }
        s.push_str("],\"replay_loops\":[");
        for (i, l) in self.replay_loops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"region\":{},\"path\":\"{}\",\"var\":{},\"begin\":{},\"end\":{},\"step\":{},\"trip_count\":{},\"phase_start\":{},\"phases_per_iteration\":{},\"guard_checksum\":\"{:016x}\",\"fingerprint\":\"{:016x}\"}}",
                l.region,
                json_escape(&l.path.to_string()),
                l.var,
                l.begin,
                l.end,
                l.step,
                l.trip_count,
                l.phase_start,
                l.phases_per_iteration,
                l.guard_checksum,
                l.fingerprint,
            );
        }
        s.push_str("]}");
        s
    }
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::Hazard;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            program: "t".into(),
            num_threads: 4,
            l2_lines: 100,
            findings: vec![Finding {
                hazard: Hazard::RaceWriteWrite,
                severity: Severity::Deny,
                path: NodePath::root(),
                related: None,
                region: Some(0),
                phase: Some(1),
                message: "x \"quoted\"".into(),
            }],
            regions: vec![RegionReport {
                path: NodePath::root(),
                phases: 3,
                sync: "global",
                tokens: 0,
                lead_phases: 1,
                max_phase_lines: 7,
                max_window_lines: 7,
                skips: SkipSet::default(),
            }],
            certificates: vec![PhaseCertificate {
                region: 0,
                phase: 0,
                class: PhaseClass::ReplaySafe,
                path: NodePath::root(),
                exact: true,
                arrays: 1,
                writes: 8,
                reasons: vec![],
                fingerprint: 0xabcd,
            }],
            replay_loops: vec![],
            suppressed: 0,
            truncated: false,
            visits: 42,
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 0);
        assert!(!r.is_clean());
        assert_eq!(r.max_severity(), Some(Severity::Deny));
        let mut clean = sample();
        clean.findings.clear();
        assert!(clean.is_clean());
        clean.truncated = true;
        assert!(!clean.is_clean());
    }

    #[test]
    fn equivalence_classification() {
        let deny = sample();
        assert_eq!(deny.equivalence(), Equivalence::Deny);

        let mut warn = sample();
        warn.findings[0].severity = Severity::Warn;
        assert_eq!(warn.equivalence(), Equivalence::ConvergeOnly);

        let mut clean = sample();
        clean.findings.clear();
        assert_eq!(clean.equivalence(), Equivalence::Exact);
        clean.truncated = true;
        assert_eq!(clean.equivalence(), Equivalence::ConvergeOnly);
    }

    #[test]
    fn equivalence_labels_round_trip() {
        for e in [
            Equivalence::Exact,
            Equivalence::ConvergeOnly,
            Equivalence::Deny,
        ] {
            assert_eq!(Equivalence::from_label(e.label()), Some(e));
            assert_eq!(e.to_string(), e.label());
        }
        assert_eq!(Equivalence::from_label("nope"), None);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"hazard\":\"race-ww\""));
        assert!(j.contains("x \\\"quoted\\\""));
        assert!(j.contains("\"regions\":[{"));
        assert_eq!(json_escape("a\nb"), "a\\nb");
    }

    #[test]
    fn text_mentions_findings_and_regions() {
        let t = sample().render_text();
        assert!(t.contains("1 finding(s) (1 deny"));
        assert!(t.contains("race-ww"));
        assert!(t.contains("sync=global"));
    }
}
