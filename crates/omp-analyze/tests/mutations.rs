//! Seeded-mutation suite: every NPB kernel must analyze clean, and each
//! of three hazard classes injected into each kernel must be flagged at
//! the right severity.
//!
//! Mutations are appended to the first parallel region's body behind a
//! barrier, so they occupy their own barrier phases and cannot interact
//! with the kernel's own accesses.

use npb_kernels::Benchmark;
use omp_analyze::{analyze, AnalyzeConfig, Hazard, Severity};
use omp_ir::expr::{Expr, VarId};
use omp_ir::node::{ArrayId, Node, Program, ScheduleSpec};

fn cfg() -> AnalyzeConfig {
    AnalyzeConfig::paper()
}

fn first_shared(p: &Program) -> ArrayId {
    ArrayId(
        p.arrays
            .iter()
            .position(|a| a.shared && a.len > 0)
            .expect("every kernel declares a shared array") as u32,
    )
}

/// Append `inj` (plus a leading barrier) to the first parallel region's
/// body, allocating a fresh private variable for the mutation to use.
fn mutate(p: &Program, build: impl FnOnce(ArrayId, VarId) -> Node) -> Program {
    let mut m = p.clone();
    let var = VarId(m.num_vars);
    m.num_vars += 1;
    let inj = build(first_shared(p), var);
    assert!(inject(&mut m.body, &inj), "kernel has a parallel region");
    omp_ir::validate(&m).expect("mutant stays structurally valid");
    m
}

fn inject(n: &mut Node, inj: &Node) -> bool {
    match n {
        Node::Seq(v) => v.iter_mut().any(|c| inject(c, inj)),
        Node::For { body, .. } => inject(body, inj),
        Node::Parallel { body, .. } => {
            let orig = std::mem::replace(body.as_mut(), Node::nop());
            **body = Node::Seq(vec![orig, Node::Barrier, inj.clone()]);
            true
        }
        _ => false,
    }
}

fn racing_store(arr: ArrayId, var: VarId) -> Node {
    // Every iteration of a worksharing loop stores the same element.
    Node::ParFor {
        sched: None,
        var,
        begin: Expr::c(0),
        end: Expr::c(64),
        body: Box::new(Node::Store {
            array: arr,
            index: Expr::c(0),
        }),
        reduction: None,
        nowait: false,
    }
}

fn unbalanced_barrier(_arr: ArrayId, var: VarId) -> Node {
    // Thread-dependent trip count around a barrier.
    Node::For {
        var,
        begin: Expr::c(0),
        end: Expr::ThreadId,
        step: 1,
        body: Box::new(Node::Barrier),
    }
}

fn skipped_store_then_read(arr: ArrayId, _var: VarId) -> Node {
    // The A-stream skips the single's store; the next phase reads it.
    Node::Seq(vec![
        Node::Single(Box::new(Node::Store {
            array: arr,
            index: Expr::c(0),
        })),
        Node::Load {
            array: arr,
            index: Expr::c(0),
        },
    ])
}

fn assert_flags(p: &Program, hazard: Hazard, severity: Severity, label: &str) {
    let r = analyze(p, &cfg());
    let hit = r
        .findings
        .iter()
        .find(|f| f.hazard == hazard)
        .unwrap_or_else(|| panic!("{label}: expected {hazard:?}, got:\n{}", r.render_text()));
    assert_eq!(hit.severity, severity, "{label}:\n{}", r.render_text());
    assert!(!r.truncated, "{label}: analysis truncated");
}

#[test]
fn clean_kernels_have_zero_findings() {
    for bm in Benchmark::ALL {
        for (label, p) in [("tiny", bm.build_tiny()), ("paper", bm.build_paper(None))] {
            let r = analyze(&p, &cfg());
            assert!(
                r.is_clean(),
                "{} {label} should analyze clean:\n{}",
                bm.name(),
                r.render_text()
            );
            assert!(!r.regions.is_empty(), "{} {label} has regions", bm.name());
        }
    }
}

#[test]
fn clean_dynamic_variants_have_zero_findings() {
    for bm in Benchmark::ALL {
        if !bm.in_dynamic_experiment() {
            continue;
        }
        for spec in [ScheduleSpec::dynamic(2), ScheduleSpec::guided()] {
            let p = bm.build_tiny_sched(spec);
            let r = analyze(&p, &cfg());
            assert!(
                r.is_clean(),
                "{} {spec:?} should analyze clean:\n{}",
                bm.name(),
                r.render_text()
            );
        }
    }
}

#[test]
fn racing_store_mutation_is_denied_in_every_kernel() {
    for bm in Benchmark::ALL {
        let p = mutate(&bm.build_tiny(), racing_store);
        assert_flags(
            &p,
            Hazard::RaceWriteWrite,
            Severity::Deny,
            &format!("{} racing-store", bm.name()),
        );
    }
}

#[test]
fn unbalanced_barrier_mutation_is_denied_in_every_kernel() {
    for bm in Benchmark::ALL {
        let p = mutate(&bm.build_tiny(), unbalanced_barrier);
        assert_flags(
            &p,
            Hazard::UnbalancedSync,
            Severity::Deny,
            &format!("{} unbalanced-barrier", bm.name()),
        );
    }
}

#[test]
fn skipped_store_mutation_warns_in_every_kernel() {
    for bm in Benchmark::ALL {
        let p = mutate(&bm.build_tiny(), skipped_store_then_read);
        let r = analyze(&p, &cfg());
        assert!(
            r.findings
                .iter()
                .any(|f| f.hazard == Hazard::SkippedStoreStale && f.severity == Severity::Warn),
            "{} skipped-store:\n{}",
            bm.name(),
            r.render_text()
        );
        assert_eq!(
            r.deny_count(),
            0,
            "{} skipped-store must not deny:\n{}",
            bm.name(),
            r.render_text()
        );
    }
}

#[test]
fn mutations_are_flagged_at_paper_scale_too() {
    // Spot-check one kernel at paper scale so the suite isn't tied to
    // tiny presets only.
    let p = mutate(&Benchmark::Cg.build_paper(None), racing_store);
    assert_flags(
        &p,
        Hazard::RaceWriteWrite,
        Severity::Deny,
        "cg paper racing-store",
    );
}

// ---------------------------------------------------------------------------
// Purity-breaking mutations: each must demote a phase inside the kernel's
// licensed replay loop out of `Pure`/`ReplaySafe` (or poison the loop
// bounds) and revoke the loop's memoized-replay license. The runtime-guard
// side of the trip-count mutation — a stale license applied to a
// recompiled loop — is exercised end-to-end in
// `crates/slipstream/tests/memo.rs`.

use omp_analyze::PhaseClass;

/// Append `inj` to the body of the first serial `for` inside the first
/// parallel region — the loop every clean kernel gets licensed on.
fn mutate_loop(p: &Program, build: impl FnOnce(ArrayId, VarId) -> Node) -> Program {
    let mut m = p.clone();
    let var = VarId(m.num_vars);
    m.num_vars += 1;
    let inj = build(first_shared(p), var);
    assert!(
        inject_into_loop(&mut m.body, &inj),
        "kernel has a serial loop inside a parallel region"
    );
    omp_ir::validate(&m).expect("mutant stays structurally valid");
    m
}

fn inject_into_loop(n: &mut Node, inj: &Node) -> bool {
    fn into_for(n: &mut Node, inj: &Node) -> bool {
        match n {
            Node::Seq(v) => v.iter_mut().any(|c| into_for(c, inj)),
            Node::For { body, .. } => {
                let orig = std::mem::replace(body.as_mut(), Node::nop());
                **body = Node::Seq(vec![orig, inj.clone()]);
                true
            }
            _ => false,
        }
    }
    match n {
        Node::Seq(v) => v.iter_mut().any(|c| inject_into_loop(c, inj)),
        Node::For { body, .. } => inject_into_loop(body, inj),
        Node::Parallel { body, .. } => into_for(body, inj),
        _ => false,
    }
}

/// Make the first serial loop's trip count ThreadId-dependent.
fn poison_trip_count(p: &Program) -> Program {
    fn poison(n: &mut Node) -> bool {
        fn in_region(n: &mut Node) -> bool {
            match n {
                Node::Seq(v) => v.iter_mut().any(in_region),
                Node::For { end, .. } => {
                    let orig = std::mem::replace(end, Expr::c(0));
                    *end = Expr::Bin(
                        omp_ir::expr::BinOp::Add,
                        Box::new(Expr::ThreadId),
                        Box::new(orig),
                    );
                    true
                }
                _ => false,
            }
        }
        match n {
            Node::Seq(v) => v.iter_mut().any(poison),
            Node::For { body, .. } => poison(body),
            Node::Parallel { body, .. } => in_region(body),
            _ => false,
        }
    }
    let mut m = p.clone();
    assert!(poison(&mut m.body), "kernel has a serial loop to poison");
    omp_ir::validate(&m).expect("mutant stays structurally valid");
    m
}

fn licensed_loops(p: &Program) -> usize {
    analyze(p, &cfg()).replay_loops.len()
}

#[test]
fn clean_kernels_license_exactly_one_replay_loop() {
    for bm in Benchmark::ALL {
        assert_eq!(
            licensed_loops(&bm.build_tiny()),
            1,
            "{} should license its iteration loop",
            bm.name()
        );
    }
}

#[test]
fn hidden_cross_phase_store_demotes_and_revokes_license() {
    // All executors of a worksharing phase store the same element: the
    // dependence test finds unprotected overlapping writes, the phase
    // goes Opaque, and the loop loses its replay license.
    for bm in Benchmark::ALL {
        let p = mutate_loop(&bm.build_tiny(), |arr, var| Node::ParFor {
            sched: None,
            var,
            begin: Expr::c(0),
            end: Expr::c(64),
            body: Box::new(Node::Store {
                array: arr,
                index: Expr::c(0),
            }),
            reduction: None,
            nowait: false,
        });
        let r = analyze(&p, &cfg());
        assert!(
            r.certificates.iter().any(|c| c.class == PhaseClass::Opaque
                && c.reasons.iter().any(|m| m.contains("overlapping"))),
            "{}: expected an opaque phase:\n{}",
            bm.name(),
            r.render_text()
        );
        assert!(
            r.replay_loops.is_empty(),
            "{}: license must be revoked:\n{}",
            bm.name(),
            r.render_text()
        );
    }
}

#[test]
fn thread_dependent_trip_count_revokes_license() {
    // A ThreadId-dependent serial-loop bound desynchronizes the team
    // (flagged as unbalanced sync) and the certifier must refuse the
    // license independently — the certified bounds no longer exist.
    for bm in Benchmark::ALL {
        let p = poison_trip_count(&bm.build_tiny());
        let r = analyze(&p, &cfg());
        assert!(
            r.replay_loops.is_empty(),
            "{}: license must be revoked:\n{}",
            bm.name(),
            r.render_text()
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.hazard == Hazard::UnbalancedSync),
            "{}: unbalanced sync expected:\n{}",
            bm.name(),
            r.render_text()
        );
    }
}

#[test]
fn critical_section_store_demotes_without_deny() {
    // A critical-protected store is race-free (no deny finding) but its
    // writer order is arrival-time-dependent, so the phase must go
    // Opaque and the license must be revoked.
    for bm in Benchmark::ALL {
        let p = mutate_loop(&bm.build_tiny(), |arr, var| Node::ParFor {
            sched: None,
            var,
            begin: Expr::c(0),
            end: Expr::c(64),
            body: Box::new(Node::Critical {
                name: "memo-mutant".into(),
                body: Box::new(Node::Store {
                    array: arr,
                    index: Expr::c(0),
                }),
            }),
            reduction: None,
            nowait: false,
        });
        let r = analyze(&p, &cfg());
        assert!(
            r.certificates.iter().any(|c| c.class == PhaseClass::Opaque
                && c.reasons.iter().any(|m| m.contains("critical"))),
            "{}: expected an opaque phase:\n{}",
            bm.name(),
            r.render_text()
        );
        assert!(
            r.replay_loops.is_empty(),
            "{}: license must be revoked:\n{}",
            bm.name(),
            r.render_text()
        );
        assert_eq!(
            r.deny_count(),
            0,
            "{}: critical store must not deny:\n{}",
            bm.name(),
            r.render_text()
        );
    }
}
